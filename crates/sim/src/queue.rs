//! The pending-event queue.
//!
//! A binary min-heap keyed on `(time, seq)`. The monotonically increasing
//! sequence number makes tie-breaking among simultaneous events **stable and
//! deterministic**: events scheduled earlier (in program order) fire earlier.
//! This is what makes whole simulations a pure function of `(config, seed)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the event queue.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0 }
    }

    /// Reserve capacity for at least `additional` more events, so bulk
    /// scheduling (e.g. injecting a whole world timeline) does not regrow
    /// the heap repeatedly.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Remove every pending event matching `pred` and return them in
    /// `(time, seq)` order (i.e. the order they would have fired). Rebuilds
    /// the heap — a cold operation, used by the fault plane to intercept
    /// in-flight messages when a partition cut activates.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&E) -> bool) -> Vec<(SimTime, E)> {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        let mut out = Vec::new();
        for e in entries {
            if pred(&e.payload) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.heap = BinaryHeap::from(kept);
        out.sort_unstable_by_key(|e| (e.at, e.seq));
        out.into_iter().map(|e| (e.at, e.payload)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(30), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn drain_matching_removes_and_orders_matches() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 30);
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(20), 21);
        q.schedule(SimTime::from_millis(20), 20);
        let odd = q.drain_matching(|&p| p % 2 == 1);
        assert_eq!(odd, vec![(SimTime::from_millis(20), 21)]);
        assert_eq!(q.len(), 3, "non-matching events stay");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![10, 20, 30], "heap order survives the rebuild");
    }

    #[test]
    fn drain_matching_preserves_fire_order_among_matches() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let all = q.drain_matching(|_| true);
        assert!(q.is_empty());
        assert_eq!(all.iter().map(|&(_, p)| p).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 10);
        assert!(q.is_empty());
    }
}
