//! The pending-event queue.
//!
//! A binary min-heap keyed on `(time, key)`. The key is a 64-bit **canonical
//! event key**: a 2-bit class in the top bits (fault ops < deliveries <
//! timers < plain sequence numbers) over a 62-bit payload that is unique
//! within the class (message id, `(actor, timer-counter)`, op index, or a
//! schedule-order counter). Because the key is derived from event *content*
//! rather than from the order in which events happened to be scheduled, the
//! pop order of a set of events is independent of the order and the thread
//! the events were scheduled from — the property the sharded engine relies
//! on to stay bit-identical to the sequential one. `schedule` (without an
//! explicit key) falls back to a schedule-order counter, which reproduces
//! the classic "earlier-scheduled fires earlier" tie-break.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Class bits for canonical event keys (top 2 bits of the `u64`).
pub mod key_class {
    /// Fault-plane operations fire before anything else at the same instant.
    pub const FAULT: u64 = 0;
    /// Message deliveries; payload is the (globally unique) message id.
    pub const DELIVER: u64 = 1;
    /// Timer firings; payload is `(actor << 40) | timer_counter`.
    pub const TIMER: u64 = 2;
    /// Schedule-order fallback used by [`super::EventQueue::schedule`].
    pub const SEQ: u64 = 3;
}

/// Mask for the 62-bit key payload.
pub const KEY_PAYLOAD_MASK: u64 = (1 << 62) - 1;

/// Build a canonical event key from a class and a payload unique within it.
#[inline]
pub fn event_key(class: u64, payload: u64) -> u64 {
    debug_assert!(class <= key_class::SEQ);
    (class << 62) | (payload & KEY_PAYLOAD_MASK)
}

/// An entry in the event queue.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    key: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// The undo journal backing one speculative window (see
/// [`EventQueue::spec_begin`]). Kept as a separate struct so the
/// non-speculative hot path pays only an `Option` discriminant check.
#[derive(Debug)]
struct SpecJournal<E> {
    /// Events scheduled during the window; discarded wholesale on
    /// rollback, merged into the main heap on commit.
    staged: BinaryHeap<Entry<E>>,
    /// Clones of the committed events popped during the window, pushed
    /// back on rollback. (Events popped out of `staged` need no journal
    /// entry: they did not exist at the checkpoint.)
    popped: Vec<Entry<E>>,
    /// `scheduled_total` / `next_seq` at the checkpoint, restored on
    /// rollback.
    scheduled_mark: u64,
    seq_mark: u64,
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    /// Present only between [`EventQueue::spec_begin`] and the matching
    /// commit/rollback — i.e. during a Time-Warp window.
    spec: Option<Box<SpecJournal<E>>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0, spec: None }
    }

    /// Reserve capacity for at least `additional` more events, so bulk
    /// scheduling (e.g. injecting a whole world timeline) does not regrow
    /// the heap repeatedly.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `payload` to fire at absolute time `at`, tie-breaking among
    /// simultaneous events by schedule order (class [`key_class::SEQ`]).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let key = event_key(key_class::SEQ, self.next_seq);
        self.next_seq += 1;
        self.schedule_keyed(at, key, payload);
    }

    /// Schedule `payload` at `at` under an explicit canonical key (see
    /// [`event_key`]). Keys must be unique per `(at, key)` for the order to
    /// be total; the engine derives them from message ids / timer counters,
    /// which are.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        self.scheduled_total += 1;
        let entry = Entry { at, key, payload };
        match &mut self.spec {
            None => self.heap.push(entry),
            Some(j) => j.staged.push(entry),
        }
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let main = self.heap.peek();
        match &self.spec {
            None => main.map(|e| e.at),
            Some(j) => match (main, j.staged.peek()) {
                (Some(a), Some(b)) => Some(if a >= b { a.at } else { b.at }), // reversed Ord
                (Some(a), None) => Some(a.at),
                (None, Some(b)) => Some(b.at),
                (None, None) => None,
            },
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.spec.as_ref().map_or(0, |j| j.staged.len())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Remove **all** pending events and return them as `(time, key,
    /// payload)` in fire order. Used to re-partition a queue across shards.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, E)> {
        debug_assert!(self.spec.is_none(), "drain during a speculative window");
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.sort_unstable_by_key(|e| (e.at, e.key));
        entries.into_iter().map(|e| (e.at, e.key, e.payload)).collect()
    }

    /// Remove every pending event matching `pred` and return them in
    /// `(time, key)` order (i.e. the order they would have fired). Rebuilds
    /// the heap — a cold operation, used by the fault plane to intercept
    /// in-flight messages when a partition cut activates.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&E) -> bool) -> Vec<(SimTime, E)> {
        self.drain_entries_matching(&mut pred).into_iter().map(|(at, _, e)| (at, e)).collect()
    }

    /// Like [`Self::drain_matching`], but returns the canonical keys too so
    /// the caller can merge drains from several shard queues into one
    /// deterministic order.
    pub fn drain_entries_matching(
        &mut self,
        pred: &mut impl FnMut(&E) -> bool,
    ) -> Vec<(SimTime, u64, E)> {
        debug_assert!(self.spec.is_none(), "drain during a speculative window");
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        let mut out = Vec::new();
        for e in entries {
            if pred(&e.payload) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.heap = BinaryHeap::from(kept);
        out.sort_unstable_by_key(|e| (e.at, e.key));
        out.into_iter().map(|e| (e.at, e.key, e.payload)).collect()
    }
}

impl<E: Clone> EventQueue<E> {
    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, p)| (at, p))
    }

    /// Remove and return the earliest event as `(time, key, payload)`.
    ///
    /// `Clone` bound: during a speculative window (between
    /// [`EventQueue::spec_begin`] and commit/rollback) every pop of a
    /// *committed* event journals a clone so rollback can restore it; with
    /// no window open this is the plain heap pop.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        let Some(j) = self.spec.as_deref_mut() else {
            return self.heap.pop().map(|e| (e.at, e.key, e.payload));
        };
        // Reversed `Ord`: `a >= b` means `a` fires at-or-before `b`.
        let from_main = match (self.heap.peek(), j.staged.peek()) {
            (Some(a), Some(b)) => a >= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_main {
            let e = self.heap.pop().expect("peeked");
            j.popped.push(e.clone());
            Some((e.at, e.key, e.payload))
        } else {
            j.staged.pop().map(|e| (e.at, e.key, e.payload))
        }
    }

    /// Open a speculative window: subsequent schedules go to a side heap
    /// and pops of pre-existing events are journaled, so the queue can be
    /// restored to this exact point by [`EventQueue::spec_rollback`] or the
    /// window's effects kept by [`EventQueue::spec_commit`]. Nesting is a
    /// bug (the engine checkpoints only at window barriers).
    pub fn spec_begin(&mut self) {
        debug_assert!(self.spec.is_none(), "nested speculative window");
        self.spec = Some(Box::new(SpecJournal {
            staged: BinaryHeap::new(),
            popped: Vec::new(),
            scheduled_mark: self.scheduled_total,
            seq_mark: self.next_seq,
        }));
    }

    /// Keep the open window's effects: merge its staged events into the
    /// main heap and drop the undo journal. O(staged · log n) — the cost is
    /// proportional to the work the window performed.
    pub fn spec_commit(&mut self) {
        let j = *self.spec.take().expect("no speculative window open");
        self.heap.extend(j.staged);
    }

    /// Discard the open window's effects: forget its staged events, push
    /// the journaled pops back, and restore the scheduled-total counter.
    pub fn spec_rollback(&mut self) {
        let j = *self.spec.take().expect("no speculative window open");
        self.heap.extend(j.popped);
        self.scheduled_total = j.scheduled_mark;
        self.next_seq = j.seq_mark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_break_by_key_not_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        // Schedule in descending key order; pops must come back ascending.
        for i in (0..50u64).rev() {
            q.schedule_keyed(t, event_key(key_class::DELIVER, i), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn classes_order_fault_before_deliver_before_timer() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_keyed(t, event_key(key_class::TIMER, 0), "timer");
        q.schedule_keyed(t, event_key(key_class::DELIVER, 0), "deliver");
        q.schedule_keyed(t, event_key(key_class::FAULT, 0), "fault");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["fault", "deliver", "timer"]);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(30), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn drain_matching_removes_and_orders_matches() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 30);
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(20), 21);
        q.schedule(SimTime::from_millis(20), 20);
        let odd = q.drain_matching(|&p| p % 2 == 1);
        assert_eq!(odd, vec![(SimTime::from_millis(20), 21)]);
        assert_eq!(q.len(), 3, "non-matching events stay");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![10, 20, 30], "heap order survives the rebuild");
    }

    #[test]
    fn drain_matching_preserves_fire_order_among_matches() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let all = q.drain_matching(|_| true);
        assert!(q.is_empty());
        assert_eq!(all.iter().map(|&(_, p)| p).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_entries_returns_everything_in_fire_order() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_millis(20), event_key(key_class::DELIVER, 7), "late");
        q.schedule_keyed(SimTime::from_millis(10), event_key(key_class::TIMER, 1), "t");
        q.schedule_keyed(SimTime::from_millis(10), event_key(key_class::DELIVER, 3), "d");
        let all = q.drain_entries();
        assert!(q.is_empty());
        assert_eq!(all.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(), vec!["d", "t", "late"]);
        // Keys round-trip so the entries can be rescheduled verbatim.
        assert_eq!(all[0].1, event_key(key_class::DELIVER, 3));
    }

    #[test]
    fn spec_rollback_restores_exact_state() {
        let mut q = EventQueue::new();
        for i in 0..6u64 {
            q.schedule_keyed(SimTime::from_millis(10 * i), event_key(key_class::DELIVER, i), i);
        }
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0)));
        let total = q.scheduled_total();

        q.spec_begin();
        // Pop committed events, schedule new ones, pop one of those too.
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        q.schedule_keyed(SimTime::from_millis(15), event_key(key_class::DELIVER, 100), 100);
        assert_eq!(q.pop(), Some((SimTime::from_millis(15), 100)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        q.schedule_keyed(SimTime::from_millis(25), event_key(key_class::DELIVER, 101), 101);
        assert_eq!(q.len(), 4);
        q.spec_rollback();

        assert_eq!(q.scheduled_total(), total, "counter restored");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5], "pre-window events all back, staged gone");
    }

    #[test]
    fn spec_commit_merges_staged_events() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_millis(10), event_key(key_class::DELIVER, 1), 1);
        q.schedule_keyed(SimTime::from_millis(30), event_key(key_class::DELIVER, 3), 3);
        q.spec_begin();
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        q.schedule_keyed(SimTime::from_millis(20), event_key(key_class::DELIVER, 2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)), "staged event visible");
        q.spec_commit();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![2, 3], "popped event stays popped, staged event merged");
    }

    #[test]
    fn spec_pop_interleaves_staged_and_committed_by_key() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_keyed(t, event_key(key_class::DELIVER, 0), 0);
        q.schedule_keyed(t, event_key(key_class::DELIVER, 2), 2);
        q.spec_begin();
        q.schedule_keyed(t, event_key(key_class::DELIVER, 1), 1);
        q.schedule_keyed(t, event_key(key_class::DELIVER, 3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "canonical key order across both heaps");
        q.spec_rollback();
        let back: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(back, vec![0, 2], "only committed events restored");
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 10);
        assert!(q.is_empty());
    }
}
