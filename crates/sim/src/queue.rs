//! The pending-event queue.
//!
//! A binary min-heap keyed on `(time, key)`. The key is a 64-bit **canonical
//! event key**: a 2-bit class in the top bits (fault ops < deliveries <
//! timers < plain sequence numbers) over a 62-bit payload that is unique
//! within the class (message id, `(actor, timer-counter)`, op index, or a
//! schedule-order counter). Because the key is derived from event *content*
//! rather than from the order in which events happened to be scheduled, the
//! pop order of a set of events is independent of the order and the thread
//! the events were scheduled from — the property the sharded engine relies
//! on to stay bit-identical to the sequential one. `schedule` (without an
//! explicit key) falls back to a schedule-order counter, which reproduces
//! the classic "earlier-scheduled fires earlier" tie-break.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Class bits for canonical event keys (top 2 bits of the `u64`).
pub mod key_class {
    /// Fault-plane operations fire before anything else at the same instant.
    pub const FAULT: u64 = 0;
    /// Message deliveries; payload is the (globally unique) message id.
    pub const DELIVER: u64 = 1;
    /// Timer firings; payload is `(actor << 40) | timer_counter`.
    pub const TIMER: u64 = 2;
    /// Schedule-order fallback used by [`super::EventQueue::schedule`].
    pub const SEQ: u64 = 3;
}

/// Mask for the 62-bit key payload.
pub const KEY_PAYLOAD_MASK: u64 = (1 << 62) - 1;

/// Build a canonical event key from a class and a payload unique within it.
#[inline]
pub fn event_key(class: u64, payload: u64) -> u64 {
    debug_assert!(class <= key_class::SEQ);
    (class << 62) | (payload & KEY_PAYLOAD_MASK)
}

/// An entry in the event queue.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    key: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, scheduled_total: 0 }
    }

    /// Reserve capacity for at least `additional` more events, so bulk
    /// scheduling (e.g. injecting a whole world timeline) does not regrow
    /// the heap repeatedly.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `payload` to fire at absolute time `at`, tie-breaking among
    /// simultaneous events by schedule order (class [`key_class::SEQ`]).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let key = event_key(key_class::SEQ, self.next_seq);
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, key, payload });
    }

    /// Schedule `payload` at `at` under an explicit canonical key (see
    /// [`event_key`]). Keys must be unique per `(at, key)` for the order to
    /// be total; the engine derives them from message ids / timer counters,
    /// which are.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        self.scheduled_total += 1;
        self.heap.push(Entry { at, key, payload });
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Remove and return the earliest event as `(time, key, payload)`.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.key, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Remove **all** pending events and return them as `(time, key,
    /// payload)` in fire order. Used to re-partition a queue across shards.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.sort_unstable_by_key(|e| (e.at, e.key));
        entries.into_iter().map(|e| (e.at, e.key, e.payload)).collect()
    }

    /// Remove every pending event matching `pred` and return them in
    /// `(time, key)` order (i.e. the order they would have fired). Rebuilds
    /// the heap — a cold operation, used by the fault plane to intercept
    /// in-flight messages when a partition cut activates.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&E) -> bool) -> Vec<(SimTime, E)> {
        self.drain_entries_matching(&mut pred).into_iter().map(|(at, _, e)| (at, e)).collect()
    }

    /// Like [`Self::drain_matching`], but returns the canonical keys too so
    /// the caller can merge drains from several shard queues into one
    /// deterministic order.
    pub fn drain_entries_matching(
        &mut self,
        pred: &mut impl FnMut(&E) -> bool,
    ) -> Vec<(SimTime, u64, E)> {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        let mut out = Vec::new();
        for e in entries {
            if pred(&e.payload) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.heap = BinaryHeap::from(kept);
        out.sort_unstable_by_key(|e| (e.at, e.key));
        out.into_iter().map(|e| (e.at, e.key, e.payload)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_break_by_key_not_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        // Schedule in descending key order; pops must come back ascending.
        for i in (0..50u64).rev() {
            q.schedule_keyed(t, event_key(key_class::DELIVER, i), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn classes_order_fault_before_deliver_before_timer() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_keyed(t, event_key(key_class::TIMER, 0), "timer");
        q.schedule_keyed(t, event_key(key_class::DELIVER, 0), "deliver");
        q.schedule_keyed(t, event_key(key_class::FAULT, 0), "fault");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["fault", "deliver", "timer"]);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(30), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn drain_matching_removes_and_orders_matches() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 30);
        q.schedule(SimTime::from_millis(10), 10);
        q.schedule(SimTime::from_millis(20), 21);
        q.schedule(SimTime::from_millis(20), 20);
        let odd = q.drain_matching(|&p| p % 2 == 1);
        assert_eq!(odd, vec![(SimTime::from_millis(20), 21)]);
        assert_eq!(q.len(), 3, "non-matching events stay");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![10, 20, 30], "heap order survives the rebuild");
    }

    #[test]
    fn drain_matching_preserves_fire_order_among_matches() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let all = q.drain_matching(|_| true);
        assert!(q.is_empty());
        assert_eq!(all.iter().map(|&(_, p)| p).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_entries_returns_everything_in_fire_order() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_millis(20), event_key(key_class::DELIVER, 7), "late");
        q.schedule_keyed(SimTime::from_millis(10), event_key(key_class::TIMER, 1), "t");
        q.schedule_keyed(SimTime::from_millis(10), event_key(key_class::DELIVER, 3), "d");
        let all = q.drain_entries();
        assert!(q.is_empty());
        assert_eq!(all.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(), vec!["d", "t", "late"]);
        // Keys round-trip so the entries can be rescheduled verbatim.
        assert_eq!(all[0].1, event_key(key_class::DELIVER, 3));
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 10);
        assert!(q.is_empty());
    }
}
