//! Run-wide metrics and instrumentation.
//!
//! A lightweight, deterministic observability layer for the simulator and
//! everything built on it: a [`Metrics`] registry hands out pre-registered
//! handles — [`Counter`], [`Gauge`] (with high-water tracking), and
//! [`Timer`] (a fixed-width histogram plus [`OnlineStats`] moments, reusing
//! [`crate::stats`]) — that are cheap enough to leave enabled everywhere.
//!
//! Design rules, in priority order:
//!
//! 1. **Determinism is untouchable.** Recording a metric never consults a
//!    random stream, never reorders events, and never feeds back into
//!    simulation state. A run with metrics enabled is bit-identical (trace
//!    and detection output) to the same run with metrics disabled — there
//!    is a test for this at the workspace root
//!    (`tests/metrics_determinism.rs`).
//! 2. **Zero heap allocation on the hot path.** All allocation happens at
//!    registration time (cold). [`Counter::add`] and [`Gauge::set`] are
//!    single atomic RMW operations; [`Timer::record`] takes an uncontended
//!    [`parking_lot::Mutex`] around a fixed-size [`Histogram`] bump and a
//!    Welford update — no allocation, no system calls.
//! 3. **Thread-safe by construction.** Handles are `Clone + Send + Sync`
//!    (shared via `Arc`), so sweep workers on different OS threads can
//!    record into one registry.
//!
//! A disabled registry ([`Metrics::disabled`]) hands out inert handles
//! whose record methods early-return on a copied `bool` — callers thread
//! instrumentation unconditionally and let the registry decide.
//!
//! Export: [`Metrics::snapshot`] produces a [`MetricsSnapshot`] — plain
//! serde-serializable data sorted by metric name — which `serde_json` turns
//! into one JSON object (the `--metrics-out` JSONL records of `psn-bench`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::stats::{Histogram, OnlineStats};

/// Default bounds for timing histograms: [0, 1s) in 64 bins of ~15.6ms.
const DEFAULT_TIMER_HI: f64 = 1e9;
/// Default bin count for timing histograms.
const DEFAULT_TIMER_BINS: usize = 64;

#[derive(Default)]
struct Inner {
    enabled: bool,
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<GaugeCell>)>>,
    timers: Mutex<Vec<(String, Arc<Mutex<TimerCell>>)>>,
}

#[derive(Default)]
struct GaugeCell {
    value: AtomicU64,
    high: AtomicU64,
}

struct TimerCell {
    hist: Histogram,
    stats: OnlineStats,
}

/// A registry of named counters, gauges, and timing histograms.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same metrics —
/// pass clones into engines, sweep workers, and detectors freely.
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<Inner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Metrics { inner: Arc::new(Inner { enabled: true, ..Default::default() }) }
    }

    /// A disabled registry: handles registered against it are inert no-ops
    /// and [`Metrics::snapshot`] is empty. Use where instrumentation is
    /// threaded unconditionally but the caller did not ask for metrics.
    pub fn disabled() -> Self {
        Metrics { inner: Arc::new(Inner { enabled: false, ..Default::default() }) }
    }

    /// True if this registry records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Register (or re-attach to) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock();
        let cell = match counters.iter().find(|(n, _)| n == name) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                counters.push((name.to_string(), Arc::clone(&c)));
                c
            }
        };
        Counter { cell, active: self.inner.enabled }
    }

    /// Register (or re-attach to) the gauge `name`. Gauges track both the
    /// last set value and the high-water mark.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock();
        let cell = match gauges.iter().find(|(n, _)| n == name) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(GaugeCell::default());
                gauges.push((name.to_string(), Arc::clone(&c)));
                c
            }
        };
        Gauge { cell, active: self.inner.enabled }
    }

    /// Register (or re-attach to) the timer `name` with the default
    /// histogram range `[0, 1s)` in nanoseconds.
    pub fn timer(&self, name: &str) -> Timer {
        self.timer_with_range(name, 0.0, DEFAULT_TIMER_HI, DEFAULT_TIMER_BINS)
    }

    /// Register (or re-attach to) the timer `name` with an explicit
    /// fixed-width histogram over `[lo, hi)` with `bins` buckets.
    /// Observations outside the range clamp into the end bins
    /// ([`Histogram`] semantics); moments are exact regardless.
    pub fn timer_with_range(&self, name: &str, lo: f64, hi: f64, bins: usize) -> Timer {
        let mut timers = self.inner.timers.lock();
        let cell = match timers.iter().find(|(n, _)| n == name) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(Mutex::new(TimerCell {
                    hist: Histogram::new(lo, hi, bins),
                    stats: OnlineStats::new(),
                }));
                timers.push((name.to_string(), Arc::clone(&c)));
                c
            }
        };
        Timer { cell, active: self.inner.enabled }
    }

    /// A point-in-time copy of every metric, sorted by name. Empty for a
    /// disabled registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.inner.enabled {
            return MetricsSnapshot::default();
        }
        let mut counters: Vec<CounterSample> = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(name, c)| CounterSample { name: name.clone(), value: c.load(Ordering::Relaxed) })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(name, c)| GaugeSample {
                name: name.clone(),
                value: c.value.load(Ordering::Relaxed),
                high: c.high.load(Ordering::Relaxed),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut timers: Vec<TimerSample> = self
            .inner
            .timers
            .lock()
            .iter()
            .map(|(name, c)| {
                let cell = c.lock();
                let s = &cell.stats;
                let empty = s.count() == 0;
                TimerSample {
                    name: name.clone(),
                    count: s.count(),
                    mean: s.mean(),
                    min: if empty { 0.0 } else { s.min() },
                    max: if empty { 0.0 } else { s.max() },
                    p50: if empty { 0.0 } else { cell.hist.quantile(0.50) },
                    p90: if empty { 0.0 } else { cell.hist.quantile(0.90) },
                    p99: if empty { 0.0 } else { cell.hist.quantile(0.99) },
                }
            })
            .collect();
        timers.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, timers }
    }
}

/// A monotone event counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    active: bool,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.active {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Restore the counter to an earlier observed value. This deliberately
    /// breaks the monotone discipline for exactly one purpose: speculation
    /// rollback (see [`crate::engine::SpeculationHooks`]) — a rolled-back
    /// window's increments are undone by restoring the checkpoint snapshot
    /// taken while all workers were quiescent. Never call this while other
    /// threads may be recording.
    pub fn reset_to(&self, v: u64) {
        if self.active {
            self.cell.store(v, Ordering::Relaxed);
        }
    }
}

/// A last-value gauge that also remembers its high-water mark.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
    active: bool,
}

impl Gauge {
    /// Set the current value, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.active {
            self.cell.value.store(v, Ordering::Relaxed);
            self.cell.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn high(&self) -> u64 {
        self.cell.high.load(Ordering::Relaxed)
    }
}

/// A timing accumulator: fixed-width [`Histogram`] for quantiles plus
/// [`OnlineStats`] for exact moments. Units are whatever the caller
/// records — by convention nanoseconds for wall-clock durations.
#[derive(Clone)]
pub struct Timer {
    cell: Arc<Mutex<TimerCell>>,
    active: bool,
}

impl Timer {
    /// Record one observation.
    #[inline]
    pub fn record(&self, x: f64) {
        if self.active {
            let mut cell = self.cell.lock();
            cell.hist.record(x);
            cell.stats.push(x);
        }
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as f64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cell.lock().stats.count()
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.cell.lock().stats.mean()
    }
}

/// Point-in-time export of a [`Metrics`] registry: plain data, sorted by
/// name, serializable with serde (one JSON object per snapshot).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All timers, sorted by name.
    pub timers: Vec<TimerSample>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The (value, high-water) of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<(u64, u64)> {
        self.gauges.iter().find(|g| g.name == name).map(|g| (g.value, g.high))
    }

    /// The sample for timer `name`, if registered.
    pub fn timer(&self, name: &str) -> Option<&TimerSample> {
        self.timers.iter().find(|t| t.name == name)
    }
}

/// One exported counter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One exported gauge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: u64,
    /// High-water mark over the registry's lifetime.
    pub high: u64,
}

/// One exported timer: count, exact moments, and histogram quantiles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimerSample {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Exact mean (0 if empty).
    pub mean: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
    /// Median, at histogram-bin granularity.
    pub p50: f64,
    /// 90th percentile, at histogram-bin granularity.
    pub p90: f64,
    /// 99th percentile, at histogram-bin granularity.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let m = Metrics::new();
        let c = m.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(m.snapshot().counter("events"), Some(5));
    }

    #[test]
    fn reset_to_restores_a_checkpoint_value() {
        let m = Metrics::new();
        let c = m.counter("spec");
        c.add(10);
        let mark = c.get();
        c.add(7); // speculative window increments …
        c.reset_to(mark); // … undone on rollback
        assert_eq!(c.get(), 10);
        let inert = Metrics::disabled().counter("spec");
        inert.reset_to(9);
        assert_eq!(inert.get(), 0, "disabled handles stay inert");
    }

    #[test]
    fn same_name_shares_a_cell() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.snapshot().counter("x"), Some(5));
        assert_eq!(m.snapshot().counters.len(), 1);
    }

    #[test]
    fn gauges_track_high_water() {
        let m = Metrics::new();
        let g = m.gauge("depth");
        g.set(3);
        g.set(10);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high(), 10);
        assert_eq!(m.snapshot().gauge("depth"), Some((4, 10)));
    }

    #[test]
    fn timers_accumulate_moments_and_quantiles() {
        let m = Metrics::new();
        let t = m.timer_with_range("lat", 0.0, 100.0, 10);
        for x in [5.0, 15.0, 25.0, 35.0, 95.0] {
            t.record(x);
        }
        let snap = m.snapshot();
        let s = snap.timer("lat").unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 35.0).abs() < 1e-12);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 95.0);
        assert!(s.p50 >= 20.0 && s.p50 <= 30.0, "p50 bin holds 25.0, got {}", s.p50);
        assert!(s.p99 >= 90.0, "p99 reaches the top bin, got {}", s.p99);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::disabled();
        let c = m.counter("c");
        let g = m.gauge("g");
        let t = m.timer("t");
        c.add(7);
        g.set(7);
        t.record(7.0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(t.count(), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let m = Metrics::new();
        m.counter("zeta").inc();
        m.counter("alpha").inc();
        m.gauge("mid").set(1);
        let s1 = m.snapshot();
        let names: Vec<&str> = s1.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s1, m.snapshot(), "snapshot of unchanged registry is stable");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.counter("msgs").add(42);
        m.gauge("depth").set(9);
        m.timer_with_range("wall", 0.0, 10.0, 4).record(3.5);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::new();
        let c = m.counter("shared");
        let m2 = m.clone();
        m2.counter("shared").add(3);
        c.add(1);
        assert_eq!(m.snapshot().counter("shared"), Some(4));
    }

    #[test]
    fn handles_record_across_threads() {
        let m = Metrics::new();
        let c = m.counter("parallel");
        let t = m.timer_with_range("tt", 0.0, 100.0, 10);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        if i % 100 == 0 {
                            t.record(i as f64 / 100.0);
                        }
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("parallel"), Some(4000));
        assert_eq!(m.snapshot().timer("tt").unwrap().count, 40);
    }
}
