//! Message transmission/propagation delay models (paper §3.2.2).
//!
//! The paper's design space for implementing time distinguishes three delay
//! regimes:
//!
//! 1. **Instantaneous / synchronous** — the ideal case, Δ = 0;
//! 2. **Asynchronous Δ-bounded** — delays vary but are bounded by Δ, which
//!    the paper argues is realistic for wireless sensornets (bounded
//!    retransmission attempts) and is the regime in which strobe clocks are
//!    analysed;
//! 3. **Asynchronous unbounded** — the worst-case model.

use serde::{Deserialize, Serialize};

use crate::rng::RngStream;
use crate::time::SimDuration;

/// A message-delay model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Δ = 0: messages are delivered at the instant they are sent (after all
    /// processing scheduled at the same instant, thanks to stable
    /// tie-breaking).
    Synchronous,
    /// Every message takes exactly this long.
    Fixed(SimDuration),
    /// Uniformly distributed in `[min, max]` — the paper's Δ-bounded model
    /// with Δ = `max`.
    DeltaBounded {
        /// Smallest possible delay.
        min: SimDuration,
        /// Largest possible delay: the Δ bound.
        max: SimDuration,
    },
    /// Exponentially distributed with the given mean — unbounded delays
    /// (worst-case analysis). An optional cap turns it into a truncated
    /// exponential.
    Exponential {
        /// Mean of the (untruncated) exponential.
        mean: SimDuration,
        /// Optional hard cap turning the model into a truncated exponential.
        cap: Option<SimDuration>,
    },
}

impl DelayModel {
    /// A Δ-bounded model `[0, delta]`, the paper's default regime.
    pub fn delta(delta: SimDuration) -> Self {
        DelayModel::DeltaBounded { min: SimDuration::ZERO, max: delta }
    }

    /// Sample one message delay.
    pub fn sample(&self, rng: &mut RngStream) -> SimDuration {
        match *self {
            DelayModel::Synchronous => SimDuration::ZERO,
            DelayModel::Fixed(d) => d,
            DelayModel::DeltaBounded { min, max } => rng.uniform_duration(min, max),
            DelayModel::Exponential { mean, cap } => {
                let d = rng.exponential_duration(mean);
                match cap {
                    Some(c) if d > c => c,
                    _ => d,
                }
            }
        }
    }

    /// The worst-case delay Δ of this model, if one exists.
    ///
    /// `None` for the unbounded (uncapped exponential) model. This value is
    /// what the strobe-clock accuracy analysis calls Δ: races within a Δ
    /// window are where detection errors may occur.
    pub fn delta_bound(&self) -> Option<SimDuration> {
        match *self {
            DelayModel::Synchronous => Some(SimDuration::ZERO),
            DelayModel::Fixed(d) => Some(d),
            DelayModel::DeltaBounded { max, .. } => Some(max),
            DelayModel::Exponential { cap, .. } => cap,
        }
    }

    /// The smallest delay this model can ever produce — the **lookahead**
    /// of the network plane.
    ///
    /// A message sent at time `t` arrives no earlier than `t + min_bound()`,
    /// so shards of actors can be advanced independently through any window
    /// narrower than this bound without missing a cross-shard message. Zero
    /// (synchronous, `delta(Δ)`, exponential) means no lookahead: the
    /// sharded engine then falls back to the sequential loop.
    pub fn min_bound(&self) -> SimDuration {
        match *self {
            DelayModel::Synchronous => SimDuration::ZERO,
            DelayModel::Fixed(d) => d,
            DelayModel::DeltaBounded { min, .. } => min,
            DelayModel::Exponential { .. } => SimDuration::ZERO,
        }
    }

    /// The mean delay of this model.
    pub fn mean(&self) -> SimDuration {
        match *self {
            DelayModel::Synchronous => SimDuration::ZERO,
            DelayModel::Fixed(d) => d,
            DelayModel::DeltaBounded { min, max } => (min + max) / 2,
            // Mean of a truncated exponential is below the nominal mean; we
            // report the nominal mean, which is what experiments sweep.
            DelayModel::Exponential { mean, .. } => mean,
        }
    }

    /// True if this is the synchronous (Δ = 0) model.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, DelayModel::Synchronous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> RngStream {
        RngFactory::new(77).stream(0)
    }

    #[test]
    fn synchronous_is_zero() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(DelayModel::Synchronous.sample(&mut r), SimDuration::ZERO);
        }
        assert_eq!(DelayModel::Synchronous.delta_bound(), Some(SimDuration::ZERO));
        assert!(DelayModel::Synchronous.is_synchronous());
    }

    #[test]
    fn fixed_is_constant() {
        let mut r = rng();
        let m = DelayModel::Fixed(SimDuration::from_millis(7));
        for _ in 0..100 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(7));
        }
        assert_eq!(m.delta_bound(), Some(SimDuration::from_millis(7)));
        assert_eq!(m.mean(), SimDuration::from_millis(7));
    }

    #[test]
    fn delta_bounded_stays_in_bounds() {
        let mut r = rng();
        let lo = SimDuration::from_millis(2);
        let hi = SimDuration::from_millis(9);
        let m = DelayModel::DeltaBounded { min: lo, max: hi };
        for _ in 0..5000 {
            let d = m.sample(&mut r);
            assert!(d >= lo && d <= hi, "sample {d} out of bounds");
        }
        assert_eq!(m.delta_bound(), Some(hi));
        assert_eq!(m.min_bound(), lo);
    }

    #[test]
    fn min_bound_is_zero_for_unbounded_below_models() {
        assert_eq!(DelayModel::Synchronous.min_bound(), SimDuration::ZERO);
        assert_eq!(DelayModel::delta(SimDuration::from_millis(9)).min_bound(), SimDuration::ZERO);
        assert_eq!(
            DelayModel::Exponential { mean: SimDuration::from_millis(3), cap: None }.min_bound(),
            SimDuration::ZERO
        );
        assert_eq!(
            DelayModel::Fixed(SimDuration::from_millis(4)).min_bound(),
            SimDuration::from_millis(4)
        );
    }

    #[test]
    fn delta_helper_starts_at_zero() {
        let m = DelayModel::delta(SimDuration::from_millis(100));
        assert_eq!(
            m,
            DelayModel::DeltaBounded { min: SimDuration::ZERO, max: SimDuration::from_millis(100) }
        );
        assert_eq!(m.mean(), SimDuration::from_millis(50));
    }

    #[test]
    fn exponential_mean_approximates() {
        let mut r = rng();
        let m = DelayModel::Exponential { mean: SimDuration::from_millis(10), cap: None };
        let n = 100_000u64;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).as_nanos()).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!((mean_ms - 10.0).abs() < 0.3, "mean was {mean_ms}ms");
        assert_eq!(m.delta_bound(), None);
    }

    #[test]
    fn exponential_cap_is_respected() {
        let mut r = rng();
        let cap = SimDuration::from_millis(5);
        let m = DelayModel::Exponential { mean: SimDuration::from_millis(10), cap: Some(cap) };
        for _ in 0..5000 {
            assert!(m.sample(&mut r) <= cap);
        }
        assert_eq!(m.delta_bound(), Some(cap));
    }
}
