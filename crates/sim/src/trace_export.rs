//! Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.
//!
//! - [`chrome_trace_json`] renders a sealed [`Trace`] in the [Chrome
//!   trace-event format] — loadable in Perfetto or `chrome://tracing`.
//!   Every actor becomes a named thread track (pid 0); message records
//!   become short slices with **flow arrows** from each `Sent` slice to its
//!   `Delivered` slice, bound by the per-run [`MsgId`](crate::trace::MsgId); losses, timers,
//!   notes and stamped process events become instant events whose `args`
//!   carry the logical stamps.
//! - [`jsonl`] renders one self-describing JSON object per record — the
//!   streaming companion of the `--metrics-out` snapshots.
//! - [`validate_chrome`] is the small schema check CI runs over emitted
//!   files: top-level shape, required fields per phase, and every flow
//!   start matched by exactly one flow finish.
//!
//! [Chrome trace-event format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Timestamps: the format counts in **microseconds**; simulation time is
//! integer nanoseconds, exported as fractional µs so Δ < 1 µs stays
//! visible.

use std::collections::HashSet;

use serde::{Serialize, Value};

use crate::network::ActorId;
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};

/// Virtual process id all tracks live under (one simulation = one process).
const PID: u64 = 0;

fn ts_us(at: SimTime) -> Value {
    Value::Float(at.as_nanos() as f64 / 1000.0)
}

fn event(ph: &str, tid: ActorId, at: SimTime, name: String) -> Vec<(String, Value)> {
    vec![
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("pid".to_string(), Value::UInt(PID)),
        ("tid".to_string(), Value::UInt(tid as u64)),
        ("ts".to_string(), ts_us(at)),
        ("name".to_string(), Value::Str(name)),
    ]
}

/// Render a sealed trace as Chrome trace-event JSON.
///
/// `actor_name` labels each track (e.g. `"sensor 3"`, `"root"`).
pub fn chrome_trace_json(trace: &Trace, actor_name: impl Fn(ActorId) -> String) -> String {
    let records = trace.records();
    // Flow arrows need both endpoints: collect the ids that were sent so a
    // Delivered without a Sent (an injected world event) emits no dangling
    // flow-finish.
    let mut sent_ids: HashSet<u64> = HashSet::new();
    let mut actors: Vec<ActorId> = Vec::new();
    for r in records {
        if let TraceKind::Sent { msg, .. } = &r.kind {
            sent_ids.insert(msg.0);
        }
        let a = r.kind.actor();
        if !actors.contains(&a) {
            actors.push(a);
        }
    }
    actors.sort_unstable();

    let mut events: Vec<Value> = Vec::with_capacity(records.len() * 2 + actors.len());
    for &a in &actors {
        let mut m = event("M", a, SimTime::ZERO, "thread_name".to_string());
        // Metadata events take their payload under args.name.
        m.retain(|(k, _)| k != "ts");
        m.push((
            "args".to_string(),
            Value::Map(vec![("name".to_string(), Value::Str(actor_name(a)))]),
        ));
        events.push(Value::Map(m));
    }

    for r in records {
        match &r.kind {
            TraceKind::Sent { from, to, bytes, msg } => {
                let mut e = event("X", *from, r.at, format!("send → {to}"));
                e.push(("cat".to_string(), Value::Str("net".to_string())));
                e.push(("dur".to_string(), Value::Float(0.001)));
                e.push((
                    "args".to_string(),
                    Value::Map(vec![
                        ("msg".to_string(), Value::UInt(msg.0)),
                        ("bytes".to_string(), Value::UInt(*bytes as u64)),
                    ]),
                ));
                events.push(Value::Map(e));
                let mut s = event("s", *from, r.at, "msg".to_string());
                s.push(("cat".to_string(), Value::Str("flow".to_string())));
                s.push(("id".to_string(), Value::UInt(msg.0)));
                events.push(Value::Map(s));
            }
            TraceKind::Delivered { from, to, msg } => {
                let mut e = event("X", *to, r.at, format!("recv ← {from}"));
                e.push(("cat".to_string(), Value::Str("net".to_string())));
                e.push(("dur".to_string(), Value::Float(0.001)));
                e.push((
                    "args".to_string(),
                    Value::Map(vec![("msg".to_string(), Value::UInt(msg.0))]),
                ));
                events.push(Value::Map(e));
                if sent_ids.contains(&msg.0) {
                    let mut f = event("f", *to, r.at, "msg".to_string());
                    f.push(("cat".to_string(), Value::Str("flow".to_string())));
                    f.push(("id".to_string(), Value::UInt(msg.0)));
                    f.push(("bp".to_string(), Value::Str("e".to_string())));
                    events.push(Value::Map(f));
                }
            }
            TraceKind::Lost { from: _, to, msg } => {
                let mut e = event("i", r.kind.actor(), r.at, format!("lost → {to}"));
                e.push(("cat".to_string(), Value::Str("net".to_string())));
                e.push(("s".to_string(), Value::Str("t".to_string())));
                e.push((
                    "args".to_string(),
                    Value::Map(vec![("msg".to_string(), Value::UInt(msg.0))]),
                ));
                events.push(Value::Map(e));
            }
            TraceKind::TimerFired { actor, tag } => {
                let mut e = event("i", *actor, r.at, format!("timer {tag}"));
                e.push(("cat".to_string(), Value::Str("timer".to_string())));
                e.push(("s".to_string(), Value::Str("t".to_string())));
                events.push(Value::Map(e));
            }
            TraceKind::Note { actor, label } => {
                let mut e = event("i", *actor, r.at, label.clone());
                e.push(("cat".to_string(), Value::Str("note".to_string())));
                e.push(("s".to_string(), Value::Str("t".to_string())));
                events.push(Value::Map(e));
            }
            TraceKind::Process { actor, kind, stamp, detail } => {
                let mut e = event("i", *actor, r.at, kind.label().to_string());
                e.push(("cat".to_string(), Value::Str("process".to_string())));
                e.push(("s".to_string(), Value::Str("t".to_string())));
                e.push((
                    "args".to_string(),
                    Value::Map(vec![
                        ("stamp".to_string(), stamp.to_value()),
                        ("detail".to_string(), Value::UInt(*detail)),
                    ]),
                ));
                events.push(Value::Map(e));
            }
            TraceKind::Fault { actor, kind, detail } => {
                let mut e = event("i", *actor, r.at, format!("fault: {}", kind.label()));
                e.push(("cat".to_string(), Value::Str("fault".to_string())));
                e.push(("s".to_string(), Value::Str("t".to_string())));
                e.push((
                    "args".to_string(),
                    Value::Map(vec![("detail".to_string(), Value::UInt(*detail))]),
                ));
                events.push(Value::Map(e));
            }
        }
    }

    let doc = Value::Map(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Seq(events)),
    ]);
    let mut out = String::new();
    serde_json::write_value_to(&doc, &mut out);
    out
}

/// Render a sealed trace as JSONL: one JSON object per record, in
/// recording order. Schema (fields per `event` discriminant) is documented
/// in the repository README under *Observability*.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        let mut m: Vec<(String, Value)> = vec![
            ("seq".to_string(), Value::UInt(r.seq)),
            ("at_ns".to_string(), Value::UInt(r.at.as_nanos())),
        ];
        match &r.kind {
            TraceKind::Sent { from, to, bytes, msg } => {
                m.push(("event".to_string(), Value::Str("sent".to_string())));
                m.push(("from".to_string(), Value::UInt(*from as u64)));
                m.push(("to".to_string(), Value::UInt(*to as u64)));
                m.push(("bytes".to_string(), Value::UInt(*bytes as u64)));
                m.push(("msg".to_string(), Value::UInt(msg.0)));
            }
            TraceKind::Delivered { from, to, msg } => {
                m.push(("event".to_string(), Value::Str("delivered".to_string())));
                m.push(("from".to_string(), Value::UInt(*from as u64)));
                m.push(("to".to_string(), Value::UInt(*to as u64)));
                m.push(("msg".to_string(), Value::UInt(msg.0)));
            }
            TraceKind::Lost { from, to, msg } => {
                m.push(("event".to_string(), Value::Str("lost".to_string())));
                m.push(("from".to_string(), Value::UInt(*from as u64)));
                m.push(("to".to_string(), Value::UInt(*to as u64)));
                m.push(("msg".to_string(), Value::UInt(msg.0)));
            }
            TraceKind::TimerFired { actor, tag } => {
                m.push(("event".to_string(), Value::Str("timer".to_string())));
                m.push(("actor".to_string(), Value::UInt(*actor as u64)));
                m.push(("tag".to_string(), Value::UInt(*tag)));
            }
            TraceKind::Note { actor, label } => {
                m.push(("event".to_string(), Value::Str("note".to_string())));
                m.push(("actor".to_string(), Value::UInt(*actor as u64)));
                m.push(("label".to_string(), Value::Str(label.clone())));
            }
            TraceKind::Process { actor, kind, stamp, detail } => {
                m.push(("event".to_string(), Value::Str("process".to_string())));
                m.push(("actor".to_string(), Value::UInt(*actor as u64)));
                m.push(("kind".to_string(), Value::Str(kind.label().to_string())));
                m.push(("detail".to_string(), Value::UInt(*detail)));
                m.push(("stamp".to_string(), stamp.to_value()));
            }
            TraceKind::Fault { actor, kind, detail } => {
                m.push(("event".to_string(), Value::Str("fault".to_string())));
                m.push(("actor".to_string(), Value::UInt(*actor as u64)));
                m.push(("kind".to_string(), Value::Str(kind.label().to_string())));
                m.push(("detail".to_string(), Value::UInt(*detail)));
            }
        }
        serde_json::write_value_to(&Value::Map(m), &mut out);
        out.push('\n');
    }
    out
}

/// Summary returned by [`validate_chrome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total `traceEvents` entries.
    pub events: usize,
    /// Matched flow-arrow pairs (`s` bound to `f` by id).
    pub flows: usize,
}

/// Validate Chrome trace-event JSON produced by [`chrome_trace_json`] (the
/// CI schema check): top-level map with a `traceEvents` array; every event
/// a map with string `ph`, integer `pid`/`tid`, a `name`, and a numeric
/// `ts` (metadata events exempt); every flow start has exactly one finish.
pub fn validate_chrome(json: &str) -> Result<ChromeSummary, String> {
    let doc = serde_json::parse(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = doc.as_map().ok_or("top level must be an object")?;
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_seq())
        .ok_or("missing traceEvents array")?;
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let m = e.as_map().ok_or_else(|| format!("event {i}: not an object"))?;
        let field = |name: &str| m.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph =
            field("ph").and_then(Value::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        for req in ["pid", "tid"] {
            match field(req) {
                Some(Value::UInt(_)) | Some(Value::Int(_)) => {}
                _ => return Err(format!("event {i}: missing integer {req}")),
            }
        }
        if field("name").is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph != "M" {
            match field("ts") {
                Some(Value::Float(_)) | Some(Value::UInt(_)) | Some(Value::Int(_)) => {}
                _ => return Err(format!("event {i}: ph {ph:?} needs numeric ts")),
            }
        }
        let flow_id = || match field("id") {
            Some(Value::UInt(id)) => Ok(*id),
            _ => Err(format!("event {i}: flow event needs integer id")),
        };
        match ph {
            "s" => starts.push(flow_id()?),
            "f" => finishes.push(flow_id()?),
            "X" | "i" | "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    starts.sort_unstable();
    finishes.sort_unstable();
    for f in &finishes {
        if starts.binary_search(f).is_err() {
            return Err(format!("flow finish id {f} has no start"));
        }
    }
    Ok(ChromeSummary { events: events.len(), flows: finishes.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockStamp, MsgId, ProcessEventKind};

    fn sample_trace() -> Trace {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_millis(1),
            TraceKind::Sent { from: 0, to: 1, bytes: 16, msg: MsgId(7) },
        );
        t.record(
            SimTime::from_millis(2),
            TraceKind::Process {
                actor: 0,
                kind: ProcessEventKind::Sense,
                stamp: ClockStamp::vector(&[1, 0]),
                detail: 3,
            },
        );
        t.record(SimTime::from_millis(4), TraceKind::Delivered { from: 0, to: 1, msg: MsgId(7) });
        t.record(SimTime::from_millis(5), TraceKind::Lost { from: 1, to: 0, msg: MsgId(8) });
        t.record(SimTime::from_millis(6), TraceKind::TimerFired { actor: 1, tag: 2 });
        t.record(SimTime::from_millis(7), TraceKind::Note { actor: 1, label: "hi".into() });
        t.record(
            SimTime::from_millis(7),
            TraceKind::Fault { actor: 0, kind: crate::trace::FaultRecordKind::Crash, detail: 0 },
        );
        // An injected delivery: no Sent with this id → no flow finish.
        t.record(SimTime::from_millis(8), TraceKind::Delivered { from: 2, to: 1, msg: MsgId(99) });
        t.seal();
        t
    }

    #[test]
    fn chrome_export_is_valid_and_binds_flows() {
        let t = sample_trace();
        let json = chrome_trace_json(&t, |a| format!("actor {a}"));
        let summary = validate_chrome(&json).expect("valid");
        assert_eq!(summary.flows, 1, "one sent→delivered pair");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("actor 0"));
    }

    #[test]
    fn jsonl_has_one_parsable_line_per_record() {
        let t = sample_trace();
        let text = jsonl(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), t.len());
        for line in &lines {
            serde_json::parse(line).expect("each line parses");
        }
        assert!(lines[0].contains("\"event\":\"sent\""));
        assert!(lines[1].contains("\"vector\":[1,0]"));
    }

    #[test]
    fn validator_rejects_dangling_flow_finish() {
        let json = r#"{"traceEvents":[
            {"ph":"f","pid":0,"tid":0,"ts":1.0,"name":"msg","id":5}
        ]}"#;
        assert!(validate_chrome(json).is_err());
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome("[]").is_err(), "top level must be an object");
        assert!(validate_chrome(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
    }
}
