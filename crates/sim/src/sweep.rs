//! Deterministic parallel parameter sweeps.
//!
//! Experiments evaluate a grid of cells (Δ values × event rates × seeds…),
//! each cell an independent simulation. This runner fans cells out over a
//! pool of OS threads (scoped threads + a crossbeam work queue) and returns
//! results **in cell order**, so the output is identical regardless of the
//! thread count — determinism is preserved while wall-clock drops nearly
//! linearly with cores.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Run `f` over every cell, in parallel, returning results in input order.
///
/// `f` must be deterministic per cell (derive all randomness from the cell's
/// own parameters/seed). Panics in `f` propagate.
pub fn run_sweep<P, R, F>(cells: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    if cells.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(cells.len());
    if threads == 1 {
        return cells.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }

    let (work_tx, work_rx) = channel::unbounded::<usize>();
    for i in 0..cells.len() {
        work_tx.send(i).expect("queue open");
    }
    drop(work_tx);

    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok(i) = work_rx.recv() {
                    let r = f(i, &cells[i]);
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);

        let mut out: Vec<Option<R>> = (0..cells.len()).map(|_| None).collect();
        for (i, r) in res_rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every cell completed"))
            .collect()
    })
}

/// The default parallelism for sweeps: the number of available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A convenience: run a sweep at [`default_threads`] parallelism.
pub fn run_sweep_auto<P, R, F>(cells: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_sweep(cells, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        let cells: Vec<u64> = (0..100).collect();
        let out = run_sweep(&cells, 8, |_, &x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cells: Vec<u64> = (0..57).collect();
        let f = |i: usize, &x: &u64| (i as u64).wrapping_mul(31).wrapping_add(x);
        let one = run_sweep(&cells, 1, f);
        let four = run_sweep(&cells, 4, f);
        let many = run_sweep(&cells, 32, f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_sweep(&Vec::<u32>::new(), 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let cells: Vec<u32> = (0..321).collect();
        let out = run_sweep(&cells, 7, |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 321);
        assert_eq!(out, (0..321).collect::<Vec<_>>());
    }

    #[test]
    fn single_cell_works() {
        let out = run_sweep(&[41u32], 16, |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn auto_matches_explicit() {
        let cells: Vec<u32> = (0..20).collect();
        assert_eq!(
            run_sweep_auto(&cells, |_, &x| x * 3),
            run_sweep(&cells, 2, |_, &x| x * 3)
        );
    }
}
