//! Deterministic parallel parameter sweeps.
//!
//! Experiments evaluate a grid of cells (Δ values × event rates × seeds…),
//! each cell an independent simulation. This runner fans cells out over a
//! pool of OS threads (scoped threads + a crossbeam work queue) and returns
//! results **in cell order**, so the output is identical regardless of the
//! thread count — determinism is preserved while wall-clock drops nearly
//! linearly with cores.
//!
//! A panic inside a worker is caught, the remaining workers drain, and the
//! **first** panic payload is re-raised on the calling thread intact — the
//! caller sees the original message, not a generic join error.
//!
//! [`run_sweep_instrumented`] additionally records per-cell wall time and
//! thread utilization into a [`Metrics`] registry (see [`crate::metrics`]);
//! recording never affects cell results or their order.

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::metrics::Metrics;

/// Run `f` over every cell, in parallel, returning results in input order.
///
/// `f` must be deterministic per cell (derive all randomness from the cell's
/// own parameters/seed). If any worker panics, the first panic is
/// propagated to the caller with its payload intact.
pub fn run_sweep<P, R, F>(cells: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_sweep_instrumented(cells, threads, &Metrics::disabled(), f)
}

/// [`run_sweep`], recording sweep metrics into `metrics`:
///
/// - timer `sweep.cell_wall_ns` — wall-clock nanoseconds per cell;
/// - gauge `sweep.threads` — worker count used;
/// - gauge `sweep.utilization_pct` — aggregate worker busy time over
///   `threads × total wall time`, in percent;
/// - counter `sweep.cells` — cells executed.
pub fn run_sweep_instrumented<P, R, F>(
    cells: &[P],
    threads: usize,
    metrics: &Metrics,
    f: F,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    if cells.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(cells.len());
    let cell_wall = metrics.timer_with_range("sweep.cell_wall_ns", 0.0, 1e10, 128);
    let utilization = metrics.gauge("sweep.utilization_pct");
    let busy_counter = metrics.counter("sweep.busy_ns");
    metrics.gauge("sweep.threads").set(threads as u64);
    metrics.counter("sweep.cells").add(cells.len() as u64);
    let timed = metrics.is_enabled();
    let sweep_start = Instant::now();

    if threads == 1 {
        let out = cells
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let t0 = Instant::now();
                let r = f(i, p);
                if timed {
                    let ns = t0.elapsed().as_nanos() as u64;
                    cell_wall.record(ns as f64);
                    busy_counter.add(ns);
                }
                r
            })
            .collect();
        if timed {
            let wall = sweep_start.elapsed().as_nanos().max(1) as f64;
            utilization.set((100.0 * busy_counter.get() as f64 / wall).round() as u64);
        }
        return out;
    }
    let pool = threads as f64;

    let (work_tx, work_rx) = channel::unbounded::<usize>();
    for i in 0..cells.len() {
        work_tx.send(i).expect("queue open");
    }
    drop(work_tx);

    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    // First worker panic, payload intact; later panics are dropped.
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let panicked = AtomicBool::new(false);

    let out = std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            let cell_wall = cell_wall.clone();
            let busy_counter = busy_counter.clone();
            let first_panic = &first_panic;
            let panicked = &panicked;
            scope.spawn(move || {
                let mut busy_ns: u64 = 0;
                while let Ok(i) = work_rx.recv() {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    let t0 = Instant::now();
                    match catch_unwind(AssertUnwindSafe(|| f(i, &cells[i]))) {
                        Ok(r) => {
                            if timed {
                                let ns = t0.elapsed().as_nanos() as u64;
                                cell_wall.record(ns as f64);
                                busy_ns += ns;
                            }
                            if res_tx.send((i, r)).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            let mut slot = first_panic.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            break;
                        }
                    }
                }
                if timed {
                    busy_counter.add(busy_ns);
                }
            });
        }
        drop(res_tx);

        let mut out: Vec<Option<R>> = (0..cells.len()).map(|_| None).collect();
        for (i, r) in res_rx {
            out[i] = Some(r);
        }
        out
    });

    if let Some(payload) = first_panic.lock().take() {
        resume_unwind(payload);
    }
    if timed {
        // Busy time aggregates across the whole pool, so the denominator is
        // threads × wall (each thread's busy time is bounded by the wall).
        let wall = sweep_start.elapsed().as_nanos().max(1) as f64;
        utilization.set((100.0 * busy_counter.get() as f64 / (wall * pool)).round() as u64);
    }
    out.into_iter().map(|r| r.expect("worker exited without result or panic")).collect()
}

/// The default parallelism for sweeps: a *valid* `PSN_THREADS` environment
/// variable (a positive integer) if set, otherwise the number of available
/// cores. An unparsable or zero value never panics a long-running host: it
/// falls back to the hardware default, warning once per process on stderr.
///
/// `PSN_THREADS` caps the *sweep-level* thread pool. With the sharded
/// engine (`Engine::run_sharded`) parallelism can also live *inside* a
/// cell; when combining both, budget `sweep_threads × shards ≤ cores` —
/// the two pools do not coordinate.
pub fn default_threads() -> usize {
    let hardware = || std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    match std::env::var("PSN_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PSN_THREADS={v:?} (want a positive \
                         integer); using the hardware default"
                    );
                });
                hardware()
            }
        },
        Err(_) => hardware(),
    }
}

/// A convenience: run a sweep at [`default_threads`] parallelism.
pub fn run_sweep_auto<P, R, F>(cells: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    run_sweep(cells, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order() {
        let cells: Vec<u64> = (0..100).collect();
        let out = run_sweep(&cells, 8, |_, &x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cells: Vec<u64> = (0..57).collect();
        let f = |i: usize, &x: &u64| (i as u64).wrapping_mul(31).wrapping_add(x);
        let one = run_sweep(&cells, 1, f);
        let four = run_sweep(&cells, 4, f);
        let many = run_sweep(&cells, 32, f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_sweep(&Vec::<u32>::new(), 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let cells: Vec<u32> = (0..321).collect();
        let out = run_sweep(&cells, 7, |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 321);
        assert_eq!(out, (0..321).collect::<Vec<_>>());
    }

    #[test]
    fn single_cell_works() {
        let out = run_sweep(&[41u32], 16, |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn psn_threads_env_overrides_and_survives_garbage() {
        // Safe even though tests share the process env: concurrent callers
        // of default_threads only require a value ≥ 1, which every value
        // set here produces.
        let hardware = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        std::env::set_var("PSN_THREADS", "3");
        assert_eq!(default_threads(), 3);
        // Regression: invalid values (zero, garbage, empty) must neither
        // panic nor silently pin the pool to one thread — they fall back to
        // the hardware default (with a once-per-process warning).
        std::env::set_var("PSN_THREADS", "0");
        assert_eq!(default_threads(), hardware, "zero falls back to the hardware default");
        std::env::set_var("PSN_THREADS", "not-a-number");
        assert_eq!(default_threads(), hardware, "garbage falls back to the hardware default");
        std::env::set_var("PSN_THREADS", "");
        assert_eq!(default_threads(), hardware, "empty falls back to the hardware default");
        std::env::set_var("PSN_THREADS", " 2 ");
        assert_eq!(default_threads(), 2, "surrounding whitespace is tolerated");
        std::env::remove_var("PSN_THREADS");
    }

    #[test]
    fn auto_matches_explicit() {
        let cells: Vec<u32> = (0..20).collect();
        assert_eq!(run_sweep_auto(&cells, |_, &x| x * 3), run_sweep(&cells, 2, |_, &x| x * 3));
    }

    #[test]
    fn worker_panic_propagates_with_payload_intact() {
        let cells: Vec<u32> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_sweep(&cells, 4, |i, _| {
                if i == 7 {
                    panic!("cell 7 exploded: code {}", 42);
                }
                i
            })
        }));
        let payload = result.expect_err("sweep must re-raise the worker panic");
        // The payload is a &str or String depending on whether rustc
        // const-folded the format; either way the message must be intact.
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is the original message");
        assert_eq!(msg, "cell 7 exploded: code 42");
    }

    #[test]
    fn instrumented_sweep_records_cell_times_and_utilization() {
        let m = Metrics::new();
        let cells: Vec<u64> = (0..20).collect();
        let out = run_sweep_instrumented(&cells, 4, &m, |_, &x| {
            std::hint::black_box((0..1000).sum::<u64>());
            x
        });
        assert_eq!(out, cells);
        let snap = m.snapshot();
        assert_eq!(snap.timer("sweep.cell_wall_ns").unwrap().count, 20);
        assert_eq!(snap.gauge("sweep.threads"), Some((4, 4)));
        assert_eq!(snap.counter("sweep.cells"), Some(20));
        let (util, _) = snap.gauge("sweep.utilization_pct").unwrap();
        assert!(util <= 110, "utilization is a percentage, saw {util}");
    }

    #[test]
    fn single_threaded_instrumented_sweep_records_too() {
        let m = Metrics::new();
        let out = run_sweep_instrumented(&[1u32, 2, 3], 1, &m, |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
        let snap = m.snapshot();
        assert_eq!(snap.timer("sweep.cell_wall_ns").unwrap().count, 3);
        assert_eq!(snap.gauge("sweep.threads"), Some((1, 1)));
    }
}
