//! The discrete-event engine.
//!
//! Actors (sensor/actuator processes, the world plane, the root P₀) exchange
//! messages through a configured [`NetworkConfig`]; the engine owns the
//! future-event list, samples delays and losses deterministically, and
//! dispatches callbacks. A whole run is a pure function of
//! `(actors, network, seed)` — no wall-clock, no thread scheduling, no
//! global state.
//!
//! Design notes:
//! - Callbacks receive a [`Context`] that *buffers* actions (sends, timers,
//!   …); the engine applies them after the callback returns. This keeps the
//!   borrow structure trivial and the application order deterministic.
//! - Every queue event carries a **canonical key** derived from its content
//!   (message id, `(actor, timer counter)`, fault-op index — see
//!   [`crate::queue::event_key`]), so simultaneous events fire in an order
//!   that does not depend on the order they were scheduled in. This is what
//!   lets [`Engine::run_sharded`] replay a run bit-identically in parallel.
//! - Randomness is per-entity: each actor has a private stream, and the
//!   network/fault planes draw from **per-sender** labeled streams
//!   (`"engine.network.<id>"` / `"engine.faults.<id>"`), so one actor's
//!   draw sequence is a function of its own history only — independent of
//!   how actors are interleaved across shards.
//!
//! # Sharded execution
//!
//! [`Engine::run_sharded`] partitions actors into shards (a [`ShardPlan`])
//! and advances all shards concurrently through half-open time windows
//! `[t, t + L)`, where the lookahead `L` is the network's minimum channel
//! delay ([`crate::delay::DelayModel::min_bound`]). A message sent at
//! `u ∈ [t, t+L)` arrives no earlier than `u + L ≥ t + L`, i.e. strictly
//! after the window — so shards cannot causally interact *within* a window
//! and may process their local events in parallel. Cross-shard messages are
//! routed into the destination shard's heap at the window barrier; because
//! heap order is total on `(time, canonical key)`, the arrival order is
//! immaterial. Fault-plane operations are coordinator sub-barriers: the
//! window is clipped at the next op time, the op applies under a write
//! lock, and windows resume. With `L = 0` (synchronous or `delta(Δ)`
//! delays) or one shard the engine falls back to the sequential loop.

use crate::fault::{
    ChannelEffect, CutPolicy, FaultEvent, FaultPlane, FaultScript, FaultStats, Parked, PlaneOp,
};
use crate::metrics::{Counter, Gauge, Metrics, Timer};
use crate::network::{ActorId, NetStats, NetworkConfig};
use crate::queue::{event_key, key_class, EventQueue};
use crate::rng::{RngFactory, RngStream};
use crate::telemetry::{Phase, ShardTelemetry, Telemetry};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ClockStamp, FaultRecordKind, MsgId, ProcessEventKind, Trace, TraceKind};

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Instant;

/// A typed error from the engine's *external* boundary — the operations a
/// long-running host (e.g. `psn-serve`) drives with data it did not
/// generate itself: injected events, incremental stepping, and post-run
/// actor recovery. Internal invariants (queue monotonicity, counter
/// overflow of engine-generated ids, worker liveness) remain
/// `debug_assert`/`expect`: they can only fire on an engine bug, never on
/// malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// An event or stepping bound lies before the engine's current time.
    /// Admitting it would break the monotone-time invariant every clock
    /// and trace consumer relies on.
    TimeRegression {
        /// The offending time.
        at: SimTime,
        /// The engine's current simulation time.
        now: SimTime,
    },
    /// An actor id outside the registered range.
    UnknownActor {
        /// The offending id.
        id: ActorId,
        /// How many actors are registered.
        actors: usize,
    },
    /// The actor was already recovered with [`Engine::take_actor`] /
    /// [`Engine::try_take_actor`].
    ActorTaken {
        /// The already-taken id.
        id: ActorId,
    },
    /// The external-injection id space (2⁴⁰ ids, kept disjoint from
    /// engine-transmitted message ids) is exhausted.
    InjectIdsExhausted,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TimeRegression { at, now } => {
                write!(f, "time regression: t={at:?} is before engine time {now:?}")
            }
            EngineError::UnknownActor { id, actors } => {
                write!(f, "unknown actor {id} (engine has {actors})")
            }
            EngineError::ActorTaken { id } => write!(f, "actor {id} was already taken"),
            EngineError::InjectIdsExhausted => write!(f, "external injection id space exhausted"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A message payload. Sizes feed the byte-overhead accounting of
/// experiment E7 (strobe scalar O(1) vs strobe vector O(n) payloads).
///
/// `Send + Sync` because shard workers own messages (`Send`) and share the
/// fault plane's parked-message buffer behind a read lock (`Sync`); message
/// payloads are plain data, so the bounds are free.
pub trait Message: Clone + Send + Sync {
    /// The on-the-wire size of this payload, in bytes.
    fn size_bytes(&self) -> usize;

    /// Mutate the payload to model in-flight corruption (fault plane,
    /// [`ChannelEffect::Corrupt`]); return `true` if anything changed.
    /// All randomness must come from `rng` (the plane's per-sender stream).
    /// The default is incorruptible, so existing message types are
    /// unaffected until they opt in.
    fn corrupt(&mut self, _rng: &mut RngStream) -> bool {
        false
    }
}

/// Behaviour of one simulated entity.
///
/// All callbacks receive a [`Context`] through which the actor reads the
/// current time, draws randomness from its private stream, sends messages,
/// sets timers, annotates the trace, and can halt the run.
pub trait Actor<M: Message> {
    /// Called once before the first event, in actor-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}
    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);
    /// A timer set with [`Context::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}
    /// A fault-plane event hit this actor (see [`FaultEvent`]): recovery
    /// after a crash, or a clock fault. Default: ignore faults entirely —
    /// actors that model no recoverable state need no changes.
    fn on_fault(&mut self, _ctx: &mut Context<'_, M>, _event: &FaultEvent) {}
    /// A deep copy of this actor's current state, used as the rollback
    /// checkpoint by the optimistic sharded mode ([`Engine::set_optimistic`]).
    /// Returning `None` (the default) marks the actor unforkable; an engine
    /// with any unforkable actor silently falls back to conservative
    /// windows, so existing actors need no changes until they opt in.
    fn fork(&self) -> Option<Box<dyn Actor<M> + Send>> {
        None
    }
}

/// Host-side checkpoint/rollback callbacks for the optimistic sharded mode.
///
/// Actors frequently write into host-owned side state the engine knows
/// nothing about (e.g. a shared execution log behind a mutex). When the
/// engine speculates past a window bound it must be able to undo those
/// writes too, so a host installs hooks via
/// [`Engine::set_speculation_hooks`]. The protocol is strictly bracketed
/// and single-level: every `checkpoint()` is followed by exactly one
/// `commit()` or `rollback()` before the next `checkpoint()`.
pub trait SpeculationHooks {
    /// A speculative window is about to run; snapshot external state.
    fn checkpoint(&mut self);
    /// The speculative window was confirmed causally complete; forget the
    /// snapshot.
    fn commit(&mut self);
    /// A straggler invalidated the speculative window; restore external
    /// state to the `checkpoint()` snapshot. The engine re-executes the
    /// safe prefix immediately after, so restored state is re-extended
    /// bit-identically.
    fn rollback(&mut self);
}

/// Buffered actions produced by an actor callback.
enum Action<M> {
    Send { to: ActorId, msg: M },
    Broadcast { msg: M },
    SetTimer { after: SimDuration, tag: u64 },
    Note { label: String },
    // Boxed so the rarely-hot stamped payload (a ClockStamp is ~100 bytes
    // inline) doesn't widen every Action the dispatch loop moves; the box
    // is only ever allocated while tracing is enabled.
    Trace(Box<ProcessTrace>),
    Halt,
}

struct ProcessTrace {
    kind: ProcessEventKind,
    stamp: ClockStamp,
    detail: u64,
}

/// The per-callback view an actor has of the simulation.
///
/// The action buffer is a reusable scratch vector owned by the engine, so
/// steady-state dispatch allocates nothing.
pub struct Context<'a, M> {
    now: SimTime,
    id: ActorId,
    n: usize,
    trace_on: bool,
    rng: &'a mut RngStream,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> Context<'_, M> {
    /// Current ground-truth simulation time.
    ///
    /// Real sensor processes must not base *protocol* decisions on this
    /// (they only have their own clocks); it exists so actors can model
    /// physical clock hardware and so test actors can assert on timing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Total number of actors in the simulation.
    pub fn actor_count(&self) -> usize {
        self.n
    }

    /// This actor's private random stream.
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Send `msg` to `to` through the network (delay/loss/topology apply).
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// System-wide broadcast to every *connected* peer (used by the strobe
    /// clock protocols, rules SVC1/SSC1).
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Arrange for [`Actor::on_timer`] to fire `after` from now with `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.actions.push(Action::SetTimer { after, tag });
    }

    /// Record a free-form annotation in the trace.
    pub fn note(&mut self, label: impl Into<String>) {
        self.actions.push(Action::Note { label: label.into() });
    }

    /// Is trace recording on for this run? Actors use this to skip building
    /// stamps for [`Context::trace_process`] when nobody is listening.
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Record a logically stamped semantic process event
    /// ([`TraceKind::Process`]) for this actor. No-op when tracing is off;
    /// recording is observational and cannot change the run.
    pub fn trace_process(&mut self, kind: ProcessEventKind, stamp: ClockStamp, detail: u64) {
        if self.trace_on {
            self.actions.push(Action::Trace(Box::new(ProcessTrace { kind, stamp, detail })));
        }
    }

    /// Stop the simulation after the current event is fully applied.
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }
}

/// An event in the future-event list. Actor ids are stored as `u32` to keep
/// entries small — every queue entry is moved O(log n) times per heap
/// operation, so entry size is directly visible in engine throughput.
/// Fault operations are *not* queue events: the coordinator interleaves
/// them between windows (see [`Engine::run`]), which is what lets shard
/// heaps stay private to their worker threads.
// `Clone` because the optimistic mode's queue journal keeps copies of
// popped entries for rollback (see [`EventQueue::spec_begin`]).
#[derive(Clone)]
enum Pending<M> {
    Deliver { from: u32, to: u32, msg: M, id: u64 },
    Timer { actor: u32, tag: u64 },
}

enum Dispatch<M> {
    Start,
    Message { from: ActorId, msg: M },
    Timer { tag: u64 },
    Fault { event: FaultEvent },
}

/// Pre-registered engine metric handles (see [`crate::metrics`]). Recording
/// observes the simulation without feeding anything back into it — no RNG
/// draws, no event reordering — so enabling metrics cannot change a run.
/// Handles are atomics behind `Arc`s, so per-shard clones all feed the same
/// registry; counters are exact in either mode, while the point-in-time
/// gauges (`queue_depth`, `in_flight`) are sampling artifacts of whichever
/// lane last wrote them mid-run (the end-of-run values are exact).
#[derive(Clone)]
struct EngineMetrics {
    events: Counter,
    delivered: Counter,
    dropped: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    run_wall: Timer,
    events_per_sec: Gauge,
    windows: Counter,
    op_barriers: Counter,
    rollbacks: Counter,
    ring_spills: Counter,
}

impl EngineMetrics {
    fn attach(m: &Metrics) -> Self {
        EngineMetrics {
            events: m.counter("engine.events_processed"),
            delivered: m.counter("engine.messages_delivered"),
            dropped: m.counter("engine.messages_dropped"),
            queue_depth: m.gauge("engine.queue_depth"),
            in_flight: m.gauge("engine.in_flight"),
            run_wall: m.timer_with_range("engine.run_wall_ns", 0.0, 1e10, 128),
            events_per_sec: m.gauge("engine.events_per_sec"),
            windows: m.counter("engine.windows"),
            op_barriers: m.counter("engine.op_barriers"),
            rollbacks: m.counter("engine.rollbacks"),
            ring_spills: m.counter("engine.ring_spills"),
        }
    }
}

/// Above this many topology nodes the per-channel FIFO clamp state switches
/// from a dense rank×n matrix to a hash map, so n = 10⁴-actor topologies
/// do not allocate O(n²) memory. Override per engine with
/// [`Engine::set_fifo_dense_limit`] (tests cross-validate the two paths).
pub const DENSE_ACTOR_LIMIT: usize = 2048;

/// Default speculative horizon for [`Engine::set_optimistic`]: optimistic
/// windows run `8 ×` the conservative lookahead. At that span, even a
/// 100%-rollback run (2 barriers per speculative span: the failed attempt
/// plus the redo) still beats the conservative mode's 1 barrier per
/// lookahead whenever the typical straggler lands past `2 ×` lookahead.
pub const SPEC_HORIZON: u32 = 8;

/// Slots per exchange ring (per directed shard pair). Overflow spills to
/// the outbox, so this bounds memory, not correctness.
const RING_CAPACITY: usize = 1024;

/// Per-channel last-scheduled-delivery times backing the FIFO clamp.
///
/// `Dense` stores a `members × n` matrix indexed by the *rank* of the
/// sending actor within this lane (not `n × n` per lane, so sharded large
/// runs don't multiply the footprint). `Sparse` is a flat map keyed
/// `(from << 32) | to`; it is only ever probed per-message, never iterated,
/// so map order cannot leak into behaviour.
enum FifoStore {
    /// FIFO disabled, or not yet initialised (built on first clamp).
    Unset,
    Off,
    Dense {
        stride: usize,
        rank: Vec<u32>,
        last: Vec<SimTime>,
    },
    Sparse {
        last: HashMap<u64, SimTime>,
    },
}

/// An explicit assignment of actors to shards for
/// [`Engine::run_with_plan`]. Plans are pure data: the same plan always
/// yields the same partition, and *any* plan yields the same run (that is
/// the whole point — see the shard-count-invariance proptest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    owner: Vec<u32>,
}

impl ShardPlan {
    /// `n` actors in `shards` contiguous blocks of `ceil(n / shards)`.
    /// Contiguity keeps neighbour-heavy topologies (rings, grids) mostly
    /// intra-shard.
    pub fn contiguous(n: usize, shards: usize) -> Self {
        let k = shards.clamp(1, n.max(1));
        let block = n.div_ceil(k).max(1);
        ShardPlan { owner: (0..n).map(|i| (i / block) as u32).collect() }
    }

    /// Round-robin: actor `i` goes to shard `i % shards`. Balances load
    /// when activity correlates with id ranges.
    pub fn interleaved(n: usize, shards: usize) -> Self {
        let k = shards.clamp(1, n.max(1));
        ShardPlan { owner: (0..n).map(|i| (i % k) as u32).collect() }
    }

    /// Deterministic hash partition (splitmix64 of the actor id), for
    /// statistically balanced shards independent of id structure.
    pub fn by_hash(n: usize, shards: usize) -> Self {
        let k = shards.clamp(1, n.max(1)) as u64;
        let owner = (0..n as u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % k) as u32
            })
            .collect();
        ShardPlan { owner }
    }

    /// Traffic-aware partition: cluster actors so that heavily communicating
    /// pairs co-locate, then bin-pack clusters onto shards. `edges` is an
    /// undirected affinity graph `(a, b, weight)` — typically per-channel
    /// message counts from [`crate::trace_analysis::TraceAnalysis::affinity_edges`]
    /// or a static estimate from the workload shape.
    ///
    /// The algorithm is a deterministic greedy edge merge: edges sorted by
    /// `(weight desc, a, b)` union their endpoint clusters while the merged
    /// cluster stays within `ceil(n / shards)` actors, then clusters are
    /// placed largest-first onto the least-loaded shard (lowest index on
    /// ties). Like every plan, the result only shapes *performance* — any
    /// plan yields the bit-identical run.
    pub fn by_affinity(n: usize, shards: usize, edges: &[(ActorId, ActorId, u64)]) -> Self {
        let k = shards.clamp(1, n.max(1));
        if n == 0 {
            return ShardPlan { owner: Vec::new() };
        }
        let cap = n.div_ceil(k).max(1);

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let g = parent[parent[x as usize] as usize];
                parent[x as usize] = g;
                x = g;
            }
            x
        }

        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut csize = vec![1u32; n];
        let mut es: Vec<(u32, u32, u64)> = edges
            .iter()
            .filter(|&&(a, b, w)| a < n && b < n && a != b && w > 0)
            .map(
                |&(a, b, w)| if a <= b { (a as u32, b as u32, w) } else { (b as u32, a as u32, w) },
            )
            .collect();
        es.sort_unstable_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        for (a, b, _) in es {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb && (csize[ra as usize] + csize[rb as usize]) as usize <= cap {
                // Root the merge at the lower id so cluster identity is
                // independent of edge processing order among equals.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
                csize[lo as usize] += csize[hi as usize];
            }
        }

        // Gather clusters in ascending-root order, then place largest-first
        // (stable sort keeps the ascending-root tie-break deterministic).
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for i in 0..n as u32 {
            let r = find(&mut parent, i);
            members.entry(r).or_default().push(i);
        }
        let mut clusters: Vec<(u32, Vec<u32>)> = members.into_iter().collect();
        clusters.sort_unstable_by_key(|(root, _)| *root);
        clusters.sort_by_key(|(_, m)| std::cmp::Reverse(m.len()));

        let mut owner = vec![0u32; n];
        let mut load = vec![0usize; k];
        for (_, m) in clusters {
            let s = (0..k).min_by_key(|&s| (load[s], s)).unwrap();
            load[s] += m.len();
            for a in m {
                owner[a as usize] = s as u32;
            }
        }
        ShardPlan { owner }
    }

    /// An explicit `actor → shard` map. Panics if empty.
    pub fn explicit(owner: Vec<u32>) -> Self {
        assert!(!owner.is_empty(), "ShardPlan::explicit: empty owner map");
        ShardPlan { owner }
    }

    /// Number of shards this plan spreads actors over.
    pub fn shard_count(&self) -> usize {
        self.owner.iter().copied().max().map_or(1, |m| m as usize + 1)
    }

    /// The owning shard of each actor, indexed by actor id.
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }
}

/// What the exchange rings carry: a cross-shard event as `(delivery time,
/// canonical key, payload)` — exactly an outbox entry.
type RingItem<M> = (SimTime, u64, Pending<M>);

/// The per-shard execution state: one lane owns a disjoint subset of the
/// actors, their private RNG streams, a heap of their pending events, and
/// its own trace/stats accumulators. The sequential engine is exactly one
/// lane owning everybody. Per-actor vectors are full-size (indexed by
/// global actor id) so the hot path needs no local-index indirection;
/// non-member slots are simply never touched.
struct Lane<M: Message> {
    shard: usize,
    now: SimTime,
    queue: EventQueue<Pending<M>>,
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    /// Per-actor protocol streams (`factory.stream(id + 1)`).
    rngs: Vec<RngStream>,
    /// Per-sender network streams (`"engine.network.<id>"`): delay and loss
    /// draws for messages *sent by* that actor.
    net_rngs: Vec<RngStream>,
    /// Per-sender fault-plane streams (`"engine.faults.<id>"`); empty until
    /// [`Engine::install_faults`].
    fault_rngs: Vec<RngStream>,
    /// Per-sender loss-model state (Gilbert–Elliott is stateful, so each
    /// channel owner carries its own copy).
    loss: Vec<crate::loss::LossModel>,
    /// Per-sender transmission counters; message id = `((from+1) << 40) | c`.
    msg_ctr: Vec<u64>,
    /// Per-actor timer counters; timer key payload = `(actor << 40) | c`.
    timer_ctr: Vec<u64>,
    /// The actor ids this lane owns, ascending.
    members: Vec<ActorId>,
    /// `owner[actor] = shard`; empty in sequential mode (everything local).
    owner: Vec<u32>,
    /// Cross-shard events awaiting routing at the next window barrier.
    /// With the ring exchange installed this only holds ring overflow
    /// (and, in optimistic windows, everything — speculative events must
    /// stay private until commit).
    outbox: Vec<(SimTime, u64, Pending<M>)>,
    /// Ring exchange, producing side: `ring_out[shard]` publishes to that
    /// shard's lane as events are generated, overlapping the barrier work.
    /// Empty (or `None` for self/unused pairs) outside conservative
    /// sharded runs.
    ring_out: Vec<Option<crate::ring::Producer<RingItem<M>>>>,
    /// Ring exchange, consuming side: `ring_in[shard]` receives events
    /// published by that shard's lane.
    ring_in: Vec<Option<crate::ring::Consumer<RingItem<M>>>>,
    /// Messages dropped for lack of a topology link. Only this counter —
    /// not `NetStats` — sees that path, and the optimistic mode's deferred
    /// metric flush needs an exact per-lane tally to reconstruct
    /// `engine.messages_dropped`.
    dropped_nolink: u64,
    fifo: FifoStore,
    fifo_dense_limit: usize,
    /// When true (speculative window), every FIFO-clamp store is journaled
    /// in `fifo_undo` for rollback.
    fifo_log: bool,
    /// Undo journal of `(slot, previous value)` pairs, replayed in reverse
    /// on rollback. Dense slot = `rank * stride + to`; sparse slot =
    /// `(from << 32) | to` (a sparse entry absent before the window rolls
    /// back to a stored `ZERO`, which the clamp treats identically).
    fifo_undo: Vec<(u64, SimTime)>,
    trace: Trace,
    stats: NetStats,
    /// Transmit/delivery-side fault counters (the plane is read-only during
    /// windows); merged into the plane's op-side counters on read.
    fstats: FaultStats,
    /// Messages parked by this lane at transmit time; drained into the
    /// plane at the next coordinator barrier.
    parked_out: Vec<Parked<M>>,
    /// Signed because a lane can deliver (−1) messages another lane sent
    /// (+1); only the sum across lanes is meaningful.
    in_flight: i64,
    events_processed: u64,
    halted: bool,
    action_scratch: Vec<Action<M>>,
    peer_scratch: Vec<ActorId>,
    m: EngineMetrics,
    /// Phase-scoped wall-clock telemetry for this shard. Inert (no clock
    /// reads, no stores) unless a live [`Telemetry`] registry was attached.
    tel: ShardTelemetry,
}

impl<M: Message> Lane<M> {
    fn new(m: EngineMetrics) -> Self {
        Lane {
            shard: 0,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            actors: Vec::new(),
            rngs: Vec::new(),
            net_rngs: Vec::new(),
            fault_rngs: Vec::new(),
            loss: Vec::new(),
            msg_ctr: Vec::new(),
            timer_ctr: Vec::new(),
            members: Vec::new(),
            owner: Vec::new(),
            outbox: Vec::new(),
            ring_out: Vec::new(),
            ring_in: Vec::new(),
            dropped_nolink: 0,
            fifo: FifoStore::Unset,
            fifo_dense_limit: DENSE_ACTOR_LIMIT,
            fifo_log: false,
            fifo_undo: Vec::new(),
            trace: Trace::disabled(),
            stats: NetStats::default(),
            fstats: FaultStats::default(),
            parked_out: Vec::new(),
            in_flight: 0,
            events_processed: 0,
            halted: false,
            action_scratch: Vec::new(),
            peer_scratch: Vec::new(),
            m,
            tel: ShardTelemetry::disabled(),
        }
    }

    /// Does this lane own the destination? (Sequential lanes own everyone;
    /// ids past the owner map — topology nodes with no actor — count as
    /// local, so the delivery no-ops in the sending lane like it would in
    /// the sequential engine.)
    #[inline]
    fn local(&self, actor: ActorId) -> bool {
        match self.owner.get(actor) {
            None => true,
            Some(&s) => s as usize == self.shard,
        }
    }

    #[inline]
    fn next_msg_id(&mut self, from: ActorId) -> u64 {
        let c = self.msg_ctr[from];
        self.msg_ctr[from] = c + 1;
        debug_assert!(c < (1 << 40), "per-sender message counter overflow");
        ((from as u64 + 1) << 40) | c
    }

    /// Schedule a delivery, locally or (sharded mode) via the exchange
    /// ring when installed, with the outbox as ring-overflow spill and as
    /// the sole cross-shard path in optimistic windows (speculative events
    /// must stay private until commit — a ring publish can't be recalled).
    #[inline]
    fn schedule_delivery(&mut self, at: SimTime, from: ActorId, to: ActorId, msg: M, id: u64) {
        let key = event_key(key_class::DELIVER, id);
        let pending = Pending::Deliver { from: from as u32, to: to as u32, msg, id };
        if self.local(to) {
            self.queue.schedule_keyed(at, key, pending);
        } else {
            let dest = self.owner[to] as usize;
            match self.ring_out.get_mut(dest).and_then(Option::as_mut) {
                Some(ring) => {
                    if let Err(item) = ring.push((at, key, pending)) {
                        // Ring full: spill to the outbox (routed at the next
                        // barrier). Count it — sustained spills mean the ring
                        // capacity is undersized for this workload.
                        self.m.ring_spills.inc();
                        self.outbox.push(item);
                    }
                }
                None => self.outbox.push((at, key, pending)),
            }
        }
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight.max(0) as u64);
    }

    /// Absorb every event currently published to this lane's incoming
    /// rings into the local heap. Safe mid-run: published arrivals are at
    /// or beyond every lane's window bound, and heap order is total on
    /// `(time, key)`, so absorption timing cannot change the run. Workers
    /// call this after their window (overlapping other lanes' windows);
    /// the coordinator calls it again at the barrier, when producers are
    /// quiescent, to make the drain exhaustive.
    fn absorb_rings(&mut self) {
        for i in 0..self.ring_in.len() {
            if let Some(ring) = self.ring_in[i].as_mut() {
                while let Some((at, key, pending)) = ring.pop() {
                    self.queue.schedule_keyed(at, key, pending);
                }
            }
        }
    }

    /// Dispatch `on_start` to every member, in id order, under start
    /// cursors (which the canonical seal orders before all queue events).
    fn dispatch_starts(&mut self, net: &NetworkConfig, plane: Option<&FaultPlane<M>>) {
        for i in 0..self.members.len() {
            if self.halted {
                break;
            }
            let id = self.members[i];
            self.trace.set_cursor(Trace::start_cursor(id));
            self.dispatch(id, Dispatch::Start, net, plane);
        }
    }

    /// Pop and process local events while `at < wend` (`None` = unbounded)
    /// — the engine's hot loop, shared verbatim by the sequential run and
    /// the shard workers.
    fn advance_until(
        &mut self,
        wend: Option<SimTime>,
        net: &NetworkConfig,
        plane: Option<&FaultPlane<M>>,
    ) {
        while !self.halted {
            let Some(at) = self.queue.peek_time() else { break };
            if let Some(end) = wend {
                if at >= end {
                    break;
                }
            }
            let (at, key, pending) = self.queue.pop_entry().expect("peeked");
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            self.events_processed += 1;
            self.m.events.inc();
            self.trace.set_cursor(Trace::event_cursor(key));
            match pending {
                Pending::Deliver { from, to, msg, id } => {
                    let (from, to) = (from as ActorId, to as ActorId);
                    // One predictable branch when no fault plane is
                    // installed; a delivery to a crashed node is lost.
                    match plane {
                        Some(p) if p.is_down(to) => {
                            self.fstats.dropped_at_down += 1;
                            self.trace
                                .record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                            self.stats.messages_lost += 1;
                            self.stats.messages_faulted += 1;
                            self.m.dropped.inc();
                            self.in_flight -= 1;
                            self.m.in_flight.set(self.in_flight.max(0) as u64);
                        }
                        _ => {
                            self.trace.record(
                                self.now,
                                TraceKind::Delivered { from, to, msg: MsgId(id) },
                            );
                            self.stats.messages_delivered += 1;
                            self.m.delivered.inc();
                            self.in_flight -= 1;
                            self.m.in_flight.set(self.in_flight.max(0) as u64);
                            self.dispatch(to, Dispatch::Message { from, msg }, net, plane);
                        }
                    }
                }
                Pending::Timer { actor, tag } => {
                    let actor = actor as ActorId;
                    // A crashed node's timers are silently discarded (the
                    // process re-arms what it needs on recovery).
                    match plane {
                        Some(p) if p.is_down(actor) => {
                            self.fstats.timers_suppressed += 1;
                        }
                        _ => {
                            self.trace.record(self.now, TraceKind::TimerFired { actor, tag });
                            self.dispatch(actor, Dispatch::Timer { tag }, net, plane);
                        }
                    }
                }
            }
            self.m.queue_depth.set(self.queue.len() as u64);
        }
    }

    fn dispatch(
        &mut self,
        id: ActorId,
        what: Dispatch<M>,
        net: &NetworkConfig,
        plane: Option<&FaultPlane<M>>,
    ) {
        let Some(slot) = self.actors.get_mut(id) else { return };
        let Some(mut actor) = slot.take() else { return };
        // Lend the lane's scratch buffer to the callback, then take it
        // back: dispatch allocates nothing once the buffer has warmed up.
        let mut actions = std::mem::take(&mut self.action_scratch);
        debug_assert!(actions.is_empty());
        let mut ctx = Context {
            now: self.now,
            id,
            n: self.actors.len(),
            trace_on: self.trace.is_enabled(),
            rng: &mut self.rngs[id],
            actions: &mut actions,
        };
        match what {
            Dispatch::Start => actor.on_start(&mut ctx),
            Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
            Dispatch::Timer { tag } => actor.on_timer(&mut ctx, tag),
            Dispatch::Fault { event } => actor.on_fault(&mut ctx, &event),
        }
        self.actors[id] = Some(actor);
        for a in actions.drain(..) {
            self.apply(id, a, net, plane);
        }
        self.action_scratch = actions;
    }

    fn apply(
        &mut self,
        from: ActorId,
        action: Action<M>,
        net: &NetworkConfig,
        plane: Option<&FaultPlane<M>>,
    ) {
        match action {
            Action::Send { to, msg } => self.transmit(from, to, msg, net, plane),
            Action::Broadcast { msg } => {
                self.stats.broadcasts += 1;
                let mut peers = std::mem::take(&mut self.peer_scratch);
                net.topology.collect_neighbors(from, &mut peers);
                // The message moves to the final peer; only the first
                // `len - 1` transmissions clone it.
                if let Some((&last, rest)) = peers.split_last() {
                    for &to in rest {
                        self.transmit(from, to, msg.clone(), net, plane);
                    }
                    self.transmit(from, last, msg, net, plane);
                }
                self.peer_scratch = peers;
            }
            Action::SetTimer { after, tag } => {
                let c = self.timer_ctr[from];
                self.timer_ctr[from] = c + 1;
                debug_assert!(c < (1 << 40), "per-actor timer counter overflow");
                let key = event_key(key_class::TIMER, ((from as u64) << 40) | c);
                self.queue.schedule_keyed(
                    self.now + after,
                    key,
                    Pending::Timer { actor: from as u32, tag },
                );
            }
            Action::Note { label } => {
                self.trace.record(self.now, TraceKind::Note { actor: from, label });
            }
            Action::Trace(t) => {
                let ProcessTrace { kind, stamp, detail } = *t;
                self.trace
                    .record(self.now, TraceKind::Process { actor: from, kind, stamp, detail });
            }
            Action::Halt => self.halted = true,
        }
    }

    fn transmit(
        &mut self,
        from: ActorId,
        to: ActorId,
        msg: M,
        net: &NetworkConfig,
        plane: Option<&FaultPlane<M>>,
    ) {
        if !net.topology.connected(from, to) {
            self.dropped_nolink += 1;
            self.m.dropped.inc();
            return; // no link: silently dropped
        }
        // One predictable branch: with a fault plane installed the
        // transmission goes through the partition/channel-fault pipeline,
        // which replicates this hot path exactly when no fault applies.
        if let Some(plane) = plane {
            return self.transmit_faulted(from, to, msg, net, plane);
        }
        let bytes = msg.size_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let id = self.next_msg_id(from);
        self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(id) });
        if self.loss[from].is_lost(&mut self.net_rngs[from]) {
            self.stats.messages_lost += 1;
            self.m.dropped.inc();
            self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
            return;
        }
        let delay = net.delay.sample(&mut self.net_rngs[from]);
        let mut deliver_at = self.now + delay;
        if net.fifo {
            deliver_at = self.fifo_clamp(from, to, deliver_at, net);
        }
        self.schedule_delivery(deliver_at, from, to, msg, id);
    }

    /// [`Lane::transmit`] with the fault plane interposed: partitions
    /// block or park, channel-fault rules drop/duplicate/reorder/corrupt,
    /// then the normal loss/delay/FIFO pipeline runs. When nothing in the
    /// plane applies, this performs exactly the same accounting, records,
    /// and RNG draws as the plain path (the faults-off determinism test
    /// relies on it). The plane is read-only here — all mutation
    /// (counters, parked messages) lands in this lane's own accumulators.
    fn transmit_faulted(
        &mut self,
        from: ActorId,
        to: ActorId,
        mut msg: M,
        net: &NetworkConfig,
        plane: &FaultPlane<M>,
    ) {
        let bytes = msg.size_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let id = self.next_msg_id(from);
        self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(id) });

        // 1. Partitions sever the channel before anything else.
        if plane.active_cuts > 0 && plane.blocked(from, to) {
            match plane.cut_policy(from, to) {
                CutPolicy::Drop => {
                    self.stats.messages_lost += 1;
                    self.stats.messages_faulted += 1;
                    self.m.dropped.inc();
                    self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                    self.fstats.dropped_by_partition += 1;
                }
                CutPolicy::Park => {
                    self.trace.record(
                        self.now,
                        TraceKind::Fault { actor: from, kind: FaultRecordKind::Parked, detail: id },
                    );
                    self.parked_out.push(Parked { from, to, msg, id, deliver_at: self.now });
                    self.fstats.parked += 1;
                    self.in_flight += 1; // parked still counts as in flight
                    self.m.in_flight.set(self.in_flight.max(0) as u64);
                }
            }
            return;
        }

        // 2. Channel-fault pipeline (draws only from the sender's plane
        // stream).
        let mut duplicate = false;
        let mut extra_delay = None;
        if plane.active_rules > 0 {
            match plane.channel_effect(from, to, &mut self.fault_rngs[from]) {
                Some(ChannelEffect::Drop) => {
                    self.stats.messages_lost += 1;
                    self.stats.messages_faulted += 1;
                    self.m.dropped.inc();
                    self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                    self.trace.record(
                        self.now,
                        TraceKind::Fault {
                            actor: from,
                            kind: FaultRecordKind::ChannelDrop,
                            detail: id,
                        },
                    );
                    self.fstats.dropped_by_channel += 1;
                    return;
                }
                // Not a match guard: corrupt() both decides and mutates,
                // and a failed guard would fall through to other arms.
                #[allow(clippy::collapsible_match)]
                Some(ChannelEffect::Corrupt) => {
                    if msg.corrupt(&mut self.fault_rngs[from]) {
                        self.fstats.corrupted += 1;
                        self.trace.record(
                            self.now,
                            TraceKind::Fault {
                                actor: from,
                                kind: FaultRecordKind::Corrupted,
                                detail: id,
                            },
                        );
                    }
                }
                Some(ChannelEffect::Duplicate) => duplicate = true,
                Some(ChannelEffect::Reorder { extra }) => extra_delay = Some(extra),
                None => {}
            }
        }

        // 3. The normal loss/delay/FIFO pipeline, identical to the plain
        // path (same per-sender net stream draw order).
        if self.loss[from].is_lost(&mut self.net_rngs[from]) {
            self.stats.messages_lost += 1;
            self.m.dropped.inc();
            self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
            return;
        }
        let delay = net.delay.sample(&mut self.net_rngs[from]);
        let mut deliver_at = self.now + delay;
        if let Some(extra) = extra_delay {
            // Reorder: extra delay and no FIFO clamp (and no fifo-state
            // update), so later sends on this channel may overtake.
            deliver_at += extra;
            self.fstats.reordered += 1;
            self.trace.record(
                self.now,
                TraceKind::Fault { actor: from, kind: FaultRecordKind::Reordered, detail: id },
            );
        } else if net.fifo {
            deliver_at = self.fifo_clamp(from, to, deliver_at, net);
        }
        let copy = if duplicate { Some(msg.clone()) } else { None };
        self.schedule_delivery(deliver_at, from, to, msg, id);

        // 4. The duplicate copy: its own message id, its own delay (from
        // the sender's plane stream), no FIFO clamp.
        if let Some(copy) = copy {
            let dup_id = self.next_msg_id(from);
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.stats.messages_duplicated += 1;
            self.fstats.duplicated += 1;
            self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(dup_id) });
            self.trace.record(
                self.now,
                TraceKind::Fault { actor: from, kind: FaultRecordKind::Duplicated, detail: dup_id },
            );
            let dup_delay = net.delay.sample(&mut self.fault_rngs[from]);
            self.schedule_delivery(self.now + dup_delay, from, to, copy, dup_id);
        }
    }

    /// Apply the per-channel FIFO clamp and update the channel state.
    #[inline]
    fn fifo_clamp(
        &mut self,
        from: ActorId,
        to: ActorId,
        deliver_at: SimTime,
        net: &NetworkConfig,
    ) -> SimTime {
        loop {
            match &mut self.fifo {
                FifoStore::Off => return deliver_at,
                FifoStore::Dense { stride, rank, last } => {
                    if to >= *stride || from >= rank.len() {
                        self.fifo_setup(net); // topology grew: rebuild
                        continue;
                    }
                    let r = rank[from] as usize;
                    debug_assert!(r != u32::MAX as usize, "sender not a member of this lane");
                    let slot = r * *stride + to;
                    let cell = &mut last[slot];
                    let t = if deliver_at < *cell { *cell } else { deliver_at };
                    if self.fifo_log {
                        self.fifo_undo.push((slot as u64, *cell));
                    }
                    *cell = t;
                    return t;
                }
                FifoStore::Sparse { last } => {
                    let key = ((from as u64) << 32) | to as u64;
                    let cell = last.entry(key).or_insert(SimTime::ZERO);
                    let t = if deliver_at < *cell { *cell } else { deliver_at };
                    if self.fifo_log {
                        self.fifo_undo.push((key, *cell));
                    }
                    *cell = t;
                    return t;
                }
                FifoStore::Unset => {
                    self.fifo_setup(net);
                    continue;
                }
            }
        }
    }

    /// (Re)build the FIFO store for the current topology size, preserving
    /// any existing channel state. Cold: runs once per run (or per
    /// topology-size change).
    #[cold]
    fn fifo_setup(&mut self, net: &NetworkConfig) {
        if !net.fifo {
            self.fifo = FifoStore::Off;
            return;
        }
        let n = net.topology.len().max(self.actors.len());
        let old = std::mem::replace(&mut self.fifo, FifoStore::Unset);
        if n <= self.fifo_dense_limit {
            let mut rank = vec![u32::MAX; n];
            for (r, &id) in self.members.iter().enumerate() {
                if id < n {
                    rank[id] = r as u32;
                }
            }
            let mut last = vec![SimTime::ZERO; self.members.len() * n];
            // Preserve prior clamp state across a rebuild (re-runs after
            // topology growth).
            match old {
                FifoStore::Dense { stride, rank: old_rank, last: old_last } => {
                    for (from, &r_old) in old_rank.iter().enumerate() {
                        if r_old == u32::MAX || from >= n || rank[from] == u32::MAX {
                            continue;
                        }
                        let r_new = rank[from] as usize;
                        for to in 0..stride.min(n) {
                            last[r_new * n + to] = old_last[r_old as usize * stride + to];
                        }
                    }
                }
                FifoStore::Sparse { last: old_last } => {
                    for (key, at) in old_last {
                        let (from, to) = ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize);
                        if from < n && to < n && rank[from] != u32::MAX {
                            last[rank[from] as usize * n + to] = at;
                        }
                    }
                }
                _ => {}
            }
            self.fifo = FifoStore::Dense { stride: n, rank, last };
        } else {
            let mut map = HashMap::new();
            match old {
                FifoStore::Dense { stride, rank: old_rank, last: old_last } => {
                    for (from, &r) in old_rank.iter().enumerate() {
                        if r == u32::MAX {
                            continue;
                        }
                        for to in 0..stride {
                            let at = old_last[r as usize * stride + to];
                            if at != SimTime::ZERO {
                                map.insert(((from as u64) << 32) | to as u64, at);
                            }
                        }
                    }
                }
                FifoStore::Sparse { last } => map = last,
                _ => {}
            }
            self.fifo = FifoStore::Sparse { last: map };
        }
    }

    /// Can every actor this lane owns produce a rollback checkpoint? The
    /// optimistic coordinator probes this once per run and silently falls
    /// back to conservative windows on `false`. (A slot already recovered
    /// with [`Engine::take_actor`] is never dispatched, so it needs no
    /// checkpoint and does not block speculation.)
    fn forkable(&self) -> bool {
        self.members.iter().all(|&id| self.actors[id].as_ref().is_none_or(|a| a.fork().is_some()))
    }

    /// Open a speculative window: snapshot everything a window can mutate
    /// (actor state via [`Actor::fork`], member RNG/loss/counter state,
    /// accumulators, a trace mark) and switch the queue and FIFO clamp
    /// into journaling mode. Cost is proportional to the lane's member
    /// count plus the window's work — never to queue depth.
    fn begin_spec(&mut self) -> LaneCheckpoint<M> {
        let member_clone = |v: &[RngStream]| -> Vec<RngStream> {
            if v.is_empty() {
                Vec::new()
            } else {
                self.members.iter().map(|&id| v[id].clone()).collect()
            }
        };
        let cp = LaneCheckpoint {
            now: self.now,
            halted: self.halted,
            in_flight: self.in_flight,
            events_processed: self.events_processed,
            dropped_nolink: self.dropped_nolink,
            stats: self.stats.clone(),
            fstats: self.fstats.clone(),
            actors: self
                .members
                .iter()
                .map(|&id| {
                    self.actors[id]
                        .as_ref()
                        .map(|a| a.fork().expect("probed forkable at run start"))
                })
                .collect(),
            rngs: member_clone(&self.rngs),
            net_rngs: member_clone(&self.net_rngs),
            fault_rngs: member_clone(&self.fault_rngs),
            loss: self.members.iter().map(|&id| self.loss[id].clone()).collect(),
            msg_ctr: self.members.iter().map(|&id| self.msg_ctr[id]).collect(),
            timer_ctr: self.members.iter().map(|&id| self.timer_ctr[id]).collect(),
            parked_len: self.parked_out.len(),
            outbox_len: self.outbox.len(),
            trace: self.trace.mark(),
        };
        self.queue.spec_begin();
        debug_assert!(self.fifo_undo.is_empty());
        self.fifo_log = true;
        cp
    }

    /// Confirm a speculative window: merge the journaled queue work and
    /// drop the journals. O(window work).
    fn commit_spec(&mut self, _cp: LaneCheckpoint<M>) {
        self.queue.spec_commit();
        self.fifo_log = false;
        self.fifo_undo.clear();
    }

    /// Undo a speculative window completely: restore the queue from its
    /// journal, replay the FIFO undo log in reverse, put back the forked
    /// actor/RNG/counter state, truncate the trace and outbox, and restore
    /// every scalar accumulator. After this the lane is bit-identical to
    /// the moment [`Lane::begin_spec`] ran.
    fn rollback_spec(&mut self, cp: LaneCheckpoint<M>) {
        self.queue.spec_rollback();
        while let Some((slot, prev)) = self.fifo_undo.pop() {
            match &mut self.fifo {
                FifoStore::Dense { last, .. } => last[slot as usize] = prev,
                FifoStore::Sparse { last } => {
                    last.insert(slot, prev);
                }
                // The store only transitions Unset → Dense/Sparse, and only
                // before its first journaled write.
                FifoStore::Unset | FifoStore::Off => unreachable!("journaled write without store"),
            }
        }
        self.fifo_log = false;
        let LaneCheckpoint {
            now,
            halted,
            in_flight,
            events_processed,
            dropped_nolink,
            stats,
            fstats,
            actors,
            rngs,
            net_rngs,
            fault_rngs,
            loss,
            msg_ctr,
            timer_ctr,
            parked_len,
            outbox_len,
            trace,
        } = cp;
        for (i, actor) in actors.into_iter().enumerate() {
            let id = self.members[i];
            self.actors[id] = actor;
            self.loss[id] = loss[i].clone();
            self.msg_ctr[id] = msg_ctr[i];
            self.timer_ctr[id] = timer_ctr[i];
        }
        for (i, r) in rngs.into_iter().enumerate() {
            self.rngs[self.members[i]] = r;
        }
        for (i, r) in net_rngs.into_iter().enumerate() {
            self.net_rngs[self.members[i]] = r;
        }
        for (i, r) in fault_rngs.into_iter().enumerate() {
            self.fault_rngs[self.members[i]] = r;
        }
        self.trace.rollback(&trace);
        self.parked_out.truncate(parked_len);
        self.outbox.truncate(outbox_len);
        self.now = now;
        self.halted = halted;
        self.in_flight = in_flight;
        self.events_processed = events_processed;
        self.dropped_nolink = dropped_nolink;
        self.stats = stats;
        self.fstats = fstats;
    }

    /// Flush this lane's counter deltas since `snap` into the real metric
    /// handles `m`, then advance `snap`. The optimistic mode detaches the
    /// lanes' own handles (counters cannot be decremented, so speculative
    /// work must not touch them) and instead calls this at every commit
    /// point; checkpoints are taken right after a flush, so a rollback
    /// restores the counters to exactly the flushed values.
    fn flush_metrics(&self, snap: &mut MetricSnap, m: &EngineMetrics) {
        m.events.add(self.events_processed - snap.events);
        m.delivered.add(self.stats.messages_delivered - snap.delivered);
        m.dropped.add((self.stats.messages_lost - snap.lost) + (self.dropped_nolink - snap.nolink));
        *snap = MetricSnap::of(self);
    }
}

/// Everything [`Lane::begin_spec`] snapshots; consumed by
/// [`Lane::rollback_spec`] or dropped by [`Lane::commit_spec`]. Member-
/// indexed vectors run parallel to `Lane::members`.
struct LaneCheckpoint<M: Message> {
    now: SimTime,
    halted: bool,
    in_flight: i64,
    events_processed: u64,
    dropped_nolink: u64,
    stats: NetStats,
    fstats: FaultStats,
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    rngs: Vec<RngStream>,
    net_rngs: Vec<RngStream>,
    fault_rngs: Vec<RngStream>,
    loss: Vec<crate::loss::LossModel>,
    msg_ctr: Vec<u64>,
    timer_ctr: Vec<u64>,
    parked_len: usize,
    outbox_len: usize,
    trace: crate::trace::TraceMark,
}

/// Per-lane counter baseline for the optimistic mode's deferred metric
/// flush (see [`Lane::flush_metrics`]).
#[derive(Clone, Copy, Default)]
struct MetricSnap {
    events: u64,
    delivered: u64,
    lost: u64,
    nolink: u64,
}

impl MetricSnap {
    fn of<M: Message>(lane: &Lane<M>) -> Self {
        MetricSnap {
            events: lane.events_processed,
            delivered: lane.stats.messages_delivered,
            lost: lane.stats.messages_lost,
            nolink: lane.dropped_nolink,
        }
    }
}

/// The simulation engine.
pub struct Engine<M: Message> {
    /// The resident lane. Sequential runs execute directly on it; sharded
    /// runs split it into per-shard lanes and merge back afterwards.
    lane: Lane<M>,
    network: NetworkConfig,
    factory: RngFactory,
    end_time: SimTime,
    /// Ids for injected external deliveries: a small counter disjoint from
    /// transmitted ids (those start at `1 << 40`), so injections at an
    /// instant always sort before transmissions at the same instant.
    next_inject_id: u64,
    /// Next un-applied fault-plane operation (ops are time-sorted).
    op_cursor: usize,
    /// Whether `on_start` has been dispatched. Start callbacks fire exactly
    /// once per engine, on the first `run`/`run_with_plan`/`step_until` —
    /// incremental stepping must not re-arm start timers on every call.
    started: bool,
    /// The installed fault plane, if any. `None` on the hot path costs one
    /// predictable branch per event; see [`Engine::install_faults`].
    fault: Option<Box<FaultPlane<M>>>,
    /// Use the lock-free SPSC exchange rings for cross-shard events in
    /// conservative sharded runs (on by default; the outbox is always the
    /// spill path).
    ring_exchange: bool,
    /// Run sharded windows optimistically (Time Warp): speculate
    /// `spec_horizon × lookahead` past the conservative bound, roll back
    /// on stragglers. Requires every actor to implement [`Actor::fork`];
    /// falls back to conservative windows otherwise.
    optimistic: bool,
    /// Speculative window length as a multiple of the conservative
    /// lookahead; ≥ 2 (1 would speculate nothing).
    spec_horizon: u32,
    /// Host-side checkpoint/rollback callbacks for optimistic runs.
    hooks: Option<Box<dyn SpeculationHooks + Send>>,
    /// Lane-rollbacks performed by optimistic runs (also exported as the
    /// `engine.rollbacks` counter).
    rollback_count: u64,
    m: EngineMetrics,
    /// Phase-scoped wall-clock telemetry registry. Disabled (inert, no
    /// clock reads) unless [`Engine::set_telemetry`] attached a live one.
    tel: Telemetry,
}

impl<M: Message> Engine<M> {
    /// Build an engine over the given network, with per-actor RNG streams
    /// derived from `seed`.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        let m = EngineMetrics::attach(&Metrics::disabled());
        Engine {
            lane: Lane::new(m.clone()),
            network,
            factory: RngFactory::new(seed),
            end_time: SimTime::MAX,
            next_inject_id: 0,
            op_cursor: 0,
            started: false,
            fault: None,
            ring_exchange: true,
            optimistic: false,
            spec_horizon: SPEC_HORIZON,
            hooks: None,
            rollback_count: 0,
            m,
            tel: Telemetry::disabled(),
        }
    }

    /// Toggle the lock-free SPSC exchange rings for conservative sharded
    /// runs (on by default). With rings off, every cross-shard event takes
    /// the outbox + coordinator-barrier path — useful as a control when
    /// measuring, and as a conservative fallback. Either setting yields
    /// the bit-identical run.
    pub fn set_ring_exchange(&mut self, on: bool) {
        self.ring_exchange = on;
    }

    /// Opt in to optimistic (Time Warp) sharded execution: windows
    /// speculate past the conservative lookahead bound from per-lane
    /// checkpoints and roll back when a cross-shard straggler arrives
    /// inside the speculated span. Requires every actor (and
    /// [`SpeculationHooks`] for any host-side state) to support
    /// checkpointing via [`Actor::fork`]; an engine with an unforkable
    /// actor silently runs conservative windows instead. Either mode
    /// yields the bit-identical run — speculation only changes how many
    /// barriers it takes to get there.
    pub fn set_optimistic(&mut self, on: bool) {
        self.optimistic = on;
    }

    /// Speculative window length as a multiple of the conservative
    /// lookahead (default [`SPEC_HORIZON`]); clamped to ≥ 2.
    pub fn set_speculation_horizon(&mut self, factor: u32) {
        self.spec_horizon = factor.max(2);
    }

    /// Install host-side checkpoint/rollback callbacks for optimistic
    /// runs (see [`SpeculationHooks`]). Hosts whose actors write into
    /// external state (logs, channels) must install hooks or keep
    /// speculation off.
    pub fn set_speculation_hooks(&mut self, hooks: Box<dyn SpeculationHooks + Send>) {
        self.hooks = Some(hooks);
    }

    /// Total lane-rollbacks performed by optimistic runs on this engine.
    pub fn rollbacks(&self) -> u64 {
        self.rollback_count
    }

    /// Install a [`FaultScript`]: every scripted fault is expanded into a
    /// time-sorted operation list the run interleaves with queue events
    /// (ops at an instant apply before deliveries/timers at that instant).
    /// Call after [`Engine::add_actor`] (the plane sizes its crash mask
    /// from the actor count) and before [`Engine::run`]. The plane draws
    /// from its own per-sender streams (labels `"engine.faults.<id>"`,
    /// derived statelessly from the master seed), never from the network
    /// RNGs — an **empty** script is observationally identical to not
    /// installing one at all.
    pub fn install_faults(&mut self, script: &FaultScript) {
        let plane = FaultPlane::new(script, self.lane.actors.len());
        self.lane.fault_rngs = (0..self.lane.actors.len())
            .map(|id| self.factory.labeled_stream(&format!("engine.faults.{id}")))
            .collect();
        self.op_cursor = 0;
        self.fault = Some(Box::new(plane));
    }

    /// The fault plane's counters, if a script is installed: op-side
    /// counters (crashes, cuts, …) plus the transmit/delivery-side counters
    /// the lanes accumulated, plus the still-parked backlog.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|p| {
            let mut s = p.stats();
            s.absorb(&self.lane.fstats);
            s.parked_leftover += self.lane.parked_out.len() as u64;
            s
        })
    }

    /// Messages scheduled (or parked by a partition) but not yet delivered.
    /// After a run this is the undelivered backlog; together with the
    /// delivered/lost counters it closes the queue-conservation identity
    /// the chaos soak asserts.
    pub fn in_flight(&self) -> u64 {
        self.lane.in_flight.max(0) as u64
    }

    /// Record engine metrics (events processed, delivered vs dropped
    /// messages, queue depth, in-flight high-water, run wall time) into
    /// `metrics`. Recording is observational only: a run with metrics
    /// attached is bit-identical to the same run without.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.m = EngineMetrics::attach(metrics);
        self.lane.m = self.m.clone();
    }

    /// Attach a phase-scoped wall-clock [`Telemetry`] registry: sequential
    /// runs record into shard slot 0; sharded runs record per shard plus a
    /// coordinator slot. Strictly off the deterministic path — wall-clock
    /// reads feed only telemetry, and a run with telemetry attached is
    /// bit-identical to the same run without (see the `telemetry` module
    /// docs and `tests/telemetry_determinism.rs`).
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.tel = t.clone();
        self.lane.tel = t.shard(0);
    }

    /// Register an actor; returns its id. Actors must be added before
    /// [`Engine::run`]. Ids are assigned densely from 0 and must agree with
    /// the network topology's node numbering.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        let id = self.lane.actors.len();
        self.lane.actors.push(Some(actor));
        self.lane.rngs.push(self.factory.stream(id as u64 + 1));
        self.lane.net_rngs.push(self.factory.labeled_stream(&format!("engine.network.{id}")));
        self.lane.loss.push(self.network.loss.clone());
        self.lane.msg_ctr.push(0);
        self.lane.timer_ctr.push(0);
        self.lane.members.push(id);
        id
    }

    /// Enable trace recording.
    pub fn enable_trace(&mut self) {
        self.lane.trace = Trace::enabled();
    }

    /// Stop the run at this time even if events remain.
    pub fn set_end_time(&mut self, end: SimTime) {
        self.end_time = end;
    }

    /// Override [`DENSE_ACTOR_LIMIT`] for this engine (tests cross-validate
    /// the dense and sparse FIFO paths by forcing each).
    pub fn set_fifo_dense_limit(&mut self, limit: usize) {
        self.lane.fifo_dense_limit = limit;
        self.lane.fifo = FifoStore::Unset;
    }

    /// Schedule an external input: `msg` will be delivered to `to` at `at`,
    /// bypassing the network's delay/loss models — used to inject
    /// precomputed world-plane timelines. `from` is a conventional source id
    /// (often the world actor's id).
    pub fn inject(&mut self, at: SimTime, to: ActorId, from: ActorId, msg: M) {
        debug_assert!(at >= self.lane.now, "inject into the past");
        let id = self.next_inject_id;
        self.next_inject_id += 1;
        debug_assert!(id < (1 << 40), "inject id overflow into transmitted-id space");
        self.lane.queue.schedule_keyed(
            at,
            event_key(key_class::DELIVER, id),
            Pending::Deliver { from: from as u32, to: to as u32, msg, id },
        );
        self.lane.in_flight += 1;
        self.m.in_flight.set(self.lane.in_flight.max(0) as u64);
        self.m.queue_depth.set(self.lane.queue.len() as u64);
    }

    /// The checked form of [`Engine::inject`] for events that cross the
    /// engine's external boundary (wire ingest, replayed logs): validates
    /// the actor ids, rejects events behind the engine clock (which would
    /// break time monotonicity once the engine has stepped past them), and
    /// surfaces id-space exhaustion as an error instead of a debug assert.
    pub fn try_inject(
        &mut self,
        at: SimTime,
        to: ActorId,
        from: ActorId,
        msg: M,
    ) -> Result<(), EngineError> {
        let n = self.lane.actors.len();
        if to >= n {
            return Err(EngineError::UnknownActor { id: to, actors: n });
        }
        if from >= n {
            return Err(EngineError::UnknownActor { id: from, actors: n });
        }
        if at < self.lane.now {
            return Err(EngineError::TimeRegression { at, now: self.lane.now });
        }
        if self.next_inject_id >= (1 << 40) {
            return Err(EngineError::InjectIdsExhausted);
        }
        self.inject(at, to, from, msg);
        Ok(())
    }

    /// Pre-reserve queue capacity for `n` additional events. Callers that
    /// bulk-[`inject`](Engine::inject) a known timeline (e.g. the world
    /// plane) should reserve up front to avoid repeated heap growth.
    pub fn reserve_events(&mut self, n: usize) {
        self.lane.queue.reserve(n);
    }

    /// Dispatch `on_start` to every actor exactly once per engine (the
    /// first `run`/`step_until` call; later calls are no-ops).
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.lane.trace.configure_actors(self.lane.actors.len());
        self.lane.dispatch_starts(&self.network, self.fault.as_deref());
    }

    /// Run until the queue drains, the end time passes, or an actor halts.
    /// Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        let wall_start = Instant::now();
        let events_before = self.lane.events_processed;
        self.ensure_started();
        self.advance_loop(None);
        // The whole sequential run (start dispatch included) is shard-0
        // busy time; `record` is a no-op when no registry is attached.
        self.lane.tel.record(Phase::Busy, Some(wall_start));
        self.finish_run(wall_start, events_before)
    }

    /// Advance the engine **incrementally** to `bound`: process every queue
    /// event and fault op with time `< bound`, then set the engine clock to
    /// `bound` (clamped by [`Engine::set_end_time`]). Unlike [`Engine::run`]
    /// this neither requires the queue to drain nor seals the trace — call
    /// it repeatedly with a growing watermark to drive the engine from a
    /// live event source, injecting between calls; events at exactly
    /// `bound` stay pending, so later injections `≥ bound` are always
    /// admissible. `on_start` is dispatched on the first call only. Returns
    /// the new engine time; a `bound` behind the engine clock is a
    /// [`EngineError::TimeRegression`].
    pub fn step_until(&mut self, bound: SimTime) -> Result<SimTime, EngineError> {
        if bound < self.lane.now {
            return Err(EngineError::TimeRegression { at: bound, now: self.lane.now });
        }
        self.ensure_started();
        let t0 = self.lane.tel.start();
        self.advance_loop(Some(bound));
        self.lane.tel.record(Phase::Busy, t0);
        if !self.lane.halted {
            let target = bound.min(self.end_time);
            if target > self.lane.now {
                self.lane.now = target;
            }
        }
        Ok(self.lane.now)
    }

    /// Seal the trace after a sequence of [`Engine::step_until`] calls
    /// (equivalent to what [`Engine::run`] does on completion) and return
    /// the final time. Idempotent.
    pub fn finish(&mut self) -> SimTime {
        self.lane.trace.seal();
        self.lane.now
    }

    /// True once an actor has called [`Context::halt`].
    pub fn is_halted(&self) -> bool {
        self.lane.halted
    }

    /// The sequential event loop shared by [`Engine::run`] (`limit: None`)
    /// and [`Engine::step_until`] (`limit: Some(bound)`, exclusive):
    /// interleave time-sorted fault-plane ops with queue events, stopping
    /// at halt, end-time, exhaustion, or the limit.
    fn advance_loop(&mut self, limit: Option<SimTime>) {
        loop {
            if self.lane.halted {
                break;
            }
            let op_at =
                self.fault.as_deref().and_then(|p| p.ops.get(self.op_cursor)).map(|&(at, _)| at);
            let next = match (op_at, self.lane.queue.peek_time()) {
                (Some(a), Some(b)) => {
                    if a <= b {
                        a
                    } else {
                        b
                    }
                }
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > self.end_time {
                self.lane.now = self.end_time;
                break;
            }
            if let Some(lim) = limit {
                if next >= lim {
                    break;
                }
            }
            if op_at == Some(next) {
                // Fault ops apply before queue events at the same instant
                // (class FAULT sorts first) and count as events for
                // continuity with the former queue-scheduled scheme.
                let idx = self.op_cursor;
                self.op_cursor += 1;
                self.lane.events_processed += 1;
                self.m.events.inc();
                let mut plane = self.fault.take().expect("op implies plane");
                // Transmit-time parks accumulate lane-side; fold them into
                // the plane before the op so a heal releases them (the
                // sharded coordinator does the same at its op barriers).
                collect_parked(std::slice::from_mut(&mut self.lane), &mut plane);
                apply_plane_op(
                    std::slice::from_mut(&mut self.lane),
                    &mut plane,
                    idx,
                    &self.network,
                );
                self.fault = Some(plane);
                self.m.queue_depth.set(self.lane.queue.len() as u64);
            } else {
                // Advance the queue up to (exclusive) the next op; with no
                // ops pending, run unbounded. The end-time check above
                // already bounded `next`, and events past `end_time` stop
                // the loop on the next iteration.
                let wend = op_at;
                let end_bound = if self.end_time == SimTime::MAX {
                    None
                } else {
                    Some(self.end_time.saturating_add(SimDuration::from_nanos(1)))
                };
                let bound = match (wend, end_bound) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let bound = match (bound, limit) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                self.lane.advance_until(bound, &self.network, self.fault.as_deref());
                if bound.is_none() || self.lane.queue.is_empty() {
                    // Nothing left below the bound and no op clipped us —
                    // unbounded advance drained everything it ever will.
                    if op_at.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// Shorthand for [`Engine::run_with_plan`] over a
    /// [`ShardPlan::contiguous`] partition into `shards` shards.
    pub fn run_sharded(&mut self, shards: usize) -> SimTime {
        self.run_with_plan(&ShardPlan::contiguous(self.lane.actors.len(), shards))
    }

    /// Run with actors partitioned across shard worker threads, advancing
    /// all shards concurrently through lookahead-bounded windows. The
    /// result — delivered-event sequence, per-actor RNG draws, trace,
    /// stats, fault effects — is **bit-identical** to [`Engine::run`].
    ///
    /// Falls back to the sequential loop when the plan has one shard, the
    /// network's lookahead ([`crate::delay::DelayModel::min_bound`]) is
    /// zero, or there are no actors. Like `run`, one call consumes the
    /// pending timeline; alternating `run`/`run_with_plan` calls on one
    /// engine is supported (state merges back into the resident lane).
    ///
    /// Caveat: [`Context::halt`] stops a sharded run at the end of the
    /// window (or start batch) that observed it, not mid-window — halting
    /// protocols should keep using `run`. `now()` still reports the halting
    /// lane's time.
    pub fn run_with_plan(&mut self, plan: &ShardPlan) -> SimTime {
        let n = self.lane.actors.len();
        let lookahead = self.network.delay.min_bound();
        let k = plan.shard_count().min(n.max(1));
        if k <= 1 || n == 0 || lookahead.is_zero() {
            return self.run();
        }
        assert!(
            plan.owner().len() >= n,
            "ShardPlan covers {} actors but engine has {n}",
            plan.owner().len()
        );
        let wall_start = Instant::now();
        let events_before = self.lane.events_processed;
        self.lane.trace.configure_actors(n);

        let mut lanes = self.split_lanes(plan.owner(), k);
        let op_times: Vec<SimTime> = self
            .fault
            .as_deref()
            .map(|p| p.ops.iter().map(|&(at, _)| at).collect())
            .unwrap_or_default();
        let plane_lock: RwLock<Option<Box<FaultPlane<M>>>> = RwLock::new(self.fault.take());
        let net = &self.network;
        let end_time = self.end_time;
        let metrics = self.m.clone();
        // Telemetry is recorded per shard (workers) plus a coordinator
        // slot; `tel_on` gates every wall-clock read so a disabled
        // registry costs nothing on the barrier path.
        let tel_on = self.tel.is_enabled();
        let coord_tel = self.tel.coordinator();
        let mut op_cursor = self.op_cursor;
        let mut end_hit = false;
        let mut outbox_scratch: Vec<(SimTime, u64, Pending<M>)> = Vec::new();
        let mut hooks = self.hooks.take();
        let mut rollbacks = 0u64;

        // Start dispatches run on the coordinator, per lane in shard order;
        // canonical start cursors make the resulting records order by actor
        // id regardless. Like the sequential path, starts fire once per
        // engine, not once per run.
        if !self.started {
            self.started = true;
            let guard = plane_lock.read();
            for lane in &mut lanes {
                lane.dispatch_starts(net, guard.as_deref());
            }
        }
        route_outboxes(&mut lanes, &mut outbox_scratch);

        // Speculation is all-or-nothing per run: every lane must be able
        // to checkpoint, or windows stay conservative.
        let optimistic_run = self.optimistic && lanes.iter().all(Lane::forkable);
        let spec_span = SimDuration::from_nanos(
            lookahead.as_nanos().saturating_mul(self.spec_horizon.max(2) as u64),
        );
        // Speculative cross-shard events must stay private until commit (a
        // ring publish cannot be recalled), so the rings serve the
        // conservative mode only.
        if self.ring_exchange && !optimistic_run {
            for lane in &mut lanes {
                lane.ring_out = (0..k).map(|_| None).collect();
                lane.ring_in = (0..k).map(|_| None).collect();
            }
            for i in 0..k {
                for j in 0..k {
                    if i != j {
                        let (tx, rx) = crate::ring::spsc(RING_CAPACITY);
                        lanes[i].ring_out[j] = Some(tx);
                        lanes[j].ring_in[i] = Some(rx);
                    }
                }
            }
        }
        // In optimistic runs the lanes' metric handles are detached
        // (counters cannot be decremented, so speculative work must not
        // reach them); the coordinator flushes per-lane deltas at every
        // commit point instead. Snapshots baseline whatever the start
        // dispatches already recorded through the live handles.
        let mut snaps: Vec<MetricSnap> = Vec::new();
        if optimistic_run {
            let inactive = EngineMetrics::attach(&Metrics::disabled());
            for lane in &mut lanes {
                lane.m = inactive.clone();
            }
            snaps = lanes.iter().map(MetricSnap::of).collect();
        }

        // The serial prefix (lane split, start dispatch, plan routing) is
        // coordinator busy time. During the window loop the coordinator
        // records only drains/rollbacks, so its busy spans never overlap
        // the shards' own accounting.
        coord_tel.record(Phase::Busy, Some(wall_start));
        // Per-worker shard handles for the one wait the lane can't record:
        // the final block on a closing command channel (the lane has
        // already been sent back by then).
        let wtels: Vec<ShardTelemetry> = (0..k).map(|i| self.tel.shard(i)).collect();
        std::thread::scope(|scope| {
            let mut cmd_tx: Vec<mpsc::Sender<(Lane<M>, SimTime)>> = Vec::with_capacity(k);
            let mut res_rx: Vec<mpsc::Receiver<Lane<M>>> = Vec::with_capacity(k);
            for wtel in wtels {
                let (tx, rx) = mpsc::channel::<(Lane<M>, SimTime)>();
                let (res_tx, rres) = mpsc::channel::<Lane<M>>();
                cmd_tx.push(tx);
                res_rx.push(rres);
                let plane_lock = &plane_lock;
                // The first wait clock starts on the coordinator side so
                // thread-spawn latency lands in barrier wait — the shard
                // slots then cover the scope's whole lifetime and the
                // profile report can attribute ~all of the run wall.
                let spawn0 = if tel_on { Some(Instant::now()) } else { None };
                scope.spawn(move || {
                    let mut wait0 = spawn0;
                    loop {
                        // Time blocked on the coordinator as barrier wait
                        // — recorded into the received lane's shard slot,
                        // so the attribution follows the lane even though
                        // the clock read happens before we know which
                        // window this is.
                        let Ok((mut lane, wend)) = rx.recv() else {
                            if let Some(w0) = wait0 {
                                wtel.record_ns(Phase::BarrierWait, w0.elapsed().as_nanos() as u64);
                            }
                            break;
                        };
                        if let Some(w0) = wait0 {
                            lane.tel.record_ns(Phase::BarrierWait, w0.elapsed().as_nanos() as u64);
                        }
                        let t0 = lane.tel.start();
                        {
                            let guard = plane_lock.read();
                            lane.advance_until(Some(wend), net, guard.as_deref());
                        }
                        lane.tel.record(Phase::Busy, t0);
                        // Overlap exchange with other lanes' windows: pull
                        // whatever peers have published so far; the
                        // coordinator finishes the drain at the barrier.
                        let r0 = lane.tel.start();
                        lane.absorb_rings();
                        lane.tel.record(Phase::RingExchange, r0);
                        // Clock the next wait from *before* the send: on a
                        // busy machine the scheduler may run the whole
                        // coordinator barrier between our send and our next
                        // statement, and that time is barrier wait.
                        wait0 = if tel_on { Some(Instant::now()) } else { None };
                        if res_tx.send(lane).is_err() {
                            break;
                        }
                    }
                });
            }

            loop {
                if lanes.iter().any(|l| l.halted) {
                    break;
                }
                let op_at = op_times.get(op_cursor).copied();
                let qmin = lanes.iter().filter_map(|l| l.queue.peek_time()).min();
                let next = match (op_at, qmin) {
                    (Some(a), Some(b)) => {
                        if a <= b {
                            a
                        } else {
                            b
                        }
                    }
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                if next > end_time {
                    end_hit = true;
                    break;
                }
                if op_at == Some(next) {
                    // Coordinator sub-barrier: apply the op under the write
                    // lock, with all lanes at rest. Counted in
                    // `engine.op_barriers`, not `engine.windows` — an op
                    // barrier synchronizes every lane like a window boundary
                    // does, but it advances no lookahead window, and folding
                    // the two together made barrier-wait attribution lie
                    // about window cost.
                    let idx = op_cursor;
                    op_cursor += 1;
                    if !optimistic_run {
                        // (In optimistic runs the lane-0 increment below
                        // reaches `engine.events_processed` via the flush.)
                        metrics.events.inc();
                    }
                    metrics.op_barriers.inc();
                    let mut guard = plane_lock.write();
                    let plane = guard.as_deref_mut().expect("op implies plane");
                    collect_parked(&mut lanes, plane);
                    lanes[0].events_processed += 1;
                    apply_plane_op(&mut lanes, plane, idx, net);
                    // Ops can dispatch actors (Recover/Clock handlers) whose
                    // sends target other shards; route them now so the next
                    // qmin sees them — left in a ring or an outbox they
                    // would surface after the destination lane advanced
                    // past their delivery time. Workers are idle at an op
                    // barrier, so the ring drain is exhaustive.
                    let d0 = coord_tel.start();
                    for lane in &mut lanes {
                        lane.absorb_rings();
                    }
                    route_outboxes(&mut lanes, &mut outbox_scratch);
                    coord_tel.record(Phase::CoordinatorDrain, d0);
                    if optimistic_run {
                        // Op effects (drops at a cut, the op's own event
                        // count) go through the deferred flush like window
                        // work does.
                        for (lane, snap) in lanes.iter().zip(snaps.iter_mut()) {
                            lane.flush_metrics(snap, &metrics);
                        }
                    }
                } else {
                    // One parallel window [next, wend) — conservative bound
                    // `next + L`, or the speculative span when optimistic
                    // and nothing (op, end time) clips the base bound.
                    let mut wend = next.saturating_add(lookahead);
                    if let Some(a) = op_at {
                        wend = wend.min(a);
                    }
                    if end_time != SimTime::MAX {
                        wend = wend.min(end_time.saturating_add(SimDuration::from_nanos(1)));
                    }
                    let mut spec = false;
                    if optimistic_run {
                        let mut wspec = next.saturating_add(spec_span);
                        if let Some(a) = op_at {
                            wspec = wspec.min(a);
                        }
                        if end_time != SimTime::MAX {
                            wspec = wspec.min(end_time.saturating_add(SimDuration::from_nanos(1)));
                        }
                        if wspec > wend {
                            spec = true;
                            wend = wspec;
                        }
                    }
                    metrics.windows.inc();
                    let mut cps: Vec<LaneCheckpoint<M>> = Vec::new();
                    if spec {
                        if let Some(h) = hooks.as_deref_mut() {
                            h.checkpoint();
                        }
                        cps = lanes.iter_mut().map(Lane::begin_spec).collect();
                    }
                    run_window(&cmd_tx, &res_rx, &mut lanes, wend);
                    if spec {
                        // Straggler scan: `c` = earliest cross-shard arrival
                        // produced anywhere in the speculative span. Every
                        // event < c was processed on local information only,
                        // so the prefix [next, c) is already the sequential
                        // execution; anything ≥ c may depend on c.
                        let c =
                            lanes.iter().flat_map(|l| l.outbox.iter().map(|&(at, _, _)| at)).min();
                        match c {
                            Some(c) if c < wend => {
                                // Rollback every lane and redo the proven
                                // prefix [next, c). The redo's cross-shard
                                // sends are exactly the speculative run's
                                // sends before c (deterministic replay), and
                                // c is the minimum of their arrivals — so
                                // every redo arrival lands ≥ c, after every
                                // lane's redo position. c ≥ next + L (the
                                // base bound is never clipped in a spec
                                // window), so even the rollback path makes a
                                // full conservative window of progress per
                                // two barriers.
                                let rb0 = coord_tel.start();
                                if let Some(h) = hooks.as_deref_mut() {
                                    h.rollback();
                                }
                                for (lane, cp) in lanes.iter_mut().zip(cps) {
                                    lane.rollback_spec(cp);
                                }
                                coord_tel.record(Phase::Rollback, rb0);
                                rollbacks += k as u64;
                                metrics.rollbacks.add(k as u64);
                                metrics.windows.inc();
                                let rd0 = coord_tel.start();
                                run_window(&cmd_tx, &res_rx, &mut lanes, c);
                                coord_tel.record(Phase::Redo, rd0);
                            }
                            _ => {
                                // No straggler: the whole span is causally
                                // complete. Merge journals, keep the work.
                                for (lane, cp) in lanes.iter_mut().zip(cps) {
                                    lane.commit_spec(cp);
                                }
                                if let Some(h) = hooks.as_deref_mut() {
                                    h.commit();
                                }
                            }
                        }
                    }
                    // Producers are quiescent at the barrier, so this
                    // coordinator drain (after the workers' own overlapped
                    // absorb) is exhaustive.
                    let d0 = coord_tel.start();
                    for lane in &mut lanes {
                        lane.absorb_rings();
                    }
                    route_outboxes(&mut lanes, &mut outbox_scratch);
                    coord_tel.record(Phase::CoordinatorDrain, d0);
                    if optimistic_run {
                        for (lane, snap) in lanes.iter().zip(snaps.iter_mut()) {
                            lane.flush_metrics(snap, &metrics);
                        }
                    }
                }
            }
            drop(cmd_tx); // workers exit on channel close
        });
        // Serial suffix: parked-message collection, ring teardown, lane
        // merge — coordinator busy time again (see the prefix span above).
        let suffix0 = coord_tel.start();

        self.hooks = hooks;
        self.rollback_count += rollbacks;
        self.op_cursor = op_cursor;
        let mut plane = plane_lock.into_inner();
        if let Some(p) = plane.as_deref_mut() {
            collect_parked(&mut lanes, p);
        }
        self.fault = plane;
        for lane in &mut lanes {
            // Rings are drained at every barrier, so dropping the handles
            // here cannot lose events.
            debug_assert!(lane.ring_in.iter_mut().flatten().all(|r| r.is_empty()));
            if tel_on {
                // Worst occupancy this lane's producers ever observed —
                // the capacity-pressure signal behind `engine.ring_spills`.
                let hw = lane.ring_out.iter().flatten().map(|p| p.high_water()).max();
                if let Some(hw) = hw {
                    lane.tel.record_ring_high_water(hw as u64);
                }
            }
            lane.ring_out.clear();
            lane.ring_in.clear();
        }
        self.merge_lanes(lanes);
        if end_hit {
            self.lane.now = end_time;
        }
        self.m.queue_depth.set(self.lane.queue.len() as u64);
        self.m.in_flight.set(self.lane.in_flight.max(0) as u64);
        coord_tel.record(Phase::Busy, suffix0);
        self.finish_run(wall_start, events_before)
    }

    /// Seal the trace and record wall-clock metrics; returns final time.
    fn finish_run(&mut self, wall_start: Instant, events_before: u64) -> SimTime {
        self.lane.trace.seal();
        let wall = wall_start.elapsed();
        self.m.run_wall.record_duration(wall);
        self.tel.record_run_wall(wall.as_nanos() as u64);
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            self.m
                .events_per_sec
                .set(((self.lane.events_processed - events_before) as f64 / secs) as u64);
        }
        self.lane.now
    }

    /// Split the resident lane into `k` per-shard lanes according to
    /// `owner`. Full-size per-actor vectors are cloned into every lane
    /// (cheap: RNG streams are ~32 B) so workers index by global id.
    fn split_lanes(&mut self, owner: &[u32], k: usize) -> Vec<Lane<M>> {
        let n = self.lane.actors.len();
        let tel = &self.tel;
        let base = &mut self.lane;
        let mut lanes: Vec<Lane<M>> = (0..k)
            .map(|shard| Lane {
                shard,
                now: base.now,
                queue: EventQueue::new(),
                actors: (0..n).map(|_| None).collect(),
                rngs: base.rngs.clone(),
                net_rngs: base.net_rngs.clone(),
                fault_rngs: base.fault_rngs.clone(),
                loss: base.loss.clone(),
                msg_ctr: base.msg_ctr.clone(),
                timer_ctr: base.timer_ctr.clone(),
                members: Vec::new(),
                owner: owner[..n].to_vec(),
                outbox: Vec::new(),
                ring_out: Vec::new(),
                ring_in: Vec::new(),
                dropped_nolink: 0,
                fifo: FifoStore::Unset,
                fifo_dense_limit: base.fifo_dense_limit,
                fifo_log: false,
                fifo_undo: Vec::new(),
                trace: if base.trace.is_enabled() { Trace::enabled() } else { Trace::disabled() },
                stats: NetStats::default(),
                fstats: FaultStats::default(),
                parked_out: Vec::new(),
                in_flight: 0,
                events_processed: 0,
                halted: base.halted,
                action_scratch: Vec::new(),
                peer_scratch: Vec::new(),
                m: base.m.clone(),
                tel: tel.shard(shard),
            })
            .collect();
        for (id, &shard) in owner.iter().enumerate() {
            let s = shard as usize;
            debug_assert!(s < k, "owner[{id}] = {s} out of range for {k} shards");
            lanes[s].actors[id] = base.actors[id].take();
            lanes[s].members.push(id);
        }
        let mut distributed = 0i64;
        for (at, key, p) in base.queue.drain_entries() {
            let dest = match &p {
                Pending::Deliver { to, .. } => {
                    owner.get(*to as usize).map(|&s| s as usize).unwrap_or(0)
                }
                Pending::Timer { actor, .. } => owner[*actor as usize] as usize,
            };
            if matches!(p, Pending::Deliver { .. }) {
                lanes[dest].in_flight += 1;
                distributed += 1;
            }
            lanes[dest].queue.schedule_keyed(at, key, p);
        }
        // Whatever in-flight count is not in the queue (parked messages
        // from a previous run) stays on lane 0, so the global sum is
        // preserved across split/merge.
        lanes[0].in_flight += base.in_flight - distributed;
        base.in_flight = 0;
        lanes
    }

    /// Merge per-shard lanes back into the resident lane: actors, RNG and
    /// counter state (members only), traces (canonical absorb), stats, and
    /// any leftover queue entries.
    fn merge_lanes(&mut self, mut lanes: Vec<Lane<M>>) {
        let base = &mut self.lane;
        let mut max_now = base.now;
        for lane in &mut lanes {
            max_now = max_now.max(lane.now);
            for i in 0..lane.members.len() {
                let id = lane.members[i];
                base.actors[id] = lane.actors[id].take();
                base.rngs[id] = lane.rngs[id].clone();
                base.net_rngs[id] = lane.net_rngs[id].clone();
                if !base.fault_rngs.is_empty() {
                    base.fault_rngs[id] = lane.fault_rngs[id].clone();
                }
                base.loss[id] = lane.loss[id].clone();
                base.msg_ctr[id] = lane.msg_ctr[id];
                base.timer_ctr[id] = lane.timer_ctr[id];
            }
            base.stats.absorb(&lane.stats);
            base.fstats.absorb(&lane.fstats);
            base.trace.absorb(&mut lane.trace);
            base.in_flight += lane.in_flight;
            base.events_processed += lane.events_processed;
            base.dropped_nolink += lane.dropped_nolink;
            base.halted |= lane.halted;
            base.parked_out.append(&mut lane.parked_out);
            for (at, key, p) in lane.queue.drain_entries() {
                base.queue.schedule_keyed(at, key, p);
            }
        }
        // The FIFO channel state is split per shard and cheap to rebuild;
        // force re-init on the next (sequential) run.
        base.fifo = FifoStore::Unset;
        base.now = max_now;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.lane.now
    }

    /// Network counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.lane.stats
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.lane.trace
    }

    /// Total events dispatched.
    pub fn events_processed(&self) -> u64 {
        self.lane.events_processed
    }

    /// Mutable access to the network configuration (e.g. to flip overlay
    /// links between runs). Note: per-sender loss-model state is cloned at
    /// [`Engine::add_actor`] time, so swapping `loss` here does not affect
    /// already-registered senders.
    pub fn network_mut(&mut self) -> &mut NetworkConfig {
        &mut self.network
    }

    /// Recover an actor after the run to read its final state.
    ///
    /// Panics if `id` is out of range or the actor was already taken; hosts
    /// handling externally supplied ids should use
    /// [`Engine::try_take_actor`].
    pub fn take_actor(&mut self, id: ActorId) -> Box<dyn Actor<M> + Send> {
        self.try_take_actor(id).expect("actor present")
    }

    /// The checked form of [`Engine::take_actor`]: an out-of-range id or a
    /// doubly-taken actor is a typed error, not a panic.
    pub fn try_take_actor(&mut self, id: ActorId) -> Result<Box<dyn Actor<M> + Send>, EngineError> {
        let n = self.lane.actors.len();
        match self.lane.actors.get_mut(id) {
            None => Err(EngineError::UnknownActor { id, actors: n }),
            Some(slot) => slot.take().ok_or(EngineError::ActorTaken { id }),
        }
    }
}

/// Dispatch one parallel window `[·, wend)` to the shard workers and
/// collect the lanes back, reusing the `lanes` vector's allocation.
/// Collection is in shard order from per-worker channels: a worker that
/// panicked closes its channel, turning a would-be deadlock into an
/// immediate error (the scope join then re-raises the worker's own panic).
fn run_window<M: Message>(
    cmd_tx: &[mpsc::Sender<(Lane<M>, SimTime)>],
    res_rx: &[mpsc::Receiver<Lane<M>>],
    lanes: &mut Vec<Lane<M>>,
    wend: SimTime,
) {
    for lane in lanes.drain(..) {
        let shard = lane.shard;
        cmd_tx[shard].send((lane, wend)).expect("worker alive");
    }
    for (i, rx) in res_rx.iter().enumerate() {
        lanes.push(rx.recv().unwrap_or_else(|_| panic!("shard worker {i} died")));
    }
}

/// Route every lane's outbox into the destination lanes' heaps. Arrival
/// order into a heap is immaterial — heap order is total on
/// `(time, canonical key)` — so no sort is needed. `scratch` is a
/// coordinator-owned buffer swapped with each non-empty outbox so the
/// steady state allocates nothing (capacities circulate between the
/// coordinator and the lanes instead of being dropped every barrier).
fn route_outboxes<M: Message>(
    lanes: &mut [Lane<M>],
    scratch: &mut Vec<(SimTime, u64, Pending<M>)>,
) {
    debug_assert!(scratch.is_empty());
    for li in 0..lanes.len() {
        if lanes[li].outbox.is_empty() {
            continue;
        }
        std::mem::swap(&mut lanes[li].outbox, scratch);
        for (at, key, p) in scratch.drain(..) {
            let dest = match &p {
                Pending::Deliver { to, .. } => lanes[li].owner[*to as usize] as usize,
                Pending::Timer { actor, .. } => lanes[li].owner[*actor as usize] as usize,
            };
            lanes[dest].queue.schedule_keyed(at, key, p);
        }
    }
}

/// Drain every lane's transmit-time parked messages into the plane (order
/// inside `plane.parked` is canonicalised by the sort at heal time).
fn collect_parked<M: Message>(lanes: &mut [Lane<M>], plane: &mut FaultPlane<M>) {
    for lane in lanes.iter_mut() {
        plane.parked.append(&mut lane.parked_out);
    }
}

/// The owning lane of `actor` (lane 0 when sequential or out of range).
fn host_of<M: Message>(lanes: &[Lane<M>], actor: ActorId) -> usize {
    if lanes.len() == 1 {
        return 0;
    }
    lanes[0].owner.get(actor).map(|&s| s as usize).unwrap_or(0)
}

/// Execute one expanded fault-plane operation against the lane set, at the
/// op's scripted time. Works identically for the sequential engine (one
/// lane) and the sharded coordinator (all lanes at a window barrier).
///
/// Trace-host rule: each op designates **one** host trace — the owning
/// lane's for actor-scoped ops (crash/recover/clock), lane 0's for
/// system-scoped ops (cut/heal/channel) — and stages every record under the
/// op's canonical FAULT cursor with one continuous intra counter. The
/// canonical seal orders records by `(time, cursor, intra)`, so the host
/// choice never shows in the sealed trace.
fn apply_plane_op<M: Message>(
    lanes: &mut [Lane<M>],
    plane: &mut FaultPlane<M>,
    idx: usize,
    net: &NetworkConfig,
) {
    let (now, op) = plane.ops[idx].clone();
    let key = event_key(key_class::FAULT, idx as u64);
    let cursor = Trace::event_cursor(key);
    match op {
        PlaneOp::Crash { actor } => {
            let h = host_of(lanes, actor);
            let lane = &mut lanes[h];
            lane.now = now;
            lane.trace.set_cursor(cursor);
            if !plane.is_down(actor) {
                plane.down[actor] = true;
                plane.stats.crashes += 1;
                lane.trace.record(
                    now,
                    TraceKind::Fault { actor, kind: FaultRecordKind::Crash, detail: 0 },
                );
            }
        }
        PlaneOp::Recover { actor } => {
            let h = host_of(lanes, actor);
            let lane = &mut lanes[h];
            lane.now = now;
            lane.trace.set_cursor(cursor);
            if plane.is_down(actor) {
                plane.down[actor] = false;
                plane.stats.recoveries += 1;
                lane.trace.record(
                    now,
                    TraceKind::Fault { actor, kind: FaultRecordKind::Recover, detail: 0 },
                );
                // The plane mutation is complete, so everything the
                // recovering actor sends goes through the fault pipeline
                // with the post-recovery state.
                lane.dispatch(
                    actor,
                    Dispatch::Fault { event: FaultEvent::Recover },
                    net,
                    Some(plane),
                );
            }
        }
        PlaneOp::Clock { actor, kind } => {
            let h = host_of(lanes, actor);
            let lane = &mut lanes[h];
            lane.now = now;
            lane.trace.set_cursor(cursor);
            plane.stats.clock_faults += 1;
            lane.trace.record(
                now,
                TraceKind::Fault { actor, kind: FaultRecordKind::ClockFault, detail: kind.code() },
            );
            if !plane.is_down(actor) {
                lane.dispatch(
                    actor,
                    Dispatch::Fault { event: FaultEvent::Clock(kind) },
                    net,
                    Some(plane),
                );
            }
        }
        PlaneOp::Cut { idx: ci } => {
            lanes[0].now = now;
            lanes[0].trace.set_cursor(cursor);
            plane.cuts[ci].active = true;
            plane.active_cuts += 1;
            plane.stats.cuts += 1;
            let policy = plane.cuts[ci].policy;
            // Intercept in-flight messages crossing the new cut, merging
            // per-lane drains into one canonical (time, key) order.
            let mut crossing: Vec<(usize, SimTime, u64, Pending<M>)> = Vec::new();
            for (li, lane) in lanes.iter_mut().enumerate() {
                let group = &plane.cuts[ci].group;
                let mut pred = |p: &Pending<M>| match p {
                    Pending::Deliver { from, to, .. } => {
                        group.contains(&(*from as ActorId)) != group.contains(&(*to as ActorId))
                    }
                    _ => false,
                };
                for (at, k, p) in lane.queue.drain_entries_matching(&mut pred) {
                    crossing.push((li, at, k, p));
                }
            }
            crossing.sort_by_key(|a| (a.1, a.2));
            for (li, dat, _k, pending) in crossing {
                let Pending::Deliver { from, to, msg, id } = pending else { unreachable!() };
                let (from, to) = (from as ActorId, to as ActorId);
                match policy {
                    CutPolicy::Drop => {
                        lanes[li].in_flight -= 1;
                        lanes[0].stats.messages_lost += 1;
                        lanes[0].stats.messages_faulted += 1;
                        lanes[0].m.dropped.inc();
                        lanes[0].trace.record(now, TraceKind::Lost { from, to, msg: MsgId(id) });
                        plane.stats.dropped_in_flight += 1;
                    }
                    CutPolicy::Park => {
                        lanes[0].trace.record(
                            now,
                            TraceKind::Fault {
                                actor: from,
                                kind: FaultRecordKind::Parked,
                                detail: id,
                            },
                        );
                        plane.parked.push(Parked { from, to, msg, id, deliver_at: dat });
                        plane.stats.parked += 1;
                        // stays in flight (counted in lane li)
                    }
                }
            }
            for i in 0..plane.cuts[ci].group.len() {
                let actor = plane.cuts[ci].group[i];
                lanes[0].trace.record(
                    now,
                    TraceKind::Fault {
                        actor,
                        kind: FaultRecordKind::PartitionCut,
                        detail: ci as u64,
                    },
                );
            }
        }
        PlaneOp::Heal { idx: ci } => {
            if plane.cuts[ci].active {
                lanes[0].now = now;
                lanes[0].trace.set_cursor(cursor);
                plane.cuts[ci].active = false;
                plane.active_cuts -= 1;
                plane.stats.heals += 1;
                // Release parked messages no active cut still blocks, in
                // canonical (deliver_at, id) order — sorted here because
                // shard lanes park concurrently during windows.
                let mut parked = std::mem::take(&mut plane.parked);
                parked.sort_by_key(|p| (p.deliver_at, p.id));
                for p in parked {
                    if plane.blocked(p.from, p.to) {
                        plane.parked.push(p);
                    } else {
                        let at = if p.deliver_at > now { p.deliver_at } else { now };
                        lanes[0].trace.record(
                            now,
                            TraceKind::Fault {
                                actor: p.from,
                                kind: FaultRecordKind::Unparked,
                                detail: p.id,
                            },
                        );
                        let dest = host_of(lanes, p.to);
                        lanes[dest].queue.schedule_keyed(
                            at,
                            event_key(key_class::DELIVER, p.id),
                            Pending::Deliver {
                                from: p.from as u32,
                                to: p.to as u32,
                                msg: p.msg,
                                id: p.id,
                            },
                        );
                        plane.stats.unparked += 1;
                    }
                }
                for i in 0..plane.cuts[ci].group.len() {
                    let actor = plane.cuts[ci].group[i];
                    lanes[0].trace.record(
                        now,
                        TraceKind::Fault {
                            actor,
                            kind: FaultRecordKind::PartitionHeal,
                            detail: ci as u64,
                        },
                    );
                }
            }
        }
        PlaneOp::ChannelOn { idx: ri } => {
            lanes[0].now = now;
            if !plane.rules[ri].active {
                plane.rules[ri].active = true;
                plane.active_rules += 1;
            }
        }
        PlaneOp::ChannelOff { idx: ri } => {
            lanes[0].now = now;
            if plane.rules[ri].active {
                plane.rules[ri].active = false;
                plane.active_rules -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::loss::LossModel;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TestMsg {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    /// Sends `Ping(k)` to its peer on start and on each pong, up to `max`.
    struct PingPong {
        peer: ActorId,
        max: u32,
        log: Vec<(SimTime, TestMsg)>,
        initiator: bool,
    }
    impl Actor<TestMsg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.initiator {
                ctx.send(self.peer, TestMsg::Ping(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            assert_eq!(from, self.peer);
            self.log.push((ctx.now(), msg.clone()));
            match msg {
                TestMsg::Ping(k) => ctx.send(self.peer, TestMsg::Pong(k)),
                TestMsg::Pong(k) if k + 1 < self.max => ctx.send(self.peer, TestMsg::Ping(k + 1)),
                TestMsg::Pong(_) => ctx.halt(),
            }
        }
    }

    fn ping_pong_engine(delay: DelayModel) -> Engine<TestMsg> {
        let net = NetworkConfig::full_mesh(2, delay);
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(PingPong { peer: 1, max: 5, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 5, log: vec![], initiator: false }));
        e
    }

    #[test]
    fn ping_pong_completes() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end = e.run();
        // 5 pings + 5 pongs, each 10ms: last delivery at 100ms.
        assert_eq!(end, SimTime::from_millis(100));
        assert_eq!(e.stats().messages_sent, 10);
        assert_eq!(e.stats().messages_delivered, 10);
        assert_eq!(e.stats().bytes_sent, 40);
    }

    #[test]
    fn synchronous_delivery_is_same_instant() {
        let mut e = ping_pong_engine(DelayModel::Synchronous);
        let end = e.run();
        assert_eq!(end, SimTime::ZERO, "everything happens at t=0 under Δ=0");
        assert_eq!(e.stats().messages_delivered, 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(50)));
            let mut e = Engine::new(net, seed);
            e.add_actor(Box::new(PingPong { peer: 1, max: 20, log: vec![], initiator: true }));
            e.add_actor(Box::new(PingPong { peer: 0, max: 20, log: vec![], initiator: false }));
            let end = e.run();
            (end, e.stats().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds give different delays");
    }

    #[test]
    fn loss_drops_messages() {
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        assert_eq!(e.stats().messages_sent, 1);
        assert_eq!(e.stats().messages_lost, 1);
        assert_eq!(e.stats().messages_delivered, 0);
    }

    #[test]
    fn end_time_stops_run() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        e.set_end_time(SimTime::from_millis(35));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(35));
        assert!(e.stats().messages_delivered < 10);
    }

    /// Broadcast actor: broadcasts once on start; all receivers log.
    struct Beacon {
        fire: bool,
        received: u32,
    }
    impl Actor<TestMsg> for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.fire {
                ctx.broadcast(TestMsg::Ping(99));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            self.received += 1;
        }
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let net = NetworkConfig::full_mesh(5, DelayModel::Synchronous);
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        for _ in 1..5 {
            e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        }
        e.run();
        assert_eq!(e.stats().broadcasts, 1);
        assert_eq!(e.stats().messages_sent, 4);
        assert_eq!(e.stats().messages_delivered, 4);
    }

    #[test]
    fn topology_blocks_unconnected_sends() {
        let net = NetworkConfig {
            topology: crate::network::Topology::star(3),
            delay: DelayModel::Synchronous,
            loss: LossModel::None,
            fifo: true,
        };
        let mut e = Engine::new(net, 3);
        // Actor 1 and 2 are both leaves: 1 -> 2 has no link.
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.run();
        // Broadcast from 1 only reaches the hub 0.
        assert_eq!(e.stats().messages_sent, 1);
    }

    /// Timer actor: schedules a chain of timers.
    struct Ticker {
        fired: Vec<(SimTime, u64)>,
        period: SimDuration,
        remaining: u64,
    }
    impl Actor<TestMsg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
            self.fired.push((ctx.now(), tag));
            if tag + 1 < self.remaining {
                ctx.set_timer(self.period, tag + 1);
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 9);
        e.add_actor(Box::new(Ticker {
            fired: vec![],
            period: SimDuration::from_millis(100),
            remaining: 4,
        }));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(400));
        let t = e.take_actor(0);
        // Downcast via raw pointer is overkill; instead verify through time.
        drop(t);
        assert_eq!(e.events_processed(), 4);
    }

    #[test]
    fn fifo_prevents_overtaking() {
        // With a wildly variable delay and FIFO on, deliveries from one
        // sender to one receiver must be in send order.
        struct Spray {
            sent: bool,
        }
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                if !self.sent {
                    for k in 0..50 {
                        ctx.send(1, TestMsg::Ping(k));
                    }
                    self.sent = true;
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        // We cannot easily extract state from Box<dyn Actor>, so assert
        // ordering via a shared log.
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }

        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)));
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray { sent: false }));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "FIFO must preserve order");
    }

    #[test]
    fn non_fifo_allows_overtaking() {
        struct Spray;
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                for k in 0..200 {
                    ctx.send(1, TestMsg::Ping(k));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)))
            .with_fifo(false);
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 200);
        let sorted: Vec<u32> = {
            let mut s = got.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(got, sorted, "with random delays some message should overtake");
    }

    #[test]
    fn inject_delivers_external_events() {
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<(SimTime, u32)>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push((ctx.now(), k));
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 0);
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.inject(SimTime::from_millis(5), 0, 0, TestMsg::Ping(1));
        e.inject(SimTime::from_millis(2), 0, 0, TestMsg::Ping(2));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(*got, vec![(SimTime::from_millis(2), 2), (SimTime::from_millis(5), 1)]);
    }

    #[test]
    fn metrics_observe_the_run_without_changing_it() {
        let m = crate::metrics::Metrics::new();
        let mut instrumented = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        instrumented.set_metrics(&m);
        let end_i = instrumented.run();
        let mut plain = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end_p = plain.run();
        assert_eq!(end_i, end_p, "metrics must not perturb the run");
        assert_eq!(instrumented.stats().clone(), plain.stats().clone());
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_delivered"), Some(10));
        assert_eq!(snap.counter("engine.events_processed"), Some(instrumented.events_processed()));
        let (in_flight_now, in_flight_high) = snap.gauge("engine.in_flight").unwrap();
        assert_eq!(in_flight_now, 0, "queue drained");
        assert!(in_flight_high >= 1, "ping-pong always has one message in flight");
        assert_eq!(snap.timer("engine.run_wall_ns").unwrap().count, 1);
    }

    #[test]
    fn metrics_count_dropped_messages() {
        let m = crate::metrics::Metrics::new();
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.set_metrics(&m);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_dropped"), Some(1));
        assert_eq!(snap.counter("engine.messages_delivered"), Some(0));
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(1)));
        e.enable_trace();
        e.run();
        assert!(e.trace().len() >= 20, "sent + delivered for each message");
        let sent = e.trace().count_matching(|k| matches!(k, TraceKind::Sent { .. }));
        let delivered = e.trace().count_matching(|k| matches!(k, TraceKind::Delivered { .. }));
        assert_eq!(sent, 10);
        assert_eq!(delivered, 10);
    }

    // ---- fault plane -----------------------------------------------------

    use crate::fault::{ChannelFaultRule, ClockFaultKind, FaultSpec};

    impl TestMsg {
        fn value(&self) -> u32 {
            match self {
                TestMsg::Ping(k) | TestMsg::Pong(k) => *k,
            }
        }
    }

    /// Sends `count` pings to `to` after 5 ms (past any t=0 fault ops).
    struct DelayedSpray {
        to: ActorId,
        count: u32,
    }
    impl Actor<TestMsg> for DelayedSpray {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(SimDuration::from_millis(5), 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, _tag: u64) {
            for k in 0..self.count {
                ctx.send(self.to, TestMsg::Ping(k));
            }
        }
    }

    use std::sync::{Arc, Mutex};
    type Shared<T> = Arc<Mutex<Vec<T>>>;
    struct Collector {
        got: Shared<(SimTime, u32)>,
        faults: Shared<FaultEvent>,
    }
    impl Collector {
        fn pair() -> (Self, Shared<(SimTime, u32)>, Shared<FaultEvent>) {
            let got = Arc::new(Mutex::new(Vec::new()));
            let faults = Arc::new(Mutex::new(Vec::new()));
            (Collector { got: Arc::clone(&got), faults: Arc::clone(&faults) }, got, faults)
        }
    }
    impl Actor<TestMsg> for Collector {
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
            self.got.lock().unwrap().push((ctx.now(), msg.value()));
        }
        fn on_fault(&mut self, _ctx: &mut Context<'_, TestMsg>, event: &FaultEvent) {
            self.faults.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn crash_drops_deliveries_and_suppresses_timers() {
        // Ping at t=0 delivers at 10 ms, but actor 1 crashes at 5 ms.
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(10)));
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(PingPong { peer: 1, max: 5, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 5, log: vec![], initiator: false }));
        let script = FaultScript::new()
            .with(SimTime::from_millis(5), FaultSpec::Crash { actor: 1, recover_after: None });
        e.install_faults(&script);
        e.run();
        assert_eq!(e.stats().messages_delivered, 0);
        assert_eq!(e.stats().messages_lost, 1);
        assert_eq!(e.stats().messages_faulted, 1);
        let fs = e.fault_stats().unwrap();
        assert_eq!(fs.crashes, 1);
        assert_eq!(fs.recoveries, 0);
        assert_eq!(fs.dropped_at_down, 1);

        // A crashed Ticker's pending timer is swallowed, ending the chain.
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(Ticker {
            fired: vec![],
            period: SimDuration::from_millis(100),
            remaining: 4,
        }));
        let script = FaultScript::new()
            .with(SimTime::from_millis(150), FaultSpec::Crash { actor: 0, recover_after: None });
        e.install_faults(&script);
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(200), "timer 2 is swallowed at 200 ms");
        assert_eq!(e.fault_stats().unwrap().timers_suppressed, 1);
    }

    #[test]
    fn recover_dispatches_on_fault() {
        let (collector, _got, faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous);
        let mut e = Engine::new(net, 7);
        e.add_actor(Box::new(collector));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        let script = FaultScript::new()
            .with(
                SimTime::from_millis(10),
                FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_millis(20)) },
            )
            .with(
                SimTime::from_millis(50),
                FaultSpec::Clock { actor: 0, kind: ClockFaultKind::Reset },
            );
        e.install_faults(&script);
        e.run();
        let faults = faults.lock().unwrap().clone();
        assert_eq!(faults, vec![FaultEvent::Recover, FaultEvent::Clock(ClockFaultKind::Reset)]);
        let fs = e.fault_stats().unwrap();
        assert_eq!((fs.crashes, fs.recoveries, fs.clock_faults), (1, 1, 1));
    }

    #[test]
    fn partition_cut_drops_in_flight_and_blocks_sends() {
        // Pings sent at 5 ms (in flight until 50 ms) plus more at 20 ms;
        // a Drop-policy cut at 10 ms isolates the receiver for 1 s.
        struct TwoWaves {
            to: ActorId,
        }
        impl Actor<TestMsg> for TwoWaves {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                ctx.set_timer(SimDuration::from_millis(5), 0);
                ctx.set_timer(SimDuration::from_millis(20), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
                for k in 0..3 {
                    ctx.send(self.to, TestMsg::Ping(tag as u32 * 10 + k));
                }
            }
        }
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(45)));
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(TwoWaves { to: 1 }));
        e.add_actor(Box::new(collector));
        let script = FaultScript::new().with(
            SimTime::from_millis(10),
            FaultSpec::Partition {
                group: vec![1],
                heal_after: SimDuration::from_secs(1),
                policy: CutPolicy::Drop,
            },
        );
        e.install_faults(&script);
        e.run();
        assert!(got.lock().unwrap().is_empty(), "no wave crosses the cut");
        let fs = e.fault_stats().unwrap();
        assert_eq!(fs.dropped_in_flight, 3, "wave 0 was in flight at cut time");
        assert_eq!(fs.dropped_by_partition, 3, "wave 1 was blocked at transmit");
        assert_eq!((fs.cuts, fs.heals), (1, 1));
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn partition_park_releases_messages_at_heal() {
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(45)));
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(DelayedSpray { to: 1, count: 4 }));
        e.add_actor(Box::new(collector));
        // Cut at 10 ms (wave in flight since 5 ms), heal at 110 ms.
        let script = FaultScript::new().with(
            SimTime::from_millis(10),
            FaultSpec::Partition {
                group: vec![1],
                heal_after: SimDuration::from_millis(100),
                policy: CutPolicy::Park,
            },
        );
        e.install_faults(&script);
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 4, "parked messages are delivered after heal");
        assert!(got.iter().all(|&(at, _)| at == SimTime::from_millis(110)));
        assert_eq!(got.iter().map(|&(_, k)| k).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let fs = e.fault_stats().unwrap();
        assert_eq!((fs.parked, fs.unparked, fs.parked_leftover), (4, 4, 0));
        assert_eq!(e.stats().messages_delivered, 4);
        assert_eq!(e.stats().messages_lost, 0);
    }

    #[test]
    fn channel_rules_duplicate_and_drop() {
        let run = |effect: ChannelEffect| {
            let (collector, got, _faults) = Collector::pair();
            let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous);
            let mut e = Engine::new(net, 5);
            e.add_actor(Box::new(DelayedSpray { to: 1, count: 10 }));
            e.add_actor(Box::new(collector));
            let script = FaultScript::new().with(
                SimTime::ZERO,
                FaultSpec::Channel(ChannelFaultRule {
                    from: Some(0),
                    to: None,
                    prob: 1.0,
                    effect,
                    duration: None,
                }),
            );
            e.install_faults(&script);
            e.run();
            let n = got.lock().unwrap().len();
            (n, e.stats().clone(), e.fault_stats().unwrap())
        };
        let (n, stats, fs) = run(ChannelEffect::Duplicate);
        assert_eq!(n, 20, "every message is delivered twice");
        assert_eq!(stats.messages_sent, 20);
        assert_eq!(stats.messages_duplicated, 10);
        assert_eq!(fs.duplicated, 10);
        let (n, stats, fs) = run(ChannelEffect::Drop);
        assert_eq!(n, 0);
        assert_eq!(stats.messages_lost, 10);
        assert_eq!(stats.messages_faulted, 10);
        assert_eq!(fs.dropped_by_channel, 10);
    }

    #[test]
    fn reorder_rule_lets_messages_overtake() {
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(10)));
        let mut e = Engine::new(net, 17);
        e.add_actor(Box::new(DelayedSpray { to: 1, count: 20 }));
        e.add_actor(Box::new(collector));
        let script = FaultScript::new().with(
            SimTime::ZERO,
            FaultSpec::Channel(ChannelFaultRule {
                from: Some(0),
                to: Some(1),
                prob: 0.5,
                effect: ChannelEffect::Reorder { extra: SimDuration::from_millis(100) },
                duration: None,
            }),
        );
        e.install_faults(&script);
        e.run();
        let got: Vec<u32> = got.lock().unwrap().iter().map(|&(_, k)| k).collect();
        assert_eq!(got.len(), 20, "reordering never loses messages");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "delayed messages are overtaken despite FIFO");
        let fs = e.fault_stats().unwrap();
        assert!(fs.reordered > 0 && fs.reordered < 20);
    }

    #[test]
    fn empty_script_is_bit_identical_to_no_plane() {
        let run = |install: bool| {
            let mut e = ping_pong_engine(DelayModel::delta(SimDuration::from_millis(25)));
            e.enable_trace();
            if install {
                e.install_faults(&FaultScript::new());
            }
            let end = e.run();
            (end, e.stats().clone(), crate::trace_export::jsonl(e.trace()))
        };
        let (end_plain, stats_plain, trace_plain) = run(false);
        let (end_fault, stats_fault, trace_fault) = run(true);
        assert_eq!(end_plain, end_fault);
        assert_eq!(stats_plain, stats_fault);
        assert_eq!(trace_plain, trace_fault, "empty plane must be observationally silent");
    }

    // ---- sharded execution -----------------------------------------------

    /// A gossip workload with plenty of cross-actor traffic and per-actor
    /// randomness: every actor ticks `rounds` times, sending two pings per
    /// tick; receivers pong back with probability 1/2 drawn from their
    /// private stream. Exercises timers, sends, RNG draws, and FIFO.
    struct Gossip {
        rounds: u64,
        period: SimDuration,
    }
    impl Actor<TestMsg> for Gossip {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            if let TestMsg::Ping(k) = msg {
                if k > 0 && ctx.rng().bernoulli(0.5) {
                    ctx.send(from, TestMsg::Pong(k - 1));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
            let n = ctx.actor_count();
            let a = (ctx.id() + 1 + tag as usize) % n;
            let b = (ctx.id() + 5) % n;
            ctx.send(a, TestMsg::Ping(tag as u32 + 1));
            ctx.send(b, TestMsg::Ping(tag as u32 + 2));
            if tag + 1 < self.rounds {
                ctx.set_timer(self.period, tag + 1);
            }
        }
        fn fork(&self) -> Option<Box<dyn Actor<TestMsg> + Send>> {
            Some(Box::new(Gossip { rounds: self.rounds, period: self.period }))
        }
    }

    fn gossip_engine(n: usize, delay: DelayModel, seed: u64) -> Engine<TestMsg> {
        let net = NetworkConfig::full_mesh(n, delay);
        let mut e = Engine::new(net, seed);
        for _ in 0..n {
            e.add_actor(Box::new(Gossip { rounds: 12, period: SimDuration::from_millis(10) }));
        }
        e
    }

    /// Everything observable about a finished run, for exact comparison.
    fn fingerprint(e: &Engine<TestMsg>) -> (SimTime, NetStats, u64, Option<FaultStats>, String) {
        (
            e.now(),
            e.stats().clone(),
            e.events_processed(),
            e.fault_stats(),
            crate::trace_export::jsonl(e.trace()),
        )
    }

    /// Sharding delay: min 2 ms gives the engine a real lookahead window.
    fn shardable_delay() -> DelayModel {
        DelayModel::DeltaBounded {
            min: SimDuration::from_millis(2),
            max: SimDuration::from_millis(20),
        }
    }

    #[test]
    fn shard_plan_partitions_actors() {
        let p = ShardPlan::contiguous(10, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.owner(), &[0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        let p = ShardPlan::interleaved(7, 3);
        assert_eq!(p.owner(), &[0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.shard_count(), 3);
        let p = ShardPlan::by_hash(100, 5);
        assert_eq!(p.owner().len(), 100);
        assert!(p.owner().iter().all(|&s| s < 5));
        assert!(p.shard_count() <= 5);
        let p = ShardPlan::explicit(vec![2, 0, 2]);
        assert_eq!(p.shard_count(), 3);
        // More shards than actors clamps instead of leaving empty lanes.
        let p = ShardPlan::contiguous(3, 16);
        assert_eq!(p.shard_count(), 3);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        let mut seq = gossip_engine(12, shardable_delay(), 99);
        seq.enable_trace();
        seq.run();
        let want = fingerprint(&seq);
        assert!(seq.stats().messages_delivered > 50, "workload is non-trivial");

        for shards in [2, 4, 7] {
            let mut par = gossip_engine(12, shardable_delay(), 99);
            par.enable_trace();
            par.run_sharded(shards);
            assert_eq!(fingerprint(&par), want, "shards={shards} must replay bit-identically");
        }
        // And under a non-contiguous placement.
        let mut par = gossip_engine(12, shardable_delay(), 99);
        par.enable_trace();
        par.run_with_plan(&ShardPlan::interleaved(12, 3));
        assert_eq!(fingerprint(&par), want, "interleaved plan must replay bit-identically");
        let mut par = gossip_engine(12, shardable_delay(), 99);
        par.enable_trace();
        par.run_with_plan(&ShardPlan::by_hash(12, 4));
        assert_eq!(fingerprint(&par), want, "hashed plan must replay bit-identically");
    }

    #[test]
    fn by_affinity_is_a_deterministic_total_partition() {
        // A chatty clique {0,1,2}, a pair {5,6}, singletons elsewhere.
        let edges = vec![
            (0usize, 1usize, 100u64),
            (1, 2, 90),
            (2, 0, 80),
            (5, 6, 70),
            (3, 9, 1),
            (4, 4, 50),  // self-edge: ignored
            (7, 99, 50), // out of range: ignored
            (8, 9, 0),   // zero weight: ignored
        ];
        let p = ShardPlan::by_affinity(10, 3, &edges);
        assert_eq!(p.owner().len(), 10, "covers all actors");
        assert!(p.owner().iter().all(|&s| s < 3), "respects k");
        assert_eq!(p, ShardPlan::by_affinity(10, 3, &edges), "deterministic");
        // The clique and the pair each stay intra-shard (cluster cap is
        // ceil(10/3) = 4, so both merges fit).
        assert!(p.owner()[0] == p.owner()[1] && p.owner()[1] == p.owner()[2]);
        assert_eq!(p.owner()[5], p.owner()[6]);
        // Symmetric input yields the same plan regardless of direction.
        let flipped: Vec<_> = edges.iter().map(|&(a, b, w)| (b, a, w)).collect();
        assert_eq!(p, ShardPlan::by_affinity(10, 3, &flipped));
        // Degenerate shapes don't panic.
        assert_eq!(ShardPlan::by_affinity(0, 4, &[]).owner().len(), 0);
        assert_eq!(ShardPlan::by_affinity(5, 1, &edges).owner(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn affinity_plan_replays_bit_identically() {
        let mut seq = gossip_engine(12, shardable_delay(), 99);
        seq.enable_trace();
        seq.run();
        let want = fingerprint(&seq);
        // Derive the affinity graph from the sequential run's own trace —
        // the realistic pipeline (trace → channel stats → plan).
        let edges = crate::trace_analysis::TraceAnalysis::build(seq.trace()).affinity_edges();
        assert!(!edges.is_empty(), "gossip produces cross-channel traffic");
        for shards in [2, 4, 7] {
            let plan = ShardPlan::by_affinity(12, shards, &edges);
            let mut par = gossip_engine(12, shardable_delay(), 99);
            par.enable_trace();
            par.run_with_plan(&plan);
            assert_eq!(fingerprint(&par), want, "affinity plan, shards={shards}");
        }
    }

    #[test]
    fn ring_exchange_off_is_bit_identical() {
        let mut seq = gossip_engine(12, shardable_delay(), 7);
        seq.enable_trace();
        seq.run();
        let want = fingerprint(&seq);
        for on in [true, false] {
            let mut par = gossip_engine(12, shardable_delay(), 7);
            par.enable_trace();
            par.set_ring_exchange(on);
            par.run_sharded(4);
            assert_eq!(fingerprint(&par), want, "ring_exchange={on}");
        }
    }

    #[test]
    fn optimistic_run_is_bit_identical_and_rolls_back() {
        let mut seq = gossip_engine(12, shardable_delay(), 99);
        seq.enable_trace();
        seq.run();
        let want = fingerprint(&seq);
        for shards in [2, 4, 7] {
            let mut par = gossip_engine(12, shardable_delay(), 99);
            par.enable_trace();
            par.set_optimistic(true);
            par.run_sharded(shards);
            assert_eq!(fingerprint(&par), want, "optimistic, shards={shards}");
            assert!(
                par.rollbacks() > 0,
                "gossip cross-traffic must trigger at least one rollback (shards={shards})"
            );
        }
    }

    #[test]
    fn optimistic_windows_and_metrics_match_sequential() {
        let seq_metrics = Metrics::new();
        let mut seq = gossip_engine(12, shardable_delay(), 99);
        seq.set_metrics(&seq_metrics);
        seq.run();
        let want_events = seq_metrics.snapshot().counter("engine.events_processed");
        let want_delivered = seq_metrics.snapshot().counter("engine.messages_delivered");
        let want_dropped = seq_metrics.snapshot().counter("engine.messages_dropped");

        let run = |optimistic: bool| {
            let m = Metrics::new();
            let mut par = gossip_engine(12, shardable_delay(), 99);
            par.set_metrics(&m);
            par.set_optimistic(optimistic);
            par.run_sharded(4);
            m.snapshot()
        };
        let cons = run(false);
        let opt = run(true);
        // The deferred flush reconstructs the counters exactly.
        for (name, want) in [
            ("engine.events_processed", want_events),
            ("engine.messages_delivered", want_delivered),
            ("engine.messages_dropped", want_dropped),
        ] {
            assert_eq!(cons.counter(name), want, "conservative {name}");
            assert_eq!(opt.counter(name), want, "optimistic {name}");
        }
        // Speculation is the point: materially fewer synchronization
        // barriers than the conservative window count.
        let (cw, ow) =
            (cons.counter("engine.windows").unwrap(), opt.counter("engine.windows").unwrap());
        assert!(ow < cw, "optimistic must reduce barriers: {ow} vs {cw}");
        assert!(opt.counter("engine.rollbacks").unwrap() > 0);
        assert_eq!(cons.counter("engine.rollbacks"), Some(0));
        // No fault script installed, so no op sub-barriers: the windows
        // counter now measures lookahead windows alone.
        assert_eq!(cons.counter("engine.op_barriers"), Some(0));
        assert_eq!(opt.counter("engine.op_barriers"), Some(0));
    }

    #[test]
    fn op_barriers_counted_separately_from_windows() {
        let script = FaultScript::new()
            .with(
                SimTime::from_millis(25),
                FaultSpec::Crash { actor: 3, recover_after: Some(SimDuration::from_millis(30)) },
            )
            .with(
                SimTime::from_millis(40),
                FaultSpec::Partition {
                    group: vec![1, 2],
                    heal_after: SimDuration::from_millis(50),
                    policy: CutPolicy::Park,
                },
            );
        let m = Metrics::new();
        let mut e = gossip_engine(12, shardable_delay(), 4242);
        e.set_metrics(&m);
        e.install_faults(&script);
        e.run_sharded(4);
        let snap = m.snapshot();
        // Two scripted faults with timed recoveries expand to four
        // time-sorted plane ops, each a coordinator sub-barrier — and none
        // of them count as lookahead windows any more.
        assert_eq!(snap.counter("engine.op_barriers"), Some(4));
        assert!(snap.counter("engine.windows").unwrap() > 4);
    }

    #[test]
    fn optimistic_with_faults_matches_sequential() {
        let script = FaultScript::new()
            .with(
                SimTime::from_millis(25),
                FaultSpec::Crash { actor: 3, recover_after: Some(SimDuration::from_millis(30)) },
            )
            .with(
                SimTime::from_millis(40),
                FaultSpec::Partition {
                    group: vec![1, 2],
                    heal_after: SimDuration::from_millis(50),
                    policy: CutPolicy::Park,
                },
            );
        let run = |optimistic: bool, shards: usize| {
            let mut e = gossip_engine(12, shardable_delay(), 4242);
            e.enable_trace();
            e.install_faults(&script);
            e.set_optimistic(optimistic);
            if shards <= 1 {
                e.run();
            } else {
                e.run_sharded(shards);
            }
            fingerprint(&e)
        };
        let want = run(false, 1);
        for shards in [2, 4] {
            assert_eq!(run(true, shards), want, "optimistic+faults, shards={shards}");
        }
    }

    /// An actor without [`Actor::fork`] support, wrapping Gossip.
    struct NoFork(Gossip);
    impl Actor<TestMsg> for NoFork {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            self.0.on_start(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            self.0.on_message(ctx, from, msg);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
            self.0.on_timer(ctx, tag);
        }
    }

    #[test]
    fn optimistic_without_fork_falls_back_to_conservative() {
        let mk = || {
            let net = NetworkConfig::full_mesh(8, shardable_delay());
            let mut e = Engine::new(net, 11);
            for i in 0..8 {
                let g = Gossip { rounds: 8, period: SimDuration::from_millis(10) };
                // One unforkable actor disables speculation engine-wide.
                if i == 5 {
                    e.add_actor(Box::new(NoFork(g)));
                } else {
                    e.add_actor(Box::new(g));
                }
            }
            e.enable_trace();
            e
        };
        let mut seq = mk();
        seq.run();
        let mut par = mk();
        par.set_optimistic(true);
        par.run_sharded(4);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
        assert_eq!(par.rollbacks(), 0, "no speculation without universal fork support");
    }

    #[test]
    fn sharded_run_with_faults_matches_sequential() {
        let script = FaultScript::new()
            .with(
                SimTime::ZERO,
                FaultSpec::Channel(ChannelFaultRule {
                    from: None,
                    to: None,
                    prob: 0.2,
                    effect: ChannelEffect::Duplicate,
                    duration: Some(SimDuration::from_millis(80)),
                }),
            )
            .with(
                SimTime::from_millis(25),
                FaultSpec::Crash { actor: 3, recover_after: Some(SimDuration::from_millis(30)) },
            )
            .with(
                SimTime::from_millis(40),
                FaultSpec::Partition {
                    group: vec![1, 2],
                    heal_after: SimDuration::from_millis(50),
                    policy: CutPolicy::Park,
                },
            )
            .with(
                SimTime::from_millis(60),
                FaultSpec::Clock { actor: 5, kind: ClockFaultKind::Reset },
            );
        let run = |shards: usize| {
            let mut e = gossip_engine(12, shardable_delay(), 4242);
            e.enable_trace();
            e.install_faults(&script);
            if shards <= 1 {
                e.run();
            } else {
                e.run_sharded(shards);
            }
            fingerprint(&e)
        };
        let want = run(1);
        let fs = want.3.clone().unwrap();
        assert!(fs.crashes == 1 && fs.parked > 0, "script actually bites: {fs:?}");
        for shards in [2, 4, 7] {
            assert_eq!(run(shards), want, "shards={shards} under faults must be bit-identical");
        }
    }

    #[test]
    fn zero_lookahead_falls_back_to_sequential() {
        // delta() has min_bound 0, so run_sharded must take the sequential
        // path and still produce the exact sequential result.
        let mut seq = gossip_engine(8, DelayModel::delta(SimDuration::from_millis(20)), 5);
        seq.enable_trace();
        seq.run();
        let mut par = gossip_engine(8, DelayModel::delta(SimDuration::from_millis(20)), 5);
        par.enable_trace();
        par.run_sharded(4);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
    }

    #[test]
    fn sharded_respects_end_time() {
        let mut seq = gossip_engine(10, shardable_delay(), 31);
        seq.enable_trace();
        seq.set_end_time(SimTime::from_millis(55));
        seq.run();
        let mut par = gossip_engine(10, shardable_delay(), 31);
        par.enable_trace();
        par.set_end_time(SimTime::from_millis(55));
        par.run_sharded(3);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
        assert_eq!(par.now(), SimTime::from_millis(55));
    }

    #[test]
    fn sharded_delivers_injected_events() {
        let mut seq = gossip_engine(6, shardable_delay(), 8);
        seq.enable_trace();
        seq.inject(SimTime::from_millis(3), 4, 0, TestMsg::Ping(7));
        seq.inject(SimTime::from_millis(1), 1, 0, TestMsg::Ping(9));
        seq.run();
        let mut par = gossip_engine(6, shardable_delay(), 8);
        par.enable_trace();
        par.inject(SimTime::from_millis(3), 4, 0, TestMsg::Ping(7));
        par.inject(SimTime::from_millis(1), 1, 0, TestMsg::Ping(9));
        par.run_sharded(3);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
    }

    #[test]
    fn sparse_fifo_matches_dense() {
        // Force the sparse channel store and check FIFO clamping behaves
        // identically to the dense matrix on the same workload.
        let run = |dense_limit: usize| {
            let mut e = gossip_engine(12, shardable_delay(), 123);
            e.set_fifo_dense_limit(dense_limit);
            e.enable_trace();
            e.run();
            fingerprint(&e)
        };
        let dense = run(DENSE_ACTOR_LIMIT);
        let sparse = run(0);
        assert_eq!(sparse, dense, "sparse FIFO store must be observationally identical");
    }

    #[test]
    fn sharded_sparse_fifo_matches_sequential_dense() {
        let mut seq = gossip_engine(12, shardable_delay(), 321);
        seq.enable_trace();
        seq.run();
        let mut par = gossip_engine(12, shardable_delay(), 321);
        par.set_fifo_dense_limit(0);
        par.enable_trace();
        par.run_sharded(4);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
    }

    /// Everything observable except the final clock (a stepped engine ends
    /// at its watermark, a drained run at its last event).
    fn stepped_fingerprint(e: &Engine<TestMsg>) -> (NetStats, u64, Option<FaultStats>, String) {
        let f = fingerprint(e);
        (f.1, f.2, f.3, f.4)
    }

    #[test]
    fn step_until_matches_run() {
        let mut whole = gossip_engine(9, shardable_delay(), 77);
        whole.enable_trace();
        whole.run();

        let mut stepped = gossip_engine(9, shardable_delay(), 77);
        stepped.enable_trace();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(2) {
            t = t.saturating_add(SimDuration::from_millis(7));
            stepped.step_until(t).unwrap();
        }
        stepped.finish();
        assert_eq!(stepped_fingerprint(&stepped), stepped_fingerprint(&whole));
        assert_eq!(stepped.now(), t, "a stepped engine parks at its watermark");
    }

    #[test]
    fn step_until_with_faults_matches_run() {
        let script = FaultScript::new()
            .with(
                SimTime::from_millis(15),
                FaultSpec::Crash { actor: 2, recover_after: Some(SimDuration::from_millis(25)) },
            )
            .with(
                SimTime::from_millis(40),
                FaultSpec::Partition {
                    group: vec![0, 1],
                    heal_after: SimDuration::from_millis(30),
                    policy: CutPolicy::Park,
                },
            );
        let mut whole = gossip_engine(8, shardable_delay(), 55);
        whole.enable_trace();
        whole.install_faults(&script);
        whole.run();
        assert_eq!(whole.fault_stats().unwrap().crashes, 1, "script bites");

        let mut stepped = gossip_engine(8, shardable_delay(), 55);
        stepped.enable_trace();
        stepped.install_faults(&script);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(2) {
            t = t.saturating_add(SimDuration::from_micros(3_300));
            stepped.step_until(t).unwrap();
        }
        stepped.finish();
        assert_eq!(stepped_fingerprint(&stepped), stepped_fingerprint(&whole));
    }

    #[test]
    fn step_until_dispatches_starts_once() {
        let net = NetworkConfig::full_mesh(3, DelayModel::Synchronous);
        let mut e = Engine::new(net, 5);
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.step_until(SimTime::from_millis(1)).unwrap();
        e.step_until(SimTime::from_millis(2)).unwrap();
        e.run();
        assert_eq!(e.stats().broadcasts, 1, "on_start must not re-fire per step");
    }

    #[test]
    fn step_until_rejects_time_regression() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        e.step_until(SimTime::from_millis(50)).unwrap();
        let err = e.step_until(SimTime::from_millis(20)).unwrap_err();
        assert!(matches!(err, EngineError::TimeRegression { .. }));
        // The engine survives and keeps stepping forward.
        assert_eq!(e.step_until(SimTime::from_millis(60)).unwrap(), SimTime::from_millis(60));
    }

    #[test]
    fn try_inject_validates_the_boundary() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let err = e.try_inject(SimTime::ZERO, 9, 0, TestMsg::Ping(0)).unwrap_err();
        assert_eq!(err, EngineError::UnknownActor { id: 9, actors: 2 });
        let err = e.try_inject(SimTime::ZERO, 0, 7, TestMsg::Ping(0)).unwrap_err();
        assert_eq!(err, EngineError::UnknownActor { id: 7, actors: 2 });
        e.step_until(SimTime::from_millis(5)).unwrap();
        let err = e.try_inject(SimTime::from_millis(2), 0, 0, TestMsg::Ping(0)).unwrap_err();
        assert!(matches!(err, EngineError::TimeRegression { .. }));
        // At or past the watermark is fine.
        e.try_inject(SimTime::from_millis(5), 0, 0, TestMsg::Ping(0)).unwrap();
        e.try_inject(SimTime::from_millis(9), 0, 0, TestMsg::Ping(1)).unwrap();
    }

    #[test]
    fn try_take_actor_gives_typed_errors() {
        let mut e = ping_pong_engine(DelayModel::Synchronous);
        e.run();
        let err = e.try_take_actor(5).err().expect("out of range");
        assert_eq!(err, EngineError::UnknownActor { id: 5, actors: 2 });
        assert!(e.try_take_actor(0).is_ok());
        let err = e.try_take_actor(0).err().expect("already taken");
        assert_eq!(err, EngineError::ActorTaken { id: 0 });
    }

    #[test]
    fn engine_error_displays() {
        let e = EngineError::TimeRegression { at: SimTime::ZERO, now: SimTime::from_millis(1) };
        assert!(!e.to_string().is_empty());
        assert!(!EngineError::InjectIdsExhausted.to_string().is_empty());
    }
}
