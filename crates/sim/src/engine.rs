//! The discrete-event engine.
//!
//! Actors (sensor/actuator processes, the world plane, the root P₀) exchange
//! messages through a configured [`NetworkConfig`]; the engine owns the
//! future-event list, samples delays and losses deterministically, and
//! dispatches callbacks. A whole run is a pure function of
//! `(actors, network, seed)` — no wall-clock, no thread scheduling, no
//! global state.
//!
//! Design notes:
//! - Callbacks receive a [`Context`] that *buffers* actions (sends, timers,
//!   …); the engine applies them after the callback returns. This keeps the
//!   borrow structure trivial and the application order deterministic.
//! - Ties in the event queue break by scheduling order (see
//!   [`crate::queue::EventQueue`]), so even the synchronous Δ = 0 model is
//!   fully deterministic.

use crate::metrics::{Counter, Gauge, Metrics, Timer};
use crate::network::{ActorId, NetStats, NetworkConfig};
use crate::queue::EventQueue;
use crate::rng::{RngFactory, RngStream};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ClockStamp, MsgId, ProcessEventKind, Trace, TraceKind};

use std::time::Instant;

/// A message payload. Sizes feed the byte-overhead accounting of
/// experiment E7 (strobe scalar O(1) vs strobe vector O(n) payloads).
pub trait Message: Clone {
    /// The on-the-wire size of this payload, in bytes.
    fn size_bytes(&self) -> usize;
}

/// Behaviour of one simulated entity.
///
/// All callbacks receive a [`Context`] through which the actor reads the
/// current time, draws randomness from its private stream, sends messages,
/// sets timers, annotates the trace, and can halt the run.
pub trait Actor<M: Message> {
    /// Called once before the first event, in actor-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}
    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);
    /// A timer set with [`Context::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}
}

/// Buffered actions produced by an actor callback.
enum Action<M> {
    Send { to: ActorId, msg: M },
    Broadcast { msg: M },
    SetTimer { after: SimDuration, tag: u64 },
    Note { label: String },
    // Boxed so the rarely-hot stamped payload (a ClockStamp is ~100 bytes
    // inline) doesn't widen every Action the dispatch loop moves; the box
    // is only ever allocated while tracing is enabled.
    Trace(Box<ProcessTrace>),
    Halt,
}

struct ProcessTrace {
    kind: ProcessEventKind,
    stamp: ClockStamp,
    detail: u64,
}

/// The per-callback view an actor has of the simulation.
///
/// The action buffer is a reusable scratch vector owned by the engine, so
/// steady-state dispatch allocates nothing.
pub struct Context<'a, M> {
    now: SimTime,
    id: ActorId,
    n: usize,
    trace_on: bool,
    rng: &'a mut RngStream,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> Context<'_, M> {
    /// Current ground-truth simulation time.
    ///
    /// Real sensor processes must not base *protocol* decisions on this
    /// (they only have their own clocks); it exists so actors can model
    /// physical clock hardware and so test actors can assert on timing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Total number of actors in the simulation.
    pub fn actor_count(&self) -> usize {
        self.n
    }

    /// This actor's private random stream.
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Send `msg` to `to` through the network (delay/loss/topology apply).
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// System-wide broadcast to every *connected* peer (used by the strobe
    /// clock protocols, rules SVC1/SSC1).
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Arrange for [`Actor::on_timer`] to fire `after` from now with `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.actions.push(Action::SetTimer { after, tag });
    }

    /// Record a free-form annotation in the trace.
    pub fn note(&mut self, label: impl Into<String>) {
        self.actions.push(Action::Note { label: label.into() });
    }

    /// Is trace recording on for this run? Actors use this to skip building
    /// stamps for [`Context::trace_process`] when nobody is listening.
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Record a logically stamped semantic process event
    /// ([`TraceKind::Process`]) for this actor. No-op when tracing is off;
    /// recording is observational and cannot change the run.
    pub fn trace_process(&mut self, kind: ProcessEventKind, stamp: ClockStamp, detail: u64) {
        if self.trace_on {
            self.actions.push(Action::Trace(Box::new(ProcessTrace { kind, stamp, detail })));
        }
    }

    /// Stop the simulation after the current event is fully applied.
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }
}

/// An event in the future-event list. Actor ids are stored as `u32` to keep
/// entries small — every queue entry is moved O(log n) times per heap
/// operation, so entry size is directly visible in engine throughput.
enum Pending<M> {
    Deliver { from: u32, to: u32, msg: M, id: u64 },
    Timer { actor: u32, tag: u64 },
}

enum Dispatch<M> {
    Start,
    Message { from: ActorId, msg: M },
    Timer { tag: u64 },
}

/// Pre-registered engine metric handles (see [`crate::metrics`]). Recording
/// observes the simulation without feeding anything back into it — no RNG
/// draws, no event reordering — so enabling metrics cannot change a run.
struct EngineMetrics {
    events: Counter,
    delivered: Counter,
    dropped: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    run_wall: Timer,
    events_per_sec: Gauge,
}

impl EngineMetrics {
    fn attach(m: &Metrics) -> Self {
        EngineMetrics {
            events: m.counter("engine.events_processed"),
            delivered: m.counter("engine.messages_delivered"),
            dropped: m.counter("engine.messages_dropped"),
            queue_depth: m.gauge("engine.queue_depth"),
            in_flight: m.gauge("engine.in_flight"),
            run_wall: m.timer_with_range("engine.run_wall_ns", 0.0, 1e10, 128),
            events_per_sec: m.gauge("engine.events_per_sec"),
        }
    }
}

/// The simulation engine.
pub struct Engine<M: Message> {
    now: SimTime,
    queue: EventQueue<Pending<M>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    network: NetworkConfig,
    factory: RngFactory,
    rngs: Vec<RngStream>,
    net_rng: RngStream,
    trace: Trace,
    stats: NetStats,
    /// Dense `n×n` matrix of last-scheduled delivery times per (from, to)
    /// channel, indexed `from * fifo_stride + to`. Actor ids are dense from
    /// 0, so a flat matrix replaces the former per-pair `HashMap` with a
    /// single multiply-add and no hashing on the transmit hot path.
    /// `SimTime::ZERO` entries are exactly the pairs the map did not hold.
    fifo_last: Vec<SimTime>,
    fifo_stride: usize,
    end_time: SimTime,
    halted: bool,
    events_processed: u64,
    /// Monotone per-run transmission id counter (see [`MsgId`]). Bumped on
    /// every attempted transmission and every injected delivery, tracing on
    /// or off, so ids never feed back into behaviour.
    next_msg_id: u64,
    m: EngineMetrics,
    /// Messages scheduled for delivery but not yet delivered.
    in_flight: u64,
    /// Reusable buffer for the actions produced by one actor callback.
    action_scratch: Vec<Action<M>>,
    /// Reusable buffer for a broadcast's neighbor list.
    peer_scratch: Vec<ActorId>,
}

impl<M: Message> Engine<M> {
    /// Build an engine over the given network, with per-actor RNG streams
    /// derived from `seed`.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let net_rng = factory.labeled_stream("engine.network");
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            actors: Vec::new(),
            network,
            rngs: Vec::new(),
            net_rng,
            factory,
            trace: Trace::disabled(),
            stats: NetStats::default(),
            fifo_last: Vec::new(),
            fifo_stride: 0,
            end_time: SimTime::MAX,
            halted: false,
            events_processed: 0,
            next_msg_id: 0,
            m: EngineMetrics::attach(&Metrics::disabled()),
            in_flight: 0,
            action_scratch: Vec::new(),
            peer_scratch: Vec::new(),
        }
    }

    /// Record engine metrics (events processed, delivered vs dropped
    /// messages, queue depth, in-flight high-water, run wall time) into
    /// `metrics`. Recording is observational only: a run with metrics
    /// attached is bit-identical to the same run without.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.m = EngineMetrics::attach(metrics);
    }

    /// Register an actor; returns its id. Actors must be added before
    /// [`Engine::run`]. Ids are assigned densely from 0 and must agree with
    /// the network topology's node numbering.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Some(actor));
        self.rngs.push(self.factory.stream(id as u64 + 1));
        id
    }

    /// Enable trace recording.
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Stop the run at this time even if events remain.
    pub fn set_end_time(&mut self, end: SimTime) {
        self.end_time = end;
    }

    /// Schedule an external input: `msg` will be delivered to `to` at `at`,
    /// bypassing the network's delay/loss models — used to inject
    /// precomputed world-plane timelines. `from` is a conventional source id
    /// (often the world actor's id).
    pub fn inject(&mut self, at: SimTime, to: ActorId, from: ActorId, msg: M) {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.queue.schedule(at, Pending::Deliver { from: from as u32, to: to as u32, msg, id });
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight);
        self.m.queue_depth.set(self.queue.len() as u64);
    }

    /// Pre-reserve queue capacity for `n` additional events. Callers that
    /// bulk-[`inject`](Engine::inject) a known timeline (e.g. the world
    /// plane) should reserve up front to avoid repeated heap growth.
    pub fn reserve_events(&mut self, n: usize) {
        self.queue.reserve(n);
    }

    /// Run until the queue drains, the end time passes, or an actor halts.
    /// Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        let wall_start = Instant::now();
        let events_before = self.events_processed;
        self.trace.configure_actors(self.actors.len());
        for id in 0..self.actors.len() {
            if self.halted {
                break;
            }
            self.dispatch(id, Dispatch::Start);
        }
        while !self.halted {
            let Some(at) = self.queue.peek_time() else { break };
            if at > self.end_time {
                self.now = self.end_time;
                break;
            }
            let (at, pending) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            self.events_processed += 1;
            self.m.events.inc();
            match pending {
                Pending::Deliver { from, to, msg, id } => {
                    let (from, to) = (from as ActorId, to as ActorId);
                    self.trace.record(self.now, TraceKind::Delivered { from, to, msg: MsgId(id) });
                    self.stats.messages_delivered += 1;
                    self.m.delivered.inc();
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.m.in_flight.set(self.in_flight);
                    self.dispatch(to, Dispatch::Message { from, msg });
                }
                Pending::Timer { actor, tag } => {
                    let actor = actor as ActorId;
                    self.trace.record(self.now, TraceKind::TimerFired { actor, tag });
                    self.dispatch(actor, Dispatch::Timer { tag });
                }
            }
            self.m.queue_depth.set(self.queue.len() as u64);
        }
        self.trace.seal();
        let wall = wall_start.elapsed();
        self.m.run_wall.record_duration(wall);
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            self.m
                .events_per_sec
                .set(((self.events_processed - events_before) as f64 / secs) as u64);
        }
        self.now
    }

    fn dispatch(&mut self, id: ActorId, what: Dispatch<M>) {
        let Some(slot) = self.actors.get_mut(id) else { return };
        let Some(mut actor) = slot.take() else { return };
        // Lend the engine's scratch buffer to the callback, then take it
        // back: dispatch allocates nothing once the buffer has warmed up.
        let mut actions = std::mem::take(&mut self.action_scratch);
        debug_assert!(actions.is_empty());
        let mut ctx = Context {
            now: self.now,
            id,
            n: self.actors.len(),
            trace_on: self.trace.is_enabled(),
            rng: &mut self.rngs[id],
            actions: &mut actions,
        };
        match what {
            Dispatch::Start => actor.on_start(&mut ctx),
            Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
            Dispatch::Timer { tag } => actor.on_timer(&mut ctx, tag),
        }
        self.actors[id] = Some(actor);
        for a in actions.drain(..) {
            self.apply(id, a);
        }
        self.action_scratch = actions;
    }

    fn apply(&mut self, from: ActorId, action: Action<M>) {
        match action {
            Action::Send { to, msg } => self.transmit(from, to, msg),
            Action::Broadcast { msg } => {
                self.stats.broadcasts += 1;
                let mut peers = std::mem::take(&mut self.peer_scratch);
                self.network.topology.collect_neighbors(from, &mut peers);
                // The message moves to the final peer; only the first
                // `len - 1` transmissions clone it.
                if let Some((&last, rest)) = peers.split_last() {
                    for &to in rest {
                        self.transmit(from, to, msg.clone());
                    }
                    self.transmit(from, last, msg);
                }
                self.peer_scratch = peers;
            }
            Action::SetTimer { after, tag } => {
                self.queue.schedule(self.now + after, Pending::Timer { actor: from as u32, tag });
            }
            Action::Note { label } => {
                self.trace.record(self.now, TraceKind::Note { actor: from, label });
            }
            Action::Trace(t) => {
                let ProcessTrace { kind, stamp, detail } = *t;
                self.trace
                    .record(self.now, TraceKind::Process { actor: from, kind, stamp, detail });
            }
            Action::Halt => self.halted = true,
        }
    }

    fn transmit(&mut self, from: ActorId, to: ActorId, msg: M) {
        if !self.network.topology.connected(from, to) {
            self.m.dropped.inc();
            return; // no link: silently dropped
        }
        let bytes = msg.size_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(id) });
        if self.network.loss.is_lost(&mut self.net_rng) {
            self.stats.messages_lost += 1;
            self.m.dropped.inc();
            self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
            return;
        }
        let delay = self.network.delay.sample(&mut self.net_rng);
        let mut deliver_at = self.now + delay;
        if self.network.fifo {
            // `connected` guarantees from/to < topology.len(), so the matrix
            // only ever grows when the topology itself does.
            let n = self.network.topology.len();
            if self.fifo_stride < n {
                self.grow_fifo(n);
            }
            let last = &mut self.fifo_last[from * self.fifo_stride + to];
            if deliver_at < *last {
                deliver_at = *last;
            }
            *last = deliver_at;
        }
        self.queue
            .schedule(deliver_at, Pending::Deliver { from: from as u32, to: to as u32, msg, id });
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight);
    }

    /// Resize the FIFO matrix to stride `n`, remapping existing channel
    /// entries. Runs at most once per topology size change.
    #[cold]
    fn grow_fifo(&mut self, n: usize) {
        let mut grown = vec![SimTime::ZERO; n * n];
        for f in 0..self.fifo_stride {
            for t in 0..self.fifo_stride {
                grown[f * n + t] = self.fifo_last[f * self.fifo_stride + t];
            }
        }
        self.fifo_last = grown;
        self.fifo_stride = n;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total events dispatched.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Mutable access to the network configuration (e.g. to flip overlay
    /// links between runs).
    pub fn network_mut(&mut self) -> &mut NetworkConfig {
        &mut self.network
    }

    /// Recover an actor after the run to read its final state.
    ///
    /// Panics if `id` is out of range or the actor was already taken.
    pub fn take_actor(&mut self, id: ActorId) -> Box<dyn Actor<M>> {
        self.actors[id].take().expect("actor present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::loss::LossModel;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TestMsg {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    /// Sends `Ping(k)` to its peer on start and on each pong, up to `max`.
    struct PingPong {
        peer: ActorId,
        max: u32,
        log: Vec<(SimTime, TestMsg)>,
        initiator: bool,
    }
    impl Actor<TestMsg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.initiator {
                ctx.send(self.peer, TestMsg::Ping(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            assert_eq!(from, self.peer);
            self.log.push((ctx.now(), msg.clone()));
            match msg {
                TestMsg::Ping(k) => ctx.send(self.peer, TestMsg::Pong(k)),
                TestMsg::Pong(k) if k + 1 < self.max => ctx.send(self.peer, TestMsg::Ping(k + 1)),
                TestMsg::Pong(_) => ctx.halt(),
            }
        }
    }

    fn ping_pong_engine(delay: DelayModel) -> Engine<TestMsg> {
        let net = NetworkConfig::full_mesh(2, delay);
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(PingPong { peer: 1, max: 5, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 5, log: vec![], initiator: false }));
        e
    }

    #[test]
    fn ping_pong_completes() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end = e.run();
        // 5 pings + 5 pongs, each 10ms: last delivery at 100ms.
        assert_eq!(end, SimTime::from_millis(100));
        assert_eq!(e.stats().messages_sent, 10);
        assert_eq!(e.stats().messages_delivered, 10);
        assert_eq!(e.stats().bytes_sent, 40);
    }

    #[test]
    fn synchronous_delivery_is_same_instant() {
        let mut e = ping_pong_engine(DelayModel::Synchronous);
        let end = e.run();
        assert_eq!(end, SimTime::ZERO, "everything happens at t=0 under Δ=0");
        assert_eq!(e.stats().messages_delivered, 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(50)));
            let mut e = Engine::new(net, seed);
            e.add_actor(Box::new(PingPong { peer: 1, max: 20, log: vec![], initiator: true }));
            e.add_actor(Box::new(PingPong { peer: 0, max: 20, log: vec![], initiator: false }));
            let end = e.run();
            (end, e.stats().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds give different delays");
    }

    #[test]
    fn loss_drops_messages() {
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        assert_eq!(e.stats().messages_sent, 1);
        assert_eq!(e.stats().messages_lost, 1);
        assert_eq!(e.stats().messages_delivered, 0);
    }

    #[test]
    fn end_time_stops_run() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        e.set_end_time(SimTime::from_millis(35));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(35));
        assert!(e.stats().messages_delivered < 10);
    }

    /// Broadcast actor: broadcasts once on start; all receivers log.
    struct Beacon {
        fire: bool,
        received: u32,
    }
    impl Actor<TestMsg> for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.fire {
                ctx.broadcast(TestMsg::Ping(99));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            self.received += 1;
        }
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let net = NetworkConfig::full_mesh(5, DelayModel::Synchronous);
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        for _ in 1..5 {
            e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        }
        e.run();
        assert_eq!(e.stats().broadcasts, 1);
        assert_eq!(e.stats().messages_sent, 4);
        assert_eq!(e.stats().messages_delivered, 4);
    }

    #[test]
    fn topology_blocks_unconnected_sends() {
        let net = NetworkConfig {
            topology: crate::network::Topology::star(3),
            delay: DelayModel::Synchronous,
            loss: LossModel::None,
            fifo: true,
        };
        let mut e = Engine::new(net, 3);
        // Actor 1 and 2 are both leaves: 1 -> 2 has no link.
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.run();
        // Broadcast from 1 only reaches the hub 0.
        assert_eq!(e.stats().messages_sent, 1);
    }

    /// Timer actor: schedules a chain of timers.
    struct Ticker {
        fired: Vec<(SimTime, u64)>,
        period: SimDuration,
        remaining: u64,
    }
    impl Actor<TestMsg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
            self.fired.push((ctx.now(), tag));
            if tag + 1 < self.remaining {
                ctx.set_timer(self.period, tag + 1);
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 9);
        e.add_actor(Box::new(Ticker {
            fired: vec![],
            period: SimDuration::from_millis(100),
            remaining: 4,
        }));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(400));
        let t = e.take_actor(0);
        // Downcast via raw pointer is overkill; instead verify through time.
        drop(t);
        assert_eq!(e.events_processed(), 4);
    }

    #[test]
    fn fifo_prevents_overtaking() {
        // With a wildly variable delay and FIFO on, deliveries from one
        // sender to one receiver must be in send order.
        struct Spray {
            sent: bool,
        }
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                if !self.sent {
                    for k in 0..50 {
                        ctx.send(1, TestMsg::Ping(k));
                    }
                    self.sent = true;
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        // We cannot easily extract state from Box<dyn Actor>, so assert
        // ordering via a shared log.
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }

        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)));
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray { sent: false }));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "FIFO must preserve order");
    }

    #[test]
    fn non_fifo_allows_overtaking() {
        struct Spray;
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                for k in 0..200 {
                    ctx.send(1, TestMsg::Ping(k));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)))
            .with_fifo(false);
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 200);
        let sorted: Vec<u32> = {
            let mut s = got.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(got, sorted, "with random delays some message should overtake");
    }

    #[test]
    fn inject_delivers_external_events() {
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<(SimTime, u32)>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push((ctx.now(), k));
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 0);
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.inject(SimTime::from_millis(5), 0, 0, TestMsg::Ping(1));
        e.inject(SimTime::from_millis(2), 0, 0, TestMsg::Ping(2));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(*got, vec![(SimTime::from_millis(2), 2), (SimTime::from_millis(5), 1)]);
    }

    #[test]
    fn metrics_observe_the_run_without_changing_it() {
        let m = crate::metrics::Metrics::new();
        let mut instrumented = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        instrumented.set_metrics(&m);
        let end_i = instrumented.run();
        let mut plain = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end_p = plain.run();
        assert_eq!(end_i, end_p, "metrics must not perturb the run");
        assert_eq!(instrumented.stats().clone(), plain.stats().clone());
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_delivered"), Some(10));
        assert_eq!(snap.counter("engine.events_processed"), Some(instrumented.events_processed()));
        let (in_flight_now, in_flight_high) = snap.gauge("engine.in_flight").unwrap();
        assert_eq!(in_flight_now, 0, "queue drained");
        assert!(in_flight_high >= 1, "ping-pong always has one message in flight");
        assert_eq!(snap.timer("engine.run_wall_ns").unwrap().count, 1);
    }

    #[test]
    fn metrics_count_dropped_messages() {
        let m = crate::metrics::Metrics::new();
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.set_metrics(&m);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_dropped"), Some(1));
        assert_eq!(snap.counter("engine.messages_delivered"), Some(0));
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(1)));
        e.enable_trace();
        e.run();
        assert!(e.trace().len() >= 20, "sent + delivered for each message");
        let sent = e.trace().count_matching(|k| matches!(k, TraceKind::Sent { .. }));
        let delivered = e.trace().count_matching(|k| matches!(k, TraceKind::Delivered { .. }));
        assert_eq!(sent, 10);
        assert_eq!(delivered, 10);
    }
}
