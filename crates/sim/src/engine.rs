//! The discrete-event engine.
//!
//! Actors (sensor/actuator processes, the world plane, the root P₀) exchange
//! messages through a configured [`NetworkConfig`]; the engine owns the
//! future-event list, samples delays and losses deterministically, and
//! dispatches callbacks. A whole run is a pure function of
//! `(actors, network, seed)` — no wall-clock, no thread scheduling, no
//! global state.
//!
//! Design notes:
//! - Callbacks receive a [`Context`] that *buffers* actions (sends, timers,
//!   …); the engine applies them after the callback returns. This keeps the
//!   borrow structure trivial and the application order deterministic.
//! - Ties in the event queue break by scheduling order (see
//!   [`crate::queue::EventQueue`]), so even the synchronous Δ = 0 model is
//!   fully deterministic.

use crate::fault::{
    ChannelEffect, CutPolicy, FaultEvent, FaultPlane, FaultScript, FaultStats, Parked, PlaneOp,
};
use crate::metrics::{Counter, Gauge, Metrics, Timer};
use crate::network::{ActorId, NetStats, NetworkConfig};
use crate::queue::EventQueue;
use crate::rng::{RngFactory, RngStream};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ClockStamp, FaultRecordKind, MsgId, ProcessEventKind, Trace, TraceKind};

use std::time::Instant;

/// A message payload. Sizes feed the byte-overhead accounting of
/// experiment E7 (strobe scalar O(1) vs strobe vector O(n) payloads).
pub trait Message: Clone {
    /// The on-the-wire size of this payload, in bytes.
    fn size_bytes(&self) -> usize;

    /// Mutate the payload to model in-flight corruption (fault plane,
    /// [`ChannelEffect::Corrupt`]); return `true` if anything changed.
    /// All randomness must come from `rng` (the plane's private stream).
    /// The default is incorruptible, so existing message types are
    /// unaffected until they opt in.
    fn corrupt(&mut self, _rng: &mut RngStream) -> bool {
        false
    }
}

/// Behaviour of one simulated entity.
///
/// All callbacks receive a [`Context`] through which the actor reads the
/// current time, draws randomness from its private stream, sends messages,
/// sets timers, annotates the trace, and can halt the run.
pub trait Actor<M: Message> {
    /// Called once before the first event, in actor-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}
    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);
    /// A timer set with [`Context::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}
    /// A fault-plane event hit this actor (see [`FaultEvent`]): recovery
    /// after a crash, or a clock fault. Default: ignore faults entirely —
    /// actors that model no recoverable state need no changes.
    fn on_fault(&mut self, _ctx: &mut Context<'_, M>, _event: &FaultEvent) {}
}

/// Buffered actions produced by an actor callback.
enum Action<M> {
    Send { to: ActorId, msg: M },
    Broadcast { msg: M },
    SetTimer { after: SimDuration, tag: u64 },
    Note { label: String },
    // Boxed so the rarely-hot stamped payload (a ClockStamp is ~100 bytes
    // inline) doesn't widen every Action the dispatch loop moves; the box
    // is only ever allocated while tracing is enabled.
    Trace(Box<ProcessTrace>),
    Halt,
}

struct ProcessTrace {
    kind: ProcessEventKind,
    stamp: ClockStamp,
    detail: u64,
}

/// The per-callback view an actor has of the simulation.
///
/// The action buffer is a reusable scratch vector owned by the engine, so
/// steady-state dispatch allocates nothing.
pub struct Context<'a, M> {
    now: SimTime,
    id: ActorId,
    n: usize,
    trace_on: bool,
    rng: &'a mut RngStream,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> Context<'_, M> {
    /// Current ground-truth simulation time.
    ///
    /// Real sensor processes must not base *protocol* decisions on this
    /// (they only have their own clocks); it exists so actors can model
    /// physical clock hardware and so test actors can assert on timing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Total number of actors in the simulation.
    pub fn actor_count(&self) -> usize {
        self.n
    }

    /// This actor's private random stream.
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Send `msg` to `to` through the network (delay/loss/topology apply).
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// System-wide broadcast to every *connected* peer (used by the strobe
    /// clock protocols, rules SVC1/SSC1).
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Arrange for [`Actor::on_timer`] to fire `after` from now with `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.actions.push(Action::SetTimer { after, tag });
    }

    /// Record a free-form annotation in the trace.
    pub fn note(&mut self, label: impl Into<String>) {
        self.actions.push(Action::Note { label: label.into() });
    }

    /// Is trace recording on for this run? Actors use this to skip building
    /// stamps for [`Context::trace_process`] when nobody is listening.
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Record a logically stamped semantic process event
    /// ([`TraceKind::Process`]) for this actor. No-op when tracing is off;
    /// recording is observational and cannot change the run.
    pub fn trace_process(&mut self, kind: ProcessEventKind, stamp: ClockStamp, detail: u64) {
        if self.trace_on {
            self.actions.push(Action::Trace(Box::new(ProcessTrace { kind, stamp, detail })));
        }
    }

    /// Stop the simulation after the current event is fully applied.
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }
}

/// An event in the future-event list. Actor ids are stored as `u32` to keep
/// entries small — every queue entry is moved O(log n) times per heap
/// operation, so entry size is directly visible in engine throughput.
enum Pending<M> {
    Deliver { from: u32, to: u32, msg: M, id: u64 },
    Timer { actor: u32, tag: u64 },
    // Index into the installed fault plane's expanded operation list.
    // Smaller than Deliver, so the fault plane never widens queue entries.
    Fault { idx: u32 },
}

enum Dispatch<M> {
    Start,
    Message { from: ActorId, msg: M },
    Timer { tag: u64 },
    Fault { event: FaultEvent },
}

/// Pre-registered engine metric handles (see [`crate::metrics`]). Recording
/// observes the simulation without feeding anything back into it — no RNG
/// draws, no event reordering — so enabling metrics cannot change a run.
struct EngineMetrics {
    events: Counter,
    delivered: Counter,
    dropped: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    run_wall: Timer,
    events_per_sec: Gauge,
}

impl EngineMetrics {
    fn attach(m: &Metrics) -> Self {
        EngineMetrics {
            events: m.counter("engine.events_processed"),
            delivered: m.counter("engine.messages_delivered"),
            dropped: m.counter("engine.messages_dropped"),
            queue_depth: m.gauge("engine.queue_depth"),
            in_flight: m.gauge("engine.in_flight"),
            run_wall: m.timer_with_range("engine.run_wall_ns", 0.0, 1e10, 128),
            events_per_sec: m.gauge("engine.events_per_sec"),
        }
    }
}

/// The simulation engine.
pub struct Engine<M: Message> {
    now: SimTime,
    queue: EventQueue<Pending<M>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    network: NetworkConfig,
    factory: RngFactory,
    rngs: Vec<RngStream>,
    net_rng: RngStream,
    trace: Trace,
    stats: NetStats,
    /// Dense `n×n` matrix of last-scheduled delivery times per (from, to)
    /// channel, indexed `from * fifo_stride + to`. Actor ids are dense from
    /// 0, so a flat matrix replaces the former per-pair `HashMap` with a
    /// single multiply-add and no hashing on the transmit hot path.
    /// `SimTime::ZERO` entries are exactly the pairs the map did not hold.
    fifo_last: Vec<SimTime>,
    fifo_stride: usize,
    end_time: SimTime,
    halted: bool,
    events_processed: u64,
    /// Monotone per-run transmission id counter (see [`MsgId`]). Bumped on
    /// every attempted transmission and every injected delivery, tracing on
    /// or off, so ids never feed back into behaviour.
    next_msg_id: u64,
    m: EngineMetrics,
    /// Messages scheduled for delivery but not yet delivered.
    in_flight: u64,
    /// Reusable buffer for the actions produced by one actor callback.
    action_scratch: Vec<Action<M>>,
    /// Reusable buffer for a broadcast's neighbor list.
    peer_scratch: Vec<ActorId>,
    /// The installed fault plane, if any. `None` on the hot path costs one
    /// predictable branch per event; see [`Engine::install_faults`].
    fault: Option<Box<FaultPlane<M>>>,
}

impl<M: Message> Engine<M> {
    /// Build an engine over the given network, with per-actor RNG streams
    /// derived from `seed`.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let net_rng = factory.labeled_stream("engine.network");
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            actors: Vec::new(),
            network,
            rngs: Vec::new(),
            net_rng,
            factory,
            trace: Trace::disabled(),
            stats: NetStats::default(),
            fifo_last: Vec::new(),
            fifo_stride: 0,
            end_time: SimTime::MAX,
            halted: false,
            events_processed: 0,
            next_msg_id: 0,
            m: EngineMetrics::attach(&Metrics::disabled()),
            in_flight: 0,
            action_scratch: Vec::new(),
            peer_scratch: Vec::new(),
            fault: None,
        }
    }

    /// Install a [`FaultScript`]: every scripted fault is expanded and
    /// scheduled on the event queue. Call after [`Engine::add_actor`] (the
    /// plane sizes its crash mask from the actor count) and before
    /// [`Engine::run`]. The plane draws from its own stream (label
    /// `"engine.faults"`, derived statelessly from the master seed), never
    /// from the network RNG — an **empty** script is observationally
    /// identical to not installing one at all.
    pub fn install_faults(&mut self, script: &FaultScript) {
        let rng = self.factory.labeled_stream("engine.faults");
        let plane = FaultPlane::new(script, rng, self.actors.len());
        for (idx, &(at, _)) in plane.ops.iter().enumerate() {
            self.queue.schedule(at, Pending::Fault { idx: idx as u32 });
        }
        self.fault = Some(Box::new(plane));
    }

    /// The fault plane's counters, if a script is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|p| p.stats())
    }

    /// Messages scheduled (or parked by a partition) but not yet delivered.
    /// After a run this is the undelivered backlog; together with the
    /// delivered/lost counters it closes the queue-conservation identity
    /// the chaos soak asserts.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Record engine metrics (events processed, delivered vs dropped
    /// messages, queue depth, in-flight high-water, run wall time) into
    /// `metrics`. Recording is observational only: a run with metrics
    /// attached is bit-identical to the same run without.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.m = EngineMetrics::attach(metrics);
    }

    /// Register an actor; returns its id. Actors must be added before
    /// [`Engine::run`]. Ids are assigned densely from 0 and must agree with
    /// the network topology's node numbering.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Some(actor));
        self.rngs.push(self.factory.stream(id as u64 + 1));
        id
    }

    /// Enable trace recording.
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Stop the run at this time even if events remain.
    pub fn set_end_time(&mut self, end: SimTime) {
        self.end_time = end;
    }

    /// Schedule an external input: `msg` will be delivered to `to` at `at`,
    /// bypassing the network's delay/loss models — used to inject
    /// precomputed world-plane timelines. `from` is a conventional source id
    /// (often the world actor's id).
    pub fn inject(&mut self, at: SimTime, to: ActorId, from: ActorId, msg: M) {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.queue.schedule(at, Pending::Deliver { from: from as u32, to: to as u32, msg, id });
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight);
        self.m.queue_depth.set(self.queue.len() as u64);
    }

    /// Pre-reserve queue capacity for `n` additional events. Callers that
    /// bulk-[`inject`](Engine::inject) a known timeline (e.g. the world
    /// plane) should reserve up front to avoid repeated heap growth.
    pub fn reserve_events(&mut self, n: usize) {
        self.queue.reserve(n);
    }

    /// Run until the queue drains, the end time passes, or an actor halts.
    /// Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        let wall_start = Instant::now();
        let events_before = self.events_processed;
        self.trace.configure_actors(self.actors.len());
        for id in 0..self.actors.len() {
            if self.halted {
                break;
            }
            self.dispatch(id, Dispatch::Start);
        }
        while !self.halted {
            let Some(at) = self.queue.peek_time() else { break };
            if at > self.end_time {
                self.now = self.end_time;
                break;
            }
            let (at, pending) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            self.events_processed += 1;
            self.m.events.inc();
            match pending {
                Pending::Deliver { from, to, msg, id } => {
                    let (from, to) = (from as ActorId, to as ActorId);
                    // One predictable branch when no fault plane is
                    // installed; a delivery to a crashed node is lost.
                    match self.fault.as_mut() {
                        Some(plane) if plane.is_down(to) => {
                            plane.stats.dropped_at_down += 1;
                            self.trace
                                .record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                            self.stats.messages_lost += 1;
                            self.stats.messages_faulted += 1;
                            self.m.dropped.inc();
                            self.in_flight = self.in_flight.saturating_sub(1);
                            self.m.in_flight.set(self.in_flight);
                        }
                        _ => {
                            self.trace.record(
                                self.now,
                                TraceKind::Delivered { from, to, msg: MsgId(id) },
                            );
                            self.stats.messages_delivered += 1;
                            self.m.delivered.inc();
                            self.in_flight = self.in_flight.saturating_sub(1);
                            self.m.in_flight.set(self.in_flight);
                            self.dispatch(to, Dispatch::Message { from, msg });
                        }
                    }
                }
                Pending::Timer { actor, tag } => {
                    let actor = actor as ActorId;
                    // A crashed node's timers are silently discarded (the
                    // process re-arms what it needs on recovery).
                    match self.fault.as_mut() {
                        Some(plane) if plane.is_down(actor) => {
                            plane.stats.timers_suppressed += 1;
                        }
                        _ => {
                            self.trace.record(self.now, TraceKind::TimerFired { actor, tag });
                            self.dispatch(actor, Dispatch::Timer { tag });
                        }
                    }
                }
                Pending::Fault { idx } => self.apply_fault(idx as usize),
            }
            self.m.queue_depth.set(self.queue.len() as u64);
        }
        self.trace.seal();
        let wall = wall_start.elapsed();
        self.m.run_wall.record_duration(wall);
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            self.m
                .events_per_sec
                .set(((self.events_processed - events_before) as f64 / secs) as u64);
        }
        self.now
    }

    fn dispatch(&mut self, id: ActorId, what: Dispatch<M>) {
        let Some(slot) = self.actors.get_mut(id) else { return };
        let Some(mut actor) = slot.take() else { return };
        // Lend the engine's scratch buffer to the callback, then take it
        // back: dispatch allocates nothing once the buffer has warmed up.
        let mut actions = std::mem::take(&mut self.action_scratch);
        debug_assert!(actions.is_empty());
        let mut ctx = Context {
            now: self.now,
            id,
            n: self.actors.len(),
            trace_on: self.trace.is_enabled(),
            rng: &mut self.rngs[id],
            actions: &mut actions,
        };
        match what {
            Dispatch::Start => actor.on_start(&mut ctx),
            Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
            Dispatch::Timer { tag } => actor.on_timer(&mut ctx, tag),
            Dispatch::Fault { event } => actor.on_fault(&mut ctx, &event),
        }
        self.actors[id] = Some(actor);
        for a in actions.drain(..) {
            self.apply(id, a);
        }
        self.action_scratch = actions;
    }

    fn apply(&mut self, from: ActorId, action: Action<M>) {
        match action {
            Action::Send { to, msg } => self.transmit(from, to, msg),
            Action::Broadcast { msg } => {
                self.stats.broadcasts += 1;
                let mut peers = std::mem::take(&mut self.peer_scratch);
                self.network.topology.collect_neighbors(from, &mut peers);
                // The message moves to the final peer; only the first
                // `len - 1` transmissions clone it.
                if let Some((&last, rest)) = peers.split_last() {
                    for &to in rest {
                        self.transmit(from, to, msg.clone());
                    }
                    self.transmit(from, last, msg);
                }
                self.peer_scratch = peers;
            }
            Action::SetTimer { after, tag } => {
                self.queue.schedule(self.now + after, Pending::Timer { actor: from as u32, tag });
            }
            Action::Note { label } => {
                self.trace.record(self.now, TraceKind::Note { actor: from, label });
            }
            Action::Trace(t) => {
                let ProcessTrace { kind, stamp, detail } = *t;
                self.trace
                    .record(self.now, TraceKind::Process { actor: from, kind, stamp, detail });
            }
            Action::Halt => self.halted = true,
        }
    }

    fn transmit(&mut self, from: ActorId, to: ActorId, msg: M) {
        if !self.network.topology.connected(from, to) {
            self.m.dropped.inc();
            return; // no link: silently dropped
        }
        // One predictable branch: with a fault plane installed the
        // transmission goes through the partition/channel-fault pipeline,
        // which replicates this hot path exactly when no fault applies.
        if self.fault.is_some() {
            return self.transmit_faulted(from, to, msg);
        }
        let bytes = msg.size_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(id) });
        if self.network.loss.is_lost(&mut self.net_rng) {
            self.stats.messages_lost += 1;
            self.m.dropped.inc();
            self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
            return;
        }
        let delay = self.network.delay.sample(&mut self.net_rng);
        let mut deliver_at = self.now + delay;
        if self.network.fifo {
            // `connected` guarantees from/to < topology.len(), so the matrix
            // only ever grows when the topology itself does.
            let n = self.network.topology.len();
            if self.fifo_stride < n {
                self.grow_fifo(n);
            }
            let last = &mut self.fifo_last[from * self.fifo_stride + to];
            if deliver_at < *last {
                deliver_at = *last;
            }
            *last = deliver_at;
        }
        self.queue
            .schedule(deliver_at, Pending::Deliver { from: from as u32, to: to as u32, msg, id });
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight);
    }

    /// [`Engine::transmit`] with the fault plane interposed: partitions
    /// block or park, channel-fault rules drop/duplicate/reorder/corrupt,
    /// then the normal loss/delay/FIFO pipeline runs. When nothing in the
    /// plane applies, this performs exactly the same accounting, records,
    /// and RNG draws as the plain path (the faults-off determinism test
    /// relies on it).
    fn transmit_faulted(&mut self, from: ActorId, to: ActorId, mut msg: M) {
        let mut plane = self.fault.take().expect("caller checked");
        let bytes = msg.size_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(id) });

        // 1. Partitions sever the channel before anything else.
        if plane.active_cuts > 0 && plane.blocked(from, to) {
            match plane.cut_policy(from, to) {
                CutPolicy::Drop => {
                    self.stats.messages_lost += 1;
                    self.stats.messages_faulted += 1;
                    self.m.dropped.inc();
                    self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                    plane.stats.dropped_by_partition += 1;
                }
                CutPolicy::Park => {
                    self.trace.record(
                        self.now,
                        TraceKind::Fault { actor: from, kind: FaultRecordKind::Parked, detail: id },
                    );
                    plane.parked.push(Parked { from, to, msg, id, deliver_at: self.now });
                    plane.stats.parked += 1;
                    self.in_flight += 1; // parked still counts as in flight
                    self.m.in_flight.set(self.in_flight);
                }
            }
            self.fault = Some(plane);
            return;
        }

        // 2. Channel-fault pipeline (draws only from the plane's stream).
        let mut duplicate = false;
        let mut extra_delay = None;
        if plane.active_rules > 0 {
            match plane.channel_effect(from, to) {
                Some(ChannelEffect::Drop) => {
                    self.stats.messages_lost += 1;
                    self.stats.messages_faulted += 1;
                    self.m.dropped.inc();
                    self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                    self.trace.record(
                        self.now,
                        TraceKind::Fault {
                            actor: from,
                            kind: FaultRecordKind::ChannelDrop,
                            detail: id,
                        },
                    );
                    plane.stats.dropped_by_channel += 1;
                    self.fault = Some(plane);
                    return;
                }
                // Not a match guard: corrupt() both decides and mutates,
                // and a failed guard would fall through to other arms.
                #[allow(clippy::collapsible_match)]
                Some(ChannelEffect::Corrupt) => {
                    if msg.corrupt(&mut plane.rng) {
                        plane.stats.corrupted += 1;
                        self.trace.record(
                            self.now,
                            TraceKind::Fault {
                                actor: from,
                                kind: FaultRecordKind::Corrupted,
                                detail: id,
                            },
                        );
                    }
                }
                Some(ChannelEffect::Duplicate) => duplicate = true,
                Some(ChannelEffect::Reorder { extra }) => extra_delay = Some(extra),
                None => {}
            }
        }

        // 3. The normal loss/delay/FIFO pipeline, identical to the plain
        // path (same net_rng draw order).
        if self.network.loss.is_lost(&mut self.net_rng) {
            self.stats.messages_lost += 1;
            self.m.dropped.inc();
            self.trace.record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
            self.fault = Some(plane);
            return;
        }
        let delay = self.network.delay.sample(&mut self.net_rng);
        let mut deliver_at = self.now + delay;
        if let Some(extra) = extra_delay {
            // Reorder: extra delay and no FIFO clamp (and no fifo_last
            // update), so later sends on this channel may overtake.
            deliver_at += extra;
            plane.stats.reordered += 1;
            self.trace.record(
                self.now,
                TraceKind::Fault { actor: from, kind: FaultRecordKind::Reordered, detail: id },
            );
        } else if self.network.fifo {
            let n = self.network.topology.len();
            if self.fifo_stride < n {
                self.grow_fifo(n);
            }
            let last = &mut self.fifo_last[from * self.fifo_stride + to];
            if deliver_at < *last {
                deliver_at = *last;
            }
            *last = deliver_at;
        }
        let copy = if duplicate { Some(msg.clone()) } else { None };
        self.queue
            .schedule(deliver_at, Pending::Deliver { from: from as u32, to: to as u32, msg, id });
        self.in_flight += 1;
        self.m.in_flight.set(self.in_flight);

        // 4. The duplicate copy: its own message id, its own delay (from
        // the plane's stream), no FIFO clamp.
        if let Some(copy) = copy {
            let dup_id = self.next_msg_id;
            self.next_msg_id += 1;
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.stats.messages_duplicated += 1;
            plane.stats.duplicated += 1;
            self.trace.record(self.now, TraceKind::Sent { from, to, bytes, msg: MsgId(dup_id) });
            self.trace.record(
                self.now,
                TraceKind::Fault { actor: from, kind: FaultRecordKind::Duplicated, detail: dup_id },
            );
            let dup_delay = self.network.delay.sample(&mut plane.rng);
            self.queue.schedule(
                self.now + dup_delay,
                Pending::Deliver { from: from as u32, to: to as u32, msg: copy, id: dup_id },
            );
            self.in_flight += 1;
            self.m.in_flight.set(self.in_flight);
        }
        self.fault = Some(plane);
    }

    /// Execute one expanded fault-plane operation (scheduled by
    /// [`Engine::install_faults`]).
    fn apply_fault(&mut self, idx: usize) {
        let mut plane = self.fault.take().expect("fault event implies a plane");
        let (_, op) = plane.ops[idx].clone();
        match op {
            PlaneOp::Crash { actor } => {
                if !plane.is_down(actor) {
                    plane.down[actor] = true;
                    plane.stats.crashes += 1;
                    self.trace.record(
                        self.now,
                        TraceKind::Fault { actor, kind: FaultRecordKind::Crash, detail: 0 },
                    );
                }
            }
            PlaneOp::Recover { actor } => {
                if plane.is_down(actor) {
                    plane.down[actor] = false;
                    plane.stats.recoveries += 1;
                    self.trace.record(
                        self.now,
                        TraceKind::Fault { actor, kind: FaultRecordKind::Recover, detail: 0 },
                    );
                    // Restore the plane before dispatching so everything
                    // the recovering actor sends goes through the fault
                    // pipeline again.
                    self.fault = Some(plane);
                    self.dispatch(actor, Dispatch::Fault { event: FaultEvent::Recover });
                    return;
                }
            }
            PlaneOp::Cut { idx } => {
                plane.cuts[idx].active = true;
                plane.active_cuts += 1;
                plane.stats.cuts += 1;
                let policy = plane.cuts[idx].policy;
                // Intercept in-flight messages crossing the new cut. The
                // closure only sees the plane (already taken out of self),
                // so the queue borrow is clean.
                let crossing = {
                    let plane_ref = &plane;
                    self.queue.drain_matching(|p| match p {
                        Pending::Deliver { from, to, .. } => {
                            plane_ref.cuts[idx].group.contains(&(*from as ActorId))
                                != plane_ref.cuts[idx].group.contains(&(*to as ActorId))
                        }
                        _ => false,
                    })
                };
                for (at, pending) in crossing {
                    let Pending::Deliver { from, to, msg, id } = pending else { unreachable!() };
                    let (from, to) = (from as ActorId, to as ActorId);
                    match policy {
                        CutPolicy::Drop => {
                            self.stats.messages_lost += 1;
                            self.stats.messages_faulted += 1;
                            self.m.dropped.inc();
                            self.in_flight = self.in_flight.saturating_sub(1);
                            self.trace
                                .record(self.now, TraceKind::Lost { from, to, msg: MsgId(id) });
                            plane.stats.dropped_in_flight += 1;
                        }
                        CutPolicy::Park => {
                            self.trace.record(
                                self.now,
                                TraceKind::Fault {
                                    actor: from,
                                    kind: FaultRecordKind::Parked,
                                    detail: id,
                                },
                            );
                            plane.parked.push(Parked { from, to, msg, id, deliver_at: at });
                            plane.stats.parked += 1;
                            // stays in flight
                        }
                    }
                }
                self.m.in_flight.set(self.in_flight);
                for i in 0..plane.cuts[idx].group.len() {
                    let actor = plane.cuts[idx].group[i];
                    self.trace.record(
                        self.now,
                        TraceKind::Fault {
                            actor,
                            kind: FaultRecordKind::PartitionCut,
                            detail: idx as u64,
                        },
                    );
                }
            }
            PlaneOp::Heal { idx } => {
                if plane.cuts[idx].active {
                    plane.cuts[idx].active = false;
                    plane.active_cuts -= 1;
                    plane.stats.heals += 1;
                    // Release parked messages no active cut still blocks,
                    // in original delivery order, at/after heal time.
                    let parked = std::mem::take(&mut plane.parked);
                    for p in parked {
                        if plane.blocked(p.from, p.to) {
                            plane.parked.push(p);
                        } else {
                            let at = if p.deliver_at > self.now { p.deliver_at } else { self.now };
                            self.trace.record(
                                self.now,
                                TraceKind::Fault {
                                    actor: p.from,
                                    kind: FaultRecordKind::Unparked,
                                    detail: p.id,
                                },
                            );
                            self.queue.schedule(
                                at,
                                Pending::Deliver {
                                    from: p.from as u32,
                                    to: p.to as u32,
                                    msg: p.msg,
                                    id: p.id,
                                },
                            );
                            plane.stats.unparked += 1;
                        }
                    }
                    for i in 0..plane.cuts[idx].group.len() {
                        let actor = plane.cuts[idx].group[i];
                        self.trace.record(
                            self.now,
                            TraceKind::Fault {
                                actor,
                                kind: FaultRecordKind::PartitionHeal,
                                detail: idx as u64,
                            },
                        );
                    }
                }
            }
            PlaneOp::ChannelOn { idx } => {
                if !plane.rules[idx].active {
                    plane.rules[idx].active = true;
                    plane.active_rules += 1;
                }
            }
            PlaneOp::ChannelOff { idx } => {
                if plane.rules[idx].active {
                    plane.rules[idx].active = false;
                    plane.active_rules -= 1;
                }
            }
            PlaneOp::Clock { actor, kind } => {
                plane.stats.clock_faults += 1;
                self.trace.record(
                    self.now,
                    TraceKind::Fault {
                        actor,
                        kind: FaultRecordKind::ClockFault,
                        detail: kind.code(),
                    },
                );
                if !plane.is_down(actor) {
                    self.fault = Some(plane);
                    self.dispatch(actor, Dispatch::Fault { event: FaultEvent::Clock(kind) });
                    return;
                }
            }
        }
        self.fault = Some(plane);
    }

    /// Resize the FIFO matrix to stride `n`, remapping existing channel
    /// entries. Runs at most once per topology size change.
    #[cold]
    fn grow_fifo(&mut self, n: usize) {
        let mut grown = vec![SimTime::ZERO; n * n];
        for f in 0..self.fifo_stride {
            for t in 0..self.fifo_stride {
                grown[f * n + t] = self.fifo_last[f * self.fifo_stride + t];
            }
        }
        self.fifo_last = grown;
        self.fifo_stride = n;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total events dispatched.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Mutable access to the network configuration (e.g. to flip overlay
    /// links between runs).
    pub fn network_mut(&mut self) -> &mut NetworkConfig {
        &mut self.network
    }

    /// Recover an actor after the run to read its final state.
    ///
    /// Panics if `id` is out of range or the actor was already taken.
    pub fn take_actor(&mut self, id: ActorId) -> Box<dyn Actor<M>> {
        self.actors[id].take().expect("actor present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::loss::LossModel;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TestMsg {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    /// Sends `Ping(k)` to its peer on start and on each pong, up to `max`.
    struct PingPong {
        peer: ActorId,
        max: u32,
        log: Vec<(SimTime, TestMsg)>,
        initiator: bool,
    }
    impl Actor<TestMsg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.initiator {
                ctx.send(self.peer, TestMsg::Ping(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            assert_eq!(from, self.peer);
            self.log.push((ctx.now(), msg.clone()));
            match msg {
                TestMsg::Ping(k) => ctx.send(self.peer, TestMsg::Pong(k)),
                TestMsg::Pong(k) if k + 1 < self.max => ctx.send(self.peer, TestMsg::Ping(k + 1)),
                TestMsg::Pong(_) => ctx.halt(),
            }
        }
    }

    fn ping_pong_engine(delay: DelayModel) -> Engine<TestMsg> {
        let net = NetworkConfig::full_mesh(2, delay);
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(PingPong { peer: 1, max: 5, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 5, log: vec![], initiator: false }));
        e
    }

    #[test]
    fn ping_pong_completes() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end = e.run();
        // 5 pings + 5 pongs, each 10ms: last delivery at 100ms.
        assert_eq!(end, SimTime::from_millis(100));
        assert_eq!(e.stats().messages_sent, 10);
        assert_eq!(e.stats().messages_delivered, 10);
        assert_eq!(e.stats().bytes_sent, 40);
    }

    #[test]
    fn synchronous_delivery_is_same_instant() {
        let mut e = ping_pong_engine(DelayModel::Synchronous);
        let end = e.run();
        assert_eq!(end, SimTime::ZERO, "everything happens at t=0 under Δ=0");
        assert_eq!(e.stats().messages_delivered, 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(50)));
            let mut e = Engine::new(net, seed);
            e.add_actor(Box::new(PingPong { peer: 1, max: 20, log: vec![], initiator: true }));
            e.add_actor(Box::new(PingPong { peer: 0, max: 20, log: vec![], initiator: false }));
            let end = e.run();
            (end, e.stats().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds give different delays");
    }

    #[test]
    fn loss_drops_messages() {
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        assert_eq!(e.stats().messages_sent, 1);
        assert_eq!(e.stats().messages_lost, 1);
        assert_eq!(e.stats().messages_delivered, 0);
    }

    #[test]
    fn end_time_stops_run() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        e.set_end_time(SimTime::from_millis(35));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(35));
        assert!(e.stats().messages_delivered < 10);
    }

    /// Broadcast actor: broadcasts once on start; all receivers log.
    struct Beacon {
        fire: bool,
        received: u32,
    }
    impl Actor<TestMsg> for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            if self.fire {
                ctx.broadcast(TestMsg::Ping(99));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            self.received += 1;
        }
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let net = NetworkConfig::full_mesh(5, DelayModel::Synchronous);
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        for _ in 1..5 {
            e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        }
        e.run();
        assert_eq!(e.stats().broadcasts, 1);
        assert_eq!(e.stats().messages_sent, 4);
        assert_eq!(e.stats().messages_delivered, 4);
    }

    #[test]
    fn topology_blocks_unconnected_sends() {
        let net = NetworkConfig {
            topology: crate::network::Topology::star(3),
            delay: DelayModel::Synchronous,
            loss: LossModel::None,
            fifo: true,
        };
        let mut e = Engine::new(net, 3);
        // Actor 1 and 2 are both leaves: 1 -> 2 has no link.
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: true, received: 0 }));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        e.run();
        // Broadcast from 1 only reaches the hub 0.
        assert_eq!(e.stats().messages_sent, 1);
    }

    /// Timer actor: schedules a chain of timers.
    struct Ticker {
        fired: Vec<(SimTime, u64)>,
        period: SimDuration,
        remaining: u64,
    }
    impl Actor<TestMsg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
            self.fired.push((ctx.now(), tag));
            if tag + 1 < self.remaining {
                ctx.set_timer(self.period, tag + 1);
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 9);
        e.add_actor(Box::new(Ticker {
            fired: vec![],
            period: SimDuration::from_millis(100),
            remaining: 4,
        }));
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(400));
        let t = e.take_actor(0);
        // Downcast via raw pointer is overkill; instead verify through time.
        drop(t);
        assert_eq!(e.events_processed(), 4);
    }

    #[test]
    fn fifo_prevents_overtaking() {
        // With a wildly variable delay and FIFO on, deliveries from one
        // sender to one receiver must be in send order.
        struct Spray {
            sent: bool,
        }
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                if !self.sent {
                    for k in 0..50 {
                        ctx.send(1, TestMsg::Ping(k));
                    }
                    self.sent = true;
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        // We cannot easily extract state from Box<dyn Actor>, so assert
        // ordering via a shared log.
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }

        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)));
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray { sent: false }));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "FIFO must preserve order");
    }

    #[test]
    fn non_fifo_allows_overtaking() {
        struct Spray;
        impl Actor<TestMsg> for Spray {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                for k in 0..200 {
                    ctx.send(1, TestMsg::Ping(k));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        }
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<u32>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push(k);
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(500)))
            .with_fifo(false);
        let mut e = Engine::new(net, 11);
        e.add_actor(Box::new(Spray));
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 200);
        let sorted: Vec<u32> = {
            let mut s = got.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(got, sorted, "with random delays some message should overtake");
    }

    #[test]
    fn inject_delivers_external_events() {
        use std::sync::{Arc, Mutex};
        struct SharedCollector {
            got: Arc<Mutex<Vec<(SimTime, u32)>>>,
        }
        impl Actor<TestMsg> for SharedCollector {
            fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
                if let TestMsg::Ping(k) = msg {
                    self.got.lock().unwrap().push((ctx.now(), k));
                }
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 0);
        e.add_actor(Box::new(SharedCollector { got: Arc::clone(&got) }));
        e.inject(SimTime::from_millis(5), 0, 0, TestMsg::Ping(1));
        e.inject(SimTime::from_millis(2), 0, 0, TestMsg::Ping(2));
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(*got, vec![(SimTime::from_millis(2), 2), (SimTime::from_millis(5), 1)]);
    }

    #[test]
    fn metrics_observe_the_run_without_changing_it() {
        let m = crate::metrics::Metrics::new();
        let mut instrumented = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        instrumented.set_metrics(&m);
        let end_i = instrumented.run();
        let mut plain = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(10)));
        let end_p = plain.run();
        assert_eq!(end_i, end_p, "metrics must not perturb the run");
        assert_eq!(instrumented.stats().clone(), plain.stats().clone());
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_delivered"), Some(10));
        assert_eq!(snap.counter("engine.events_processed"), Some(instrumented.events_processed()));
        let (in_flight_now, in_flight_high) = snap.gauge("engine.in_flight").unwrap();
        assert_eq!(in_flight_now, 0, "queue drained");
        assert!(in_flight_high >= 1, "ping-pong always has one message in flight");
        assert_eq!(snap.timer("engine.run_wall_ns").unwrap().count, 1);
    }

    #[test]
    fn metrics_count_dropped_messages() {
        let m = crate::metrics::Metrics::new();
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous)
            .with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut e = Engine::new(net, 1);
        e.set_metrics(&m);
        e.add_actor(Box::new(PingPong { peer: 1, max: 1, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 1, log: vec![], initiator: false }));
        e.run();
        let snap = m.snapshot();
        assert_eq!(snap.counter("engine.messages_dropped"), Some(1));
        assert_eq!(snap.counter("engine.messages_delivered"), Some(0));
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut e = ping_pong_engine(DelayModel::Fixed(SimDuration::from_millis(1)));
        e.enable_trace();
        e.run();
        assert!(e.trace().len() >= 20, "sent + delivered for each message");
        let sent = e.trace().count_matching(|k| matches!(k, TraceKind::Sent { .. }));
        let delivered = e.trace().count_matching(|k| matches!(k, TraceKind::Delivered { .. }));
        assert_eq!(sent, 10);
        assert_eq!(delivered, 10);
    }

    // ---- fault plane -----------------------------------------------------

    use crate::fault::{ChannelFaultRule, ClockFaultKind, FaultSpec};

    impl TestMsg {
        fn value(&self) -> u32 {
            match self {
                TestMsg::Ping(k) | TestMsg::Pong(k) => *k,
            }
        }
    }

    /// Sends `count` pings to `to` after 5 ms (past any t=0 fault ops).
    struct DelayedSpray {
        to: ActorId,
        count: u32,
    }
    impl Actor<TestMsg> for DelayedSpray {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(SimDuration::from_millis(5), 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, _tag: u64) {
            for k in 0..self.count {
                ctx.send(self.to, TestMsg::Ping(k));
            }
        }
    }

    use std::sync::{Arc, Mutex};
    type Shared<T> = Arc<Mutex<Vec<T>>>;
    struct Collector {
        got: Shared<(SimTime, u32)>,
        faults: Shared<FaultEvent>,
    }
    impl Collector {
        fn pair() -> (Self, Shared<(SimTime, u32)>, Shared<FaultEvent>) {
            let got = Arc::new(Mutex::new(Vec::new()));
            let faults = Arc::new(Mutex::new(Vec::new()));
            (Collector { got: Arc::clone(&got), faults: Arc::clone(&faults) }, got, faults)
        }
    }
    impl Actor<TestMsg> for Collector {
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, _: ActorId, msg: TestMsg) {
            self.got.lock().unwrap().push((ctx.now(), msg.value()));
        }
        fn on_fault(&mut self, _ctx: &mut Context<'_, TestMsg>, event: &FaultEvent) {
            self.faults.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn crash_drops_deliveries_and_suppresses_timers() {
        // Ping at t=0 delivers at 10 ms, but actor 1 crashes at 5 ms.
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(10)));
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(PingPong { peer: 1, max: 5, log: vec![], initiator: true }));
        e.add_actor(Box::new(PingPong { peer: 0, max: 5, log: vec![], initiator: false }));
        let script = FaultScript::new()
            .with(SimTime::from_millis(5), FaultSpec::Crash { actor: 1, recover_after: None });
        e.install_faults(&script);
        e.run();
        assert_eq!(e.stats().messages_delivered, 0);
        assert_eq!(e.stats().messages_lost, 1);
        assert_eq!(e.stats().messages_faulted, 1);
        let fs = e.fault_stats().unwrap();
        assert_eq!(fs.crashes, 1);
        assert_eq!(fs.recoveries, 0);
        assert_eq!(fs.dropped_at_down, 1);

        // A crashed Ticker's pending timer is swallowed, ending the chain.
        let net = NetworkConfig::full_mesh(1, DelayModel::Synchronous);
        let mut e = Engine::new(net, 42);
        e.add_actor(Box::new(Ticker {
            fired: vec![],
            period: SimDuration::from_millis(100),
            remaining: 4,
        }));
        let script = FaultScript::new()
            .with(SimTime::from_millis(150), FaultSpec::Crash { actor: 0, recover_after: None });
        e.install_faults(&script);
        let end = e.run();
        assert_eq!(end, SimTime::from_millis(200), "timer 2 is swallowed at 200 ms");
        assert_eq!(e.fault_stats().unwrap().timers_suppressed, 1);
    }

    #[test]
    fn recover_dispatches_on_fault() {
        let (collector, _got, faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous);
        let mut e = Engine::new(net, 7);
        e.add_actor(Box::new(collector));
        e.add_actor(Box::new(Beacon { fire: false, received: 0 }));
        let script = FaultScript::new()
            .with(
                SimTime::from_millis(10),
                FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_millis(20)) },
            )
            .with(
                SimTime::from_millis(50),
                FaultSpec::Clock { actor: 0, kind: ClockFaultKind::Reset },
            );
        e.install_faults(&script);
        e.run();
        let faults = faults.lock().unwrap().clone();
        assert_eq!(faults, vec![FaultEvent::Recover, FaultEvent::Clock(ClockFaultKind::Reset)]);
        let fs = e.fault_stats().unwrap();
        assert_eq!((fs.crashes, fs.recoveries, fs.clock_faults), (1, 1, 1));
    }

    #[test]
    fn partition_cut_drops_in_flight_and_blocks_sends() {
        // Pings sent at 5 ms (in flight until 50 ms) plus more at 20 ms;
        // a Drop-policy cut at 10 ms isolates the receiver for 1 s.
        struct TwoWaves {
            to: ActorId,
        }
        impl Actor<TestMsg> for TwoWaves {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                ctx.set_timer(SimDuration::from_millis(5), 0);
                ctx.set_timer(SimDuration::from_millis(20), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: ActorId, _: TestMsg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, tag: u64) {
                for k in 0..3 {
                    ctx.send(self.to, TestMsg::Ping(tag as u32 * 10 + k));
                }
            }
        }
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(45)));
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(TwoWaves { to: 1 }));
        e.add_actor(Box::new(collector));
        let script = FaultScript::new().with(
            SimTime::from_millis(10),
            FaultSpec::Partition {
                group: vec![1],
                heal_after: SimDuration::from_secs(1),
                policy: CutPolicy::Drop,
            },
        );
        e.install_faults(&script);
        e.run();
        assert!(got.lock().unwrap().is_empty(), "no wave crosses the cut");
        let fs = e.fault_stats().unwrap();
        assert_eq!(fs.dropped_in_flight, 3, "wave 0 was in flight at cut time");
        assert_eq!(fs.dropped_by_partition, 3, "wave 1 was blocked at transmit");
        assert_eq!((fs.cuts, fs.heals), (1, 1));
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn partition_park_releases_messages_at_heal() {
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(45)));
        let mut e = Engine::new(net, 3);
        e.add_actor(Box::new(DelayedSpray { to: 1, count: 4 }));
        e.add_actor(Box::new(collector));
        // Cut at 10 ms (wave in flight since 5 ms), heal at 110 ms.
        let script = FaultScript::new().with(
            SimTime::from_millis(10),
            FaultSpec::Partition {
                group: vec![1],
                heal_after: SimDuration::from_millis(100),
                policy: CutPolicy::Park,
            },
        );
        e.install_faults(&script);
        e.run();
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 4, "parked messages are delivered after heal");
        assert!(got.iter().all(|&(at, _)| at == SimTime::from_millis(110)));
        assert_eq!(got.iter().map(|&(_, k)| k).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let fs = e.fault_stats().unwrap();
        assert_eq!((fs.parked, fs.unparked, fs.parked_leftover), (4, 4, 0));
        assert_eq!(e.stats().messages_delivered, 4);
        assert_eq!(e.stats().messages_lost, 0);
    }

    #[test]
    fn channel_rules_duplicate_and_drop() {
        let run = |effect: ChannelEffect| {
            let (collector, got, _faults) = Collector::pair();
            let net = NetworkConfig::full_mesh(2, DelayModel::Synchronous);
            let mut e = Engine::new(net, 5);
            e.add_actor(Box::new(DelayedSpray { to: 1, count: 10 }));
            e.add_actor(Box::new(collector));
            let script = FaultScript::new().with(
                SimTime::ZERO,
                FaultSpec::Channel(ChannelFaultRule {
                    from: Some(0),
                    to: None,
                    prob: 1.0,
                    effect,
                    duration: None,
                }),
            );
            e.install_faults(&script);
            e.run();
            let n = got.lock().unwrap().len();
            (n, e.stats().clone(), e.fault_stats().unwrap())
        };
        let (n, stats, fs) = run(ChannelEffect::Duplicate);
        assert_eq!(n, 20, "every message is delivered twice");
        assert_eq!(stats.messages_sent, 20);
        assert_eq!(stats.messages_duplicated, 10);
        assert_eq!(fs.duplicated, 10);
        let (n, stats, fs) = run(ChannelEffect::Drop);
        assert_eq!(n, 0);
        assert_eq!(stats.messages_lost, 10);
        assert_eq!(stats.messages_faulted, 10);
        assert_eq!(fs.dropped_by_channel, 10);
    }

    #[test]
    fn reorder_rule_lets_messages_overtake() {
        let (collector, got, _faults) = Collector::pair();
        let net = NetworkConfig::full_mesh(2, DelayModel::Fixed(SimDuration::from_millis(10)));
        let mut e = Engine::new(net, 17);
        e.add_actor(Box::new(DelayedSpray { to: 1, count: 20 }));
        e.add_actor(Box::new(collector));
        let script = FaultScript::new().with(
            SimTime::ZERO,
            FaultSpec::Channel(ChannelFaultRule {
                from: Some(0),
                to: Some(1),
                prob: 0.5,
                effect: ChannelEffect::Reorder { extra: SimDuration::from_millis(100) },
                duration: None,
            }),
        );
        e.install_faults(&script);
        e.run();
        let got: Vec<u32> = got.lock().unwrap().iter().map(|&(_, k)| k).collect();
        assert_eq!(got.len(), 20, "reordering never loses messages");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "delayed messages are overtaken despite FIFO");
        let fs = e.fault_stats().unwrap();
        assert!(fs.reordered > 0 && fs.reordered < 20);
    }

    #[test]
    fn empty_script_is_bit_identical_to_no_plane() {
        let run = |install: bool| {
            let mut e = ping_pong_engine(DelayModel::delta(SimDuration::from_millis(25)));
            e.enable_trace();
            if install {
                e.install_faults(&FaultScript::new());
            }
            let end = e.run();
            (end, e.stats().clone(), crate::trace_export::jsonl(e.trace()))
        };
        let (end_plain, stats_plain, trace_plain) = run(false);
        let (end_fault, stats_fault, trace_fault) = run(true);
        assert_eq!(end_plain, end_fault);
        assert_eq!(stats_plain, stats_fault);
        assert_eq!(trace_plain, trace_fault, "empty plane must be observationally silent");
    }
}
