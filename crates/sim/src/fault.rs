//! The fault plane: deterministic, seeded fault injection.
//!
//! A [`FaultScript`] schedules faults against a running execution — process
//! **crash/recover**, **network partitions** (node-set cuts with a heal
//! time), **channel faults** (probabilistic drop / duplication / reordering
//! / payload corruption, generalizing [`crate::loss::LossModel`]), and
//! **clock faults** (drift spikes, resets, freezes, de-/re-sync) delivered
//! to the owning actor. The engine installs a script with
//! [`crate::engine::Engine::install_faults`]; everything the plane does is
//! driven by the script plus private per-sender [`RngStream`]s, so a faulty
//! run is exactly as replayable as a fault-free one: same script + same
//! seed ⇒ byte-identical trace.
//!
//! Determinism contract (enforced by `tests/determinism.rs`):
//!
//! - **Faults-off is observational.** An installed but *empty* script takes
//!   the same branches, draws the same random numbers from the same
//!   streams, and assigns the same message ids as a run with no plane
//!   installed at all — bit-identical traces.
//! - **The plane never touches the network RNGs.** All fault randomness
//!   (channel-fault coin flips, duplicate delays, corruption payloads)
//!   comes from the plane's own per-sender streams, derived from the master
//!   seed under the labels `"engine.faults.<sender>"`. One stream per
//!   sender (rather than one global plane stream) keeps the draw sequence a
//!   function of each sender's own message history, which is what lets the
//!   sharded engine reproduce a sequential run bit for bit.
//!
//! Fault events are recorded in the structured trace as
//! [`crate::trace::TraceKind::Fault`] records and surface in Perfetto
//! exports as instant events.

use serde::{Deserialize, Serialize};

use crate::network::ActorId;
use crate::rng::{RngFactory, RngStream};
use crate::time::{SimDuration, SimTime};
pub use crate::trace::FaultRecordKind;

/// What happens to messages already in flight across a partition cut (and
/// to messages sent across it while the cut is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutPolicy {
    /// Messages crossing the cut are dropped (recorded as lost).
    Drop,
    /// Messages crossing the cut are parked in the plane and released, in
    /// their original delivery order, when the partition heals.
    Park,
}

/// A fault applied to one process's clock hardware, delivered through
/// [`crate::engine::Actor::on_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClockFaultKind {
    /// Add `add_ppm` to the free-running oscillator's drift rate.
    DriftSpike {
        /// Extra drift, parts per million (positive runs faster).
        add_ppm: f64,
    },
    /// The oscillator reboots and restarts counting from zero.
    Reset,
    /// Physical readings stop advancing (battery brown-out).
    Freeze,
    /// Readings step forward to real time again.
    Unfreeze,
    /// The ε-synchronized clock falls out of the sync service (its error is
    /// no longer bounded by ε).
    Desync,
    /// The sync service re-admits the clock (error back within ±ε/2).
    Resync,
}

impl ClockFaultKind {
    /// A stable small integer for trace `detail` fields.
    pub fn code(self) -> u64 {
        match self {
            ClockFaultKind::DriftSpike { .. } => 0,
            ClockFaultKind::Reset => 1,
            ClockFaultKind::Freeze => 2,
            ClockFaultKind::Unfreeze => 3,
            ClockFaultKind::Desync => 4,
            ClockFaultKind::Resync => 5,
        }
    }
}

/// What a matching [`ChannelFaultRule`] does to a message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelEffect {
    /// Drop the message (recorded as lost).
    Drop,
    /// Deliver the message *and* a duplicate copy with its own message id
    /// and an independently sampled delay.
    Duplicate,
    /// Add `extra` delay and bypass the FIFO clamp, so later messages on
    /// the same channel may overtake this one.
    Reorder {
        /// Extra delay added on top of the sampled network delay.
        extra: SimDuration,
    },
    /// Mutate the payload in flight via [`crate::engine::Message::corrupt`]
    /// (integrity checksums, if any, are left stale).
    Corrupt,
}

/// A probabilistic per-message fault on matching channels, active from its
/// scripted time for `duration` (or forever when `None`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelFaultRule {
    /// Only messages from this sender (any sender when `None`).
    pub from: Option<ActorId>,
    /// Only messages to this receiver (any receiver when `None`).
    pub to: Option<ActorId>,
    /// Per-message probability the effect applies.
    pub prob: f64,
    /// What happens to an affected message.
    pub effect: ChannelEffect,
    /// How long the rule stays active (`None` = until the run ends).
    pub duration: Option<SimDuration>,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// The process stops: deliveries and timers to it are discarded while
    /// down. With `recover_after` it later restarts (crash-recover,
    /// [`crate::engine::Actor::on_fault`] fires with
    /// [`FaultEvent::Recover`]); without, it is crash-stop.
    Crash {
        /// The crashing actor.
        actor: ActorId,
        /// Downtime before recovery (`None` = crash-stop).
        recover_after: Option<SimDuration>,
    },
    /// `group` is cut off from the rest of the system; messages crossing
    /// the cut (including those already in flight) follow `policy`.
    Partition {
        /// The isolated node set.
        group: Vec<ActorId>,
        /// How long until the cut heals.
        heal_after: SimDuration,
        /// In-flight / crossing-message handling.
        policy: CutPolicy,
    },
    /// Install a probabilistic channel fault.
    Channel(ChannelFaultRule),
    /// Fault one process's clock hardware.
    Clock {
        /// The affected actor.
        actor: ActorId,
        /// What happens to its clocks.
        kind: ClockFaultKind,
    },
}

/// A scheduled fault: `spec` takes effect at ground-truth time `at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// When the fault takes effect.
    pub at: SimTime,
    /// The fault.
    pub spec: FaultSpec,
}

/// A serializable fault schedule. Build one explicitly with
/// [`FaultScript::with`] or generate one from a seed with
/// [`FaultScript::generate`]; either way the resulting run is a pure
/// function of `(script, seed)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultScript {
    /// The scheduled faults (need not be sorted; ties resolve in list
    /// order).
    pub faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// An empty script (installing it is observationally a no-op).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Append a fault (builder style).
    pub fn with(mut self, at: SimTime, spec: FaultSpec) -> Self {
        self.faults.push(ScriptedFault { at, spec });
        self
    }

    /// True if the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generate a randomized script from `seed`. The generator draws from
    /// its own stream (label `"fault.script"`), so the same `(cfg, seed)`
    /// always yields the same script — chaos runs replay byte-for-byte.
    pub fn generate(cfg: &ChaosConfig, seed: u64) -> Self {
        let mut rng = RngFactory::new(seed).labeled_stream("fault.script");
        let mut script = FaultScript::new();
        let horizon = cfg.horizon.as_nanos().max(1);
        // Faults land in the middle 3/4 of the horizon so start-up and
        // wind-down stay clean.
        let when = |rng: &mut RngStream| {
            SimTime::from_nanos(rng.uniform_u64(horizon / 8, horizon.saturating_mul(7) / 8))
        };
        if cfg.actors.is_empty() {
            return script;
        }
        for _ in 0..cfg.crashes {
            let actor = *rng.choose(&cfg.actors);
            let at = when(&mut rng);
            let recover_after = if rng.bernoulli(0.85) {
                Some(SimDuration::from_nanos(rng.uniform_u64(horizon / 40, horizon / 8)))
            } else {
                None // crash-stop
            };
            script
                .faults
                .push(ScriptedFault { at, spec: FaultSpec::Crash { actor, recover_after } });
        }
        for _ in 0..cfg.partitions {
            let mut pool = cfg.actors.clone();
            rng.shuffle(&mut pool);
            let k = 1 + rng.index(pool.len().div_ceil(2));
            pool.truncate(k);
            let at = when(&mut rng);
            let heal_after = SimDuration::from_nanos(rng.uniform_u64(horizon / 40, horizon / 6));
            let policy =
                if cfg.park && rng.bernoulli(0.5) { CutPolicy::Park } else { CutPolicy::Drop };
            script.faults.push(ScriptedFault {
                at,
                spec: FaultSpec::Partition { group: pool, heal_after, policy },
            });
        }
        for _ in 0..cfg.channel_rules {
            let from = if rng.bernoulli(0.5) { Some(*rng.choose(&cfg.actors)) } else { None };
            let effect = match rng.index(if cfg.corruption { 4 } else { 3 }) {
                0 => ChannelEffect::Drop,
                1 => ChannelEffect::Duplicate,
                2 => ChannelEffect::Reorder {
                    extra: SimDuration::from_nanos(rng.uniform_u64(horizon / 100, horizon / 20)),
                },
                _ => ChannelEffect::Corrupt,
            };
            let rule = ChannelFaultRule {
                from,
                to: None,
                prob: rng.uniform_f64(0.05, 0.4),
                effect,
                duration: Some(SimDuration::from_nanos(rng.uniform_u64(horizon / 20, horizon / 4))),
            };
            let at = when(&mut rng);
            script.faults.push(ScriptedFault { at, spec: FaultSpec::Channel(rule) });
        }
        for _ in 0..cfg.clock_faults {
            let actor = *rng.choose(&cfg.actors);
            let at = when(&mut rng);
            let kind = match rng.index(5) {
                0 => ClockFaultKind::DriftSpike { add_ppm: rng.uniform_f64(200.0, 2000.0) },
                1 => ClockFaultKind::Reset,
                2 => ClockFaultKind::Freeze,
                3 => ClockFaultKind::Desync,
                _ => ClockFaultKind::Resync,
            };
            script.faults.push(ScriptedFault { at, spec: FaultSpec::Clock { actor, kind } });
            if matches!(kind, ClockFaultKind::Freeze) {
                // Pair every freeze with a later thaw so chaos runs don't
                // leave clocks stopped forever.
                let thaw =
                    at + SimDuration::from_nanos(rng.uniform_u64(horizon / 40, horizon / 10));
                script.faults.push(ScriptedFault {
                    at: thaw,
                    spec: FaultSpec::Clock { actor, kind: ClockFaultKind::Unfreeze },
                });
            }
        }
        script.faults.sort_by_key(|f| f.at);
        script
    }
}

/// Knobs for [`FaultScript::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Candidate actors for crashes and clock faults (typically the
    /// sensors, excluding the root).
    pub actors: Vec<ActorId>,
    /// Faults are scheduled inside `(horizon/8, 7·horizon/8)`.
    pub horizon: SimTime,
    /// Number of crash faults to draw.
    pub crashes: usize,
    /// Number of partition cuts to draw.
    pub partitions: usize,
    /// Number of channel-fault rules to draw.
    pub channel_rules: usize,
    /// Number of clock faults to draw.
    pub clock_faults: usize,
    /// Allow [`ChannelEffect::Corrupt`] among the drawn effects.
    pub corruption: bool,
    /// Allow [`CutPolicy::Park`] for partitions.
    pub park: bool,
}

impl ChaosConfig {
    /// A moderate default mix over `actors` within `horizon`.
    pub fn new(actors: Vec<ActorId>, horizon: SimTime) -> Self {
        ChaosConfig {
            actors,
            horizon,
            crashes: 2,
            partitions: 1,
            channel_rules: 2,
            clock_faults: 2,
            corruption: true,
            park: true,
        }
    }
}

/// A fault delivered to an actor through
/// [`crate::engine::Actor::on_fault`]. Crash-stop itself is silent (a dead
/// process cannot observe its own death); `Recover` fires when a
/// crash-recover process restarts, `Clock` when its hardware is faulted.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The process has crashed (not currently delivered — reserved).
    Crash,
    /// The process restarts after a crash: rebuild volatile state, replay
    /// the durable log, re-prime clocks, re-arm timers.
    Recover,
    /// A clock fault hit this process's hardware.
    Clock(ClockFaultKind),
}

/// Counters the plane accumulates; exposed through
/// [`crate::engine::Engine::fault_stats`] and asserted by the chaos soak.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct FaultStats {
    pub crashes: u64,
    pub recoveries: u64,
    pub cuts: u64,
    pub heals: u64,
    pub clock_faults: u64,
    /// Deliveries discarded because the destination was down.
    pub dropped_at_down: u64,
    /// Timers discarded because the owner was down.
    pub timers_suppressed: u64,
    /// Messages dropped at transmit time by an active cut.
    pub dropped_by_partition: u64,
    /// In-flight messages dropped when a cut activated.
    pub dropped_in_flight: u64,
    /// Messages dropped by a [`ChannelEffect::Drop`] rule.
    pub dropped_by_channel: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub parked: u64,
    pub unparked: u64,
    /// Messages still parked when the run ended (counted as in-flight).
    pub parked_leftover: u64,
}

impl FaultStats {
    /// Add every counter of `other` into `self` (used to merge per-shard
    /// transmit-side counters into the plane's op-side counters).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.cuts += other.cuts;
        self.heals += other.heals;
        self.clock_faults += other.clock_faults;
        self.dropped_at_down += other.dropped_at_down;
        self.timers_suppressed += other.timers_suppressed;
        self.dropped_by_partition += other.dropped_by_partition;
        self.dropped_in_flight += other.dropped_in_flight;
        self.dropped_by_channel += other.dropped_by_channel;
        self.corrupted += other.corrupted;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.parked += other.parked;
        self.unparked += other.unparked;
        self.parked_leftover += other.parked_leftover;
    }
}

/// One internal plane operation, expanded from the script at install time
/// and scheduled on the engine's event queue.
#[derive(Debug, Clone)]
pub(crate) enum PlaneOp {
    Crash { actor: ActorId },
    Recover { actor: ActorId },
    Cut { idx: usize },
    Heal { idx: usize },
    ChannelOn { idx: usize },
    ChannelOff { idx: usize },
    Clock { actor: ActorId, kind: ClockFaultKind },
}

#[derive(Debug, Clone)]
pub(crate) struct CutState {
    pub(crate) group: Vec<ActorId>,
    pub(crate) policy: CutPolicy,
    pub(crate) active: bool,
}

impl CutState {
    fn separates(&self, from: ActorId, to: ActorId) -> bool {
        self.active && (self.group.contains(&from) != self.group.contains(&to))
    }
}

#[derive(Debug, Clone)]
pub(crate) struct RuleState {
    pub(crate) rule: ChannelFaultRule,
    pub(crate) active: bool,
}

impl RuleState {
    fn matches(&self, from: ActorId, to: ActorId) -> bool {
        self.active
            && self.rule.from.is_none_or(|f| f == from)
            && self.rule.to.is_none_or(|t| t == to)
    }
}

/// A message parked by a [`CutPolicy::Park`] partition, waiting for heal.
#[derive(Debug)]
pub(crate) struct Parked<M> {
    pub(crate) from: ActorId,
    pub(crate) to: ActorId,
    pub(crate) msg: M,
    pub(crate) id: u64,
    /// The delivery time the message had (or would have had) before the
    /// cut; release preserves this order.
    pub(crate) deliver_at: SimTime,
}

/// The runtime state of an installed [`FaultScript`]. Owned by the engine;
/// not constructed directly.
#[derive(Debug)]
pub struct FaultPlane<M> {
    pub(crate) ops: Vec<(SimTime, PlaneOp)>,
    pub(crate) cuts: Vec<CutState>,
    pub(crate) active_cuts: usize,
    pub(crate) rules: Vec<RuleState>,
    pub(crate) active_rules: usize,
    pub(crate) down: Vec<bool>,
    pub(crate) parked: Vec<Parked<M>>,
    pub(crate) stats: FaultStats,
}

impl<M> FaultPlane<M> {
    /// Expand `script` into scheduled plane operations. `n_actors` sizes
    /// the down-mask (grown further if the script names higher ids).
    pub(crate) fn new(script: &FaultScript, n_actors: usize) -> Self {
        let mut ops: Vec<(SimTime, PlaneOp)> = Vec::new();
        let mut cuts = Vec::new();
        let mut rules = Vec::new();
        let mut max_actor = n_actors;
        for f in &script.faults {
            match &f.spec {
                FaultSpec::Crash { actor, recover_after } => {
                    max_actor = max_actor.max(actor + 1);
                    ops.push((f.at, PlaneOp::Crash { actor: *actor }));
                    if let Some(d) = recover_after {
                        ops.push((f.at + *d, PlaneOp::Recover { actor: *actor }));
                    }
                }
                FaultSpec::Partition { group, heal_after, policy } => {
                    let idx = cuts.len();
                    cuts.push(CutState { group: group.clone(), policy: *policy, active: false });
                    ops.push((f.at, PlaneOp::Cut { idx }));
                    ops.push((f.at + *heal_after, PlaneOp::Heal { idx }));
                }
                FaultSpec::Channel(rule) => {
                    let idx = rules.len();
                    rules.push(RuleState { rule: rule.clone(), active: false });
                    ops.push((f.at, PlaneOp::ChannelOn { idx }));
                    if let Some(d) = rule.duration {
                        ops.push((f.at + d, PlaneOp::ChannelOff { idx }));
                    }
                }
                FaultSpec::Clock { actor, kind } => {
                    max_actor = max_actor.max(actor + 1);
                    ops.push((f.at, PlaneOp::Clock { actor: *actor, kind: *kind }));
                }
            }
        }
        // Stable sort: simultaneous operations apply in script order.
        ops.sort_by_key(|(at, _)| *at);
        FaultPlane {
            ops,
            cuts,
            active_cuts: 0,
            rules,
            active_rules: 0,
            down: vec![false; max_actor],
            parked: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Is the channel `from → to` severed by any active cut?
    pub(crate) fn blocked(&self, from: ActorId, to: ActorId) -> bool {
        self.cuts.iter().any(|c| c.separates(from, to))
    }

    /// The policy of the first active cut severing `from → to`.
    pub(crate) fn cut_policy(&self, from: ActorId, to: ActorId) -> CutPolicy {
        self.cuts
            .iter()
            .find(|c| c.separates(from, to))
            .map(|c| c.policy)
            .unwrap_or(CutPolicy::Drop)
    }

    /// Evaluate the channel-fault pipeline for one message: the first
    /// active matching rule whose coin flip (drawn from the *sender's*
    /// plane stream) hits decides the effect.
    pub(crate) fn channel_effect(
        &self,
        from: ActorId,
        to: ActorId,
        rng: &mut RngStream,
    ) -> Option<ChannelEffect> {
        for r in &self.rules {
            if r.matches(from, to) && rng.bernoulli(r.rule.prob) {
                return Some(r.rule.effect);
            }
        }
        None
    }

    /// Is `actor` currently crashed?
    pub(crate) fn is_down(&self, actor: ActorId) -> bool {
        self.down.get(actor).copied().unwrap_or(false)
    }

    /// The accumulated counters, with `parked_leftover` reflecting the
    /// current parked backlog.
    pub fn stats(&self) -> FaultStats {
        let mut s = self.stats.clone();
        s.parked_leftover = self.parked.len() as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = ChaosConfig::new(vec![0, 1, 2, 3], SimTime::from_secs(100));
        let a = FaultScript::generate(&cfg, 7);
        let b = FaultScript::generate(&cfg, 7);
        assert_eq!(a, b);
        let c = FaultScript::generate(&cfg, 8);
        assert_ne!(a, c, "different seeds draw different scripts");
        assert!(!a.is_empty());
    }

    #[test]
    fn generate_respects_counts_and_horizon() {
        let cfg = ChaosConfig {
            actors: vec![0, 1, 2],
            horizon: SimTime::from_secs(10),
            crashes: 3,
            partitions: 2,
            channel_rules: 2,
            clock_faults: 0,
            corruption: false,
            park: false,
        };
        let s = FaultScript::generate(&cfg, 1);
        let crashes = s.faults.iter().filter(|f| matches!(f.spec, FaultSpec::Crash { .. })).count();
        let parts =
            s.faults.iter().filter(|f| matches!(f.spec, FaultSpec::Partition { .. })).count();
        assert_eq!(crashes, 3);
        assert_eq!(parts, 2);
        for f in &s.faults {
            assert!(f.at <= SimTime::from_secs(10));
            if let FaultSpec::Partition { group, policy, .. } = &f.spec {
                assert!(!group.is_empty() && group.len() <= 2);
                assert_eq!(*policy, CutPolicy::Drop, "park disallowed");
            }
        }
    }

    #[test]
    fn scripts_round_trip_through_serde() {
        let cfg = ChaosConfig::new(vec![0, 1, 2, 3, 4], SimTime::from_secs(60));
        let script = FaultScript::generate(&cfg, 42);
        let json = serde_json::to_string(&script).expect("serialize");
        let back: FaultScript = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, script);
    }

    #[test]
    fn plane_expansion_schedules_recover_and_heal() {
        let script = FaultScript::new()
            .with(
                SimTime::from_secs(1),
                FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_secs(2)) },
            )
            .with(
                SimTime::from_secs(2),
                FaultSpec::Partition {
                    group: vec![1],
                    heal_after: SimDuration::from_secs(3),
                    policy: CutPolicy::Park,
                },
            );
        let plane: FaultPlane<()> = FaultPlane::new(&script, 3);
        assert_eq!(plane.ops.len(), 4, "crash + recover + cut + heal");
        assert_eq!(plane.ops[0].0, SimTime::from_secs(1));
        assert!(matches!(plane.ops[3].1, PlaneOp::Heal { .. }));
        assert_eq!(plane.ops[3].0, SimTime::from_secs(5));
    }

    #[test]
    fn cut_separates_only_across_the_boundary() {
        let cut = CutState { group: vec![0, 1], policy: CutPolicy::Drop, active: true };
        assert!(cut.separates(0, 2));
        assert!(cut.separates(2, 1));
        assert!(!cut.separates(0, 1), "inside the island");
        assert!(!cut.separates(2, 3), "outside the island");
        let inactive = CutState { active: false, ..cut };
        assert!(!inactive.separates(0, 2));
    }
}
