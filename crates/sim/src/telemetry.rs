//! Phase-scoped wall-clock telemetry: *where does real time go?*
//!
//! The [`crate::metrics`] registry counts what the simulation did (events,
//! deliveries, windows); this module measures where the **host machine's
//! wall clock** went while doing it — per shard, per phase:
//!
//! - `busy` — executing events inside `Lane::advance_until` windows;
//! - `barrier_wait` — a shard worker blocked waiting for its next window
//!   command (the price of synchronization);
//! - `ring_exchange` — absorbing cross-shard SPSC ring publications;
//! - `rollback` — undoing a mis-speculated Time Warp window;
//! - `redo` — re-running the proven prefix after a rollback;
//! - `coordinator_drain` — the coordinator routing outboxes at barriers
//!   (and, in live sessions, draining the ingest provider).
//!
//! Each recorded span adds to a per-shard `(ns, count)` accumulator and to
//! a streaming HDR-style **log-bucket histogram** (one power-of-two bucket
//! per span-length magnitude), so a dump carries the per-window phase
//! distribution, not just totals. `psn-profile` (crates/bench) turns a
//! dump into a phase-attribution report.
//!
//! ## Strictly off the deterministic path
//!
//! This is the one subsystem allowed to call [`Instant::now`] during a
//! run — and **nothing it reads ever feeds back**: no RNG draw, no event
//! ordering, no branch in simulation logic depends on a telemetry value.
//! A telemetry-on run is bit-identical to a telemetry-off run (pinned by
//! `tests/telemetry_determinism.rs` across sequential, sharded, and
//! optimistic modes), and a disabled registry costs one `Option` branch
//! per span — the sequential-engine overhead guard holds it ≤ 2%.
//!
//! The API mirrors [`crate::metrics`]: a cloneable [`Telemetry`] registry
//! hands out per-shard [`ShardTelemetry`] handles that are inert when the
//! registry is disabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of log2 buckets per phase histogram: bucket `i` counts spans
/// with `floor(log2(max(ns, 1))) == i`, so the full `u64` nanosecond range
/// is covered (bucket 63 tops out above 290 years).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The execution phases a span can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Executing events (the engine hot loop).
    Busy = 0,
    /// A shard worker blocked waiting for its next window command.
    BarrierWait = 1,
    /// Absorbing cross-shard ring publications.
    RingExchange = 2,
    /// Undoing a mis-speculated window.
    Rollback = 3,
    /// Re-running the proven prefix after a rollback.
    Redo = 4,
    /// Coordinator barrier work: outbox routing, op barriers, live ingest.
    CoordinatorDrain = 5,
    /// Streaming predicate detection: feeding fresh reports to the
    /// per-predicate streaming detectors and answering status queries.
    Detector = 6,
}

/// How many phases exist (array dimension for the per-shard slots).
pub const PHASE_COUNT: usize = 7;

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Busy,
        Phase::BarrierWait,
        Phase::RingExchange,
        Phase::Rollback,
        Phase::Redo,
        Phase::CoordinatorDrain,
        Phase::Detector,
    ];

    /// The canonical snake_case name (also the wire/JSONL spelling).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Busy => "busy",
            Phase::BarrierWait => "barrier_wait",
            Phase::RingExchange => "ring_exchange",
            Phase::Rollback => "rollback",
            Phase::Redo => "redo",
            Phase::CoordinatorDrain => "coordinator_drain",
            Phase::Detector => "detector",
        }
    }

    /// Parse a canonical name back (for dump validators).
    pub fn from_name(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// One shard's accumulators: per-phase total ns + span count + log-bucket
/// histogram, plus the ring-occupancy high-water mark. All atomics —
/// recorded from worker threads, read by snapshotters, never reset.
struct ShardSlot {
    phase_ns: [AtomicU64; PHASE_COUNT],
    phase_count: [AtomicU64; PHASE_COUNT],
    hist: [[AtomicU64; HISTOGRAM_BUCKETS]; PHASE_COUNT],
    ring_high_water: AtomicU64,
}

impl ShardSlot {
    fn new() -> Arc<Self> {
        Arc::new(ShardSlot {
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            ring_high_water: AtomicU64::new(0),
        })
    }

    fn record(&self, phase: Phase, ns: u64) {
        let p = phase as usize;
        self.phase_ns[p].fetch_add(ns, Ordering::Relaxed);
        self.phase_count[p].fetch_add(1, Ordering::Relaxed);
        let bucket = ns.max(1).ilog2() as usize;
        self.hist[p][bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn sample(&self) -> Vec<PhaseSample> {
        Phase::ALL
            .into_iter()
            .map(|phase| {
                let p = phase as usize;
                let buckets = self.hist[p]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let count = b.load(Ordering::Relaxed);
                        (count > 0).then(|| BucketSample { floor_ns: 1u64 << i, count })
                    })
                    .collect();
                PhaseSample {
                    phase: phase.name().to_string(),
                    ns: self.phase_ns[p].load(Ordering::Relaxed),
                    count: self.phase_count[p].load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect()
    }
}

struct Inner {
    enabled: bool,
    /// Indexed by shard; grown on demand by [`Telemetry::shard`].
    shards: Mutex<Vec<Arc<ShardSlot>>>,
    /// Coordinator-side spans (outbox routing, rollback/redo, live ingest).
    coord: Arc<ShardSlot>,
    run_wall_ns: AtomicU64,
    runs: AtomicU64,
}

/// A cloneable telemetry registry; clones share storage. Mirrors
/// [`crate::metrics::Metrics`]: build with [`Telemetry::new`], or
/// [`Telemetry::disabled`] for an inert one.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled registry.
    pub fn new() -> Self {
        Telemetry { inner: Self::build(true) }
    }

    /// A disabled registry: every handle it hands out is inert and records
    /// nothing (and never reads the wall clock).
    pub fn disabled() -> Self {
        Telemetry { inner: Self::build(false) }
    }

    fn build(enabled: bool) -> Arc<Inner> {
        Arc::new(Inner {
            enabled,
            shards: Mutex::new(Vec::new()),
            coord: ShardSlot::new(),
            run_wall_ns: AtomicU64::new(0),
            runs: AtomicU64::new(0),
        })
    }

    /// Is this registry recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The recording handle for shard `idx` (find-or-create). Handles from
    /// a disabled registry are inert.
    pub fn shard(&self, idx: usize) -> ShardTelemetry {
        if !self.inner.enabled {
            return ShardTelemetry::disabled();
        }
        let mut shards = self.inner.shards.lock();
        while shards.len() <= idx {
            shards.push(ShardSlot::new());
        }
        ShardTelemetry { slot: Some(shards[idx].clone()) }
    }

    /// The coordinator-side recording handle (barrier routing, rollback
    /// bookkeeping, live ingest drains).
    pub fn coordinator(&self) -> ShardTelemetry {
        if !self.inner.enabled {
            return ShardTelemetry::disabled();
        }
        ShardTelemetry { slot: Some(self.inner.coord.clone()) }
    }

    /// Accumulate one engine run's wall time.
    pub fn record_run_wall(&self, ns: u64) {
        if self.inner.enabled {
            self.inner.run_wall_ns.fetch_add(ns, Ordering::Relaxed);
            self.inner.runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A serializable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards = self.inner.shards.lock();
        TelemetrySnapshot {
            enabled: self.inner.enabled,
            run_wall_ns: self.inner.run_wall_ns.load(Ordering::Relaxed),
            runs: self.inner.runs.load(Ordering::Relaxed),
            shards: shards
                .iter()
                .enumerate()
                .map(|(i, slot)| ShardSample {
                    shard: i,
                    ring_high_water: slot.ring_high_water.load(Ordering::Relaxed),
                    phases: slot.sample(),
                })
                .collect(),
            coordinator: self.inner.coord.sample(),
        }
    }
}

/// A per-shard recording handle. `Option<Arc>` so the disabled case is one
/// branch and zero wall-clock reads; clone freely (clones share the slot).
#[derive(Clone)]
pub struct ShardTelemetry {
    slot: Option<Arc<ShardSlot>>,
}

impl ShardTelemetry {
    /// An inert handle (what a disabled registry hands out).
    pub fn disabled() -> Self {
        ShardTelemetry { slot: None }
    }

    /// Is this handle recording?
    #[inline]
    pub fn active(&self) -> bool {
        self.slot.is_some()
    }

    /// Open a span: reads the wall clock only when recording. Pass the
    /// result to [`ShardTelemetry::record`] to close it.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.slot.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a span opened by [`ShardTelemetry::start`], attributing its
    /// wall time to `phase`. No-op on an inert handle or a `None` start.
    #[inline]
    pub fn record(&self, phase: Phase, started: Option<Instant>) {
        if let (Some(slot), Some(t0)) = (self.slot.as_deref(), started) {
            slot.record(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record an externally measured span.
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        if let Some(slot) = self.slot.as_deref() {
            slot.record(phase, ns);
        }
    }

    /// Raise the ring-occupancy high-water mark to at least `occupancy`.
    #[inline]
    pub fn record_ring_high_water(&self, occupancy: u64) {
        if let Some(slot) = self.slot.as_deref() {
            slot.ring_high_water.fetch_max(occupancy, Ordering::Relaxed);
        }
    }
}

/// One histogram bucket: `count` spans with `floor_ns <= ns < 2*floor_ns`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSample {
    /// Inclusive lower bound of the bucket (a power of two; bucket 0 also
    /// holds zero-length spans).
    pub floor_ns: u64,
    /// Spans that landed in the bucket.
    pub count: u64,
}

/// One phase's accumulated spans on one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Canonical phase name (see [`Phase::name`]).
    pub phase: String,
    /// Total wall nanoseconds attributed to the phase.
    pub ns: u64,
    /// Spans recorded.
    pub count: u64,
    /// Sparse log-bucket histogram (only non-empty buckets).
    pub buckets: Vec<BucketSample>,
}

/// One shard's phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSample {
    /// Shard index (the sequential engine records as shard 0).
    pub shard: usize,
    /// Highest cross-shard exchange-ring occupancy this shard's producers
    /// reached (0 when rings were never used; compare against the ring
    /// capacity and the `engine.ring_spills` metric for pressure).
    pub ring_high_water: u64,
    /// Per-phase accumulators, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSample>,
}

/// A point-in-time serializable capture of a [`Telemetry`] registry —
/// `Deserialize` too, so dump tools (`psn-profile`) can read it back.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Whether the registry was recording.
    pub enabled: bool,
    /// Total engine-run wall nanoseconds (summed across runs).
    pub run_wall_ns: u64,
    /// Engine runs recorded.
    pub runs: u64,
    /// Per-shard phase breakdowns.
    pub shards: Vec<ShardSample>,
    /// Coordinator-side phase breakdown (in [`Phase::ALL`] order).
    pub coordinator: Vec<PhaseSample>,
}

impl TelemetrySnapshot {
    /// Total ns attributed to `phase` on shard `shard`, 0 if absent.
    pub fn phase_ns(&self, shard: usize, phase: Phase) -> u64 {
        self.shards
            .iter()
            .find(|s| s.shard == shard)
            .and_then(|s| s.phases.iter().find(|p| p.phase == phase.name()))
            .map_or(0, |p| p.ns)
    }

    /// Total ns attributed to `phase` on the coordinator, 0 if absent.
    pub fn coordinator_ns(&self, phase: Phase) -> u64 {
        self.coordinator.iter().find(|p| p.phase == phase.name()).map_or(0, |p| p.ns)
    }

    /// Sum of all per-shard phase time (excludes the coordinator slot).
    pub fn total_shard_ns(&self) -> u64 {
        self.shards.iter().flat_map(|s| s.phases.iter()).map(|p| p.ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert_and_read_no_clock() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let h = t.shard(0);
        assert!(!h.active());
        assert_eq!(h.start(), None, "no Instant::now() when disabled");
        h.record(Phase::Busy, None);
        h.record_ns(Phase::Busy, 1_000);
        h.record_ring_high_water(7);
        t.record_run_wall(5);
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.runs, 0);
        assert!(snap.shards.is_empty(), "disabled shard() must not grow the registry");
    }

    #[test]
    fn spans_accumulate_per_shard_and_per_phase() {
        let t = Telemetry::new();
        let s0 = t.shard(0);
        let s1 = t.shard(1);
        s0.record_ns(Phase::Busy, 100);
        s0.record_ns(Phase::Busy, 28);
        s0.record_ns(Phase::BarrierWait, 50);
        s1.record_ns(Phase::RingExchange, 9);
        s1.record_ring_high_water(3);
        s1.record_ring_high_water(2); // high-water keeps the max
        t.record_run_wall(1_000);
        let snap = t.snapshot();
        assert_eq!(snap.phase_ns(0, Phase::Busy), 128);
        assert_eq!(snap.phase_ns(0, Phase::BarrierWait), 50);
        assert_eq!(snap.phase_ns(1, Phase::RingExchange), 9);
        assert_eq!(snap.shards[1].ring_high_water, 3);
        assert_eq!(snap.run_wall_ns, 1_000);
        assert_eq!(snap.runs, 1);
        assert_eq!(snap.total_shard_ns(), 128 + 50 + 9);
        let busy = &snap.shards[0].phases[Phase::Busy as usize];
        assert_eq!(busy.count, 2);
        // 100 → bucket floor 64; 28 → bucket floor 16.
        assert!(busy.buckets.iter().any(|b| b.floor_ns == 64 && b.count == 1));
        assert!(busy.buckets.iter().any(|b| b.floor_ns == 16 && b.count == 1));
    }

    #[test]
    fn live_spans_record_elapsed_time() {
        let t = Telemetry::new();
        let h = t.shard(0);
        let t0 = h.start();
        assert!(t0.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        h.record(Phase::Busy, t0);
        let snap = t.snapshot();
        assert!(snap.phase_ns(0, Phase::Busy) >= 1_000_000, "span must measure real time");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let t = Telemetry::new();
        t.shard(0).record_ns(Phase::Busy, 1234);
        t.coordinator().record_ns(Phase::CoordinatorDrain, 55);
        t.record_run_wall(9_999);
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.coordinator_ns(Phase::CoordinatorDrain), 55);
    }

    #[test]
    fn phase_names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nonsense"), None);
    }
}
