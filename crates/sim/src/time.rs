//! Simulation time.
//!
//! The simulator uses a discrete global clock measured in integer
//! **nanoseconds** since the start of the run. All ground-truth ("world
//! plane") timestamps are [`SimTime`] values; the processes in the network
//! plane never read this clock directly — they only see their own (possibly
//! drifting, possibly logical) clocks. Keeping the ground truth in integers
//! makes runs bit-for-bit reproducible and makes event-queue tie-breaking
//! exact.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant of simulated time, in nanoseconds since the start of
/// the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "end of time" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration (used for the synchronous, Δ = 0 model).
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span (an "unbounded hold-back" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from fractional seconds (rounds to the nearest nanosecond;
    /// negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}
impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration(0), |a, d| a + d)
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

fn format_nanos(ns: u64) -> String {
    if ns == 0 {
        "0s".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_nanos(), 1_500_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(100).mul_f64(2.5), SimDuration::from_millis(250));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::from_secs(3).to_string(), "3s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(4).to_string(), "4.000us");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_secs(1));
        assert!(SimDuration::ZERO < SimDuration::from_nanos(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
