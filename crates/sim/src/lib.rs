//! # psn-sim — deterministic simulation substrate
//!
//! The paper *Execution and Time Models for Pervasive Sensor Networks*
//! (Kshemkalyani, Khokhar, Shen; IPPS 2011 / IJNC 2012) analyses clock and
//! predicate-detection protocols for sensor-actuator networks in terms of
//! event orderings under three message-delay regimes (synchronous Δ = 0,
//! asynchronous Δ-bounded, asynchronous unbounded). This crate is the
//! substrate on which every experiment in this repository runs: a
//! **deterministic discrete-event simulator** with
//!
//! - integer-nanosecond ground-truth time ([`time`]),
//! - per-entity splittable random streams ([`rng`]),
//! - a stable-tie-breaking future-event list ([`queue`]),
//! - the paper's delay models and message-loss models ([`delay`], [`loss`]),
//! - dynamic logical overlays with broadcast, FIFO/non-FIFO channels and
//!   byte accounting ([`network`]),
//! - an actor-based engine ([`engine`]) with a lock-free SPSC exchange
//!   ring for its sharded mode ([`ring`]),
//! - causally stamped structured run traces ([`trace`]) with Chrome
//!   trace-event / JSONL exporters ([`trace_export`]) and offline
//!   happened-before analysis ([`trace_analysis`]),
//! - summary statistics ([`stats`]),
//! - a deterministic parallel sweep runner ([`sweep`]), and
//! - a run-wide metrics/instrumentation registry ([`metrics`]) and a
//!   phase-scoped wall-clock telemetry plane ([`telemetry`]), both of
//!   whose recording provably never perturbs simulation results.
//!
//! Every run is a pure function of `(actors, network, seed)`; sweeps return
//! identical results at any thread count.
//!
//! ## Example
//!
//! ```
//! use psn_sim::prelude::*;
//!
//! #[derive(Clone)]
//! struct Hello(u64);
//! impl Message for Hello {
//!     fn size_bytes(&self) -> usize { 8 }
//! }
//!
//! struct Greeter { peer: ActorId }
//! impl Actor<Hello> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         if ctx.id() == 0 { ctx.send(self.peer, Hello(1)); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Hello>, _from: ActorId, msg: Hello) {
//!         if msg.0 < 3 { ctx.send(self.peer, Hello(msg.0 + 1)); } else { ctx.halt(); }
//!     }
//! }
//!
//! let net = NetworkConfig::full_mesh(2, DelayModel::delta(SimDuration::from_millis(10)));
//! let mut engine = Engine::new(net, 42);
//! engine.add_actor(Box::new(Greeter { peer: 1 }));
//! engine.add_actor(Box::new(Greeter { peer: 0 }));
//! engine.run();
//! assert_eq!(engine.stats().messages_delivered, 3);
//! ```

#![warn(missing_docs)]

pub mod delay;
pub mod engine;
pub mod fault;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod provider;
pub mod queue;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod trace_analysis;
pub mod trace_export;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::delay::DelayModel;
    pub use crate::engine::{Actor, Context, Engine, EngineError, Message};
    pub use crate::fault::{
        ChannelEffect, ChannelFaultRule, ChaosConfig, ClockFaultKind, CutPolicy, FaultEvent,
        FaultScript, FaultSpec, FaultStats, ScriptedFault,
    };
    pub use crate::loss::LossModel;
    pub use crate::metrics::{Counter, Gauge, Metrics, MetricsSnapshot, Timer};
    pub use crate::network::{ActorId, NetStats, NetworkConfig, Topology};
    pub use crate::provider::{
        ChannelProvider, EventProvider, ExternalEvent, GeneratorProvider, TimelineProvider,
    };
    pub use crate::rng::{RngFactory, RngStream};
    pub use crate::stats::OnlineStats;
    pub use crate::sweep::{run_sweep, run_sweep_auto, run_sweep_instrumented};
    pub use crate::telemetry::{Phase, ShardTelemetry, Telemetry, TelemetrySnapshot};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{
        ClockStamp, MsgId, ProcessEventKind, Trace, TraceEvent, TraceKind, TraceRecord,
    };
    pub use crate::trace_analysis::TraceAnalysis;
}
