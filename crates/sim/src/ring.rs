//! A bounded lock-free single-producer / single-consumer ring.
//!
//! The sharded engine's cross-shard exchange keeps one ring per directed
//! shard pair: the producing lane publishes cross-shard events as it
//! generates them, and the consuming lane absorbs them mid-window (every
//! published event's delivery time is at or beyond the consumer's window
//! bound, so absorption order cannot affect the run — heap order is total
//! on `(time, key)`). This replaces the coordinator-side
//! `route_outboxes` `mem::take` + re-heap per lane per barrier with work
//! that overlaps the parallel window.
//!
//! The implementation is the classic Lamport ring: a power-of-two slot
//! array, a producer-owned `tail`, a consumer-owned `head`, release stores
//! paired with acquire loads. Exactly one [`Producer`] and one
//! [`Consumer`] exist per ring (enforced by construction — [`spsc`]
//! returns each handle once and neither is `Clone`), which is what makes
//! the unchecked slot access sound. A full ring rejects the push and the
//! caller falls back to its outbox, so the ring is a fast path, never a
//! correctness dependency.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad the two indices onto separate cache lines so producer and consumer
/// do not false-share.
#[repr(align(64))]
struct CacheAligned(AtomicUsize);

struct Shared<T> {
    /// `mask + 1` slots, `mask + 1` a power of two.
    mask: usize,
    /// Written by the producer, read by the consumer (release/acquire).
    tail: CacheAligned,
    /// Written by the consumer, read by the producer (release/acquire).
    head: CacheAligned,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// One producer and one consumer each touch disjoint slots, handed over by
// the release/acquire pair on `tail`/`head`; `T: Send` is all that moves.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drop any items still in flight (`&mut self` proves exclusivity).
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The producing half of an SPSC ring (not `Clone`: single producer).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Cached consumer position; refreshed only when the ring looks full.
    head_cache: usize,
    /// Worst occupancy this producer has observed (against its possibly
    /// stale `head_cache`, so an upper bound on true occupancy). Telemetry
    /// only — maintained with producer-local arithmetic, no extra atomics.
    high_water: usize,
}

/// The consuming half of an SPSC ring (not `Clone`: single consumer).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Cached producer position; refreshed only when the ring looks empty.
    tail_cache: usize,
}

/// Build a ring with at least `capacity` slots (rounded up to a power of
/// two, minimum 2) and return its two ends.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        mask: cap - 1,
        tail: CacheAligned(AtomicUsize::new(0)),
        head: CacheAligned(AtomicUsize::new(0)),
        slots,
    });
    (
        Producer { shared: Arc::clone(&shared), head_cache: 0, high_water: 0 },
        Consumer { shared, tail_cache: 0 },
    )
}

impl<T> Producer<T> {
    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Worst occupancy this producer ever observed after a successful
    /// push (an upper bound on true occupancy — the cached consumer
    /// position may lag). A high-water near [`Producer::capacity`] means
    /// the ring is undersized for the workload and pushes are about to
    /// start spilling.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Publish `item`; returns it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.0.load(Ordering::Relaxed); // producer-owned
        if tail.wrapping_sub(self.head_cache) > s.mask {
            self.head_cache = s.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) > s.mask {
                self.high_water = s.mask + 1;
                return Err(item); // genuinely full
            }
        }
        unsafe { (*s.slots[tail & s.mask].get()).write(item) };
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        let occupancy = tail.wrapping_add(1).wrapping_sub(self.head_cache);
        if occupancy > self.high_water {
            self.high_water = occupancy;
        }
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Take the oldest published item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed); // consumer-owned
        if head == self.tail_cache {
            self.tail_cache = s.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None; // genuinely empty
            }
        }
        let item = unsafe { (*s.slots[head & s.mask].get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// True when the consumer's view of the ring is empty (a concurrent
    /// producer may publish immediately after; only authoritative once the
    /// producer is quiescent, e.g. at a window barrier).
    pub fn is_empty(&mut self) -> bool {
        let s = &*self.shared;
        let head = s.head.0.load(Ordering::Relaxed);
        if head != self.tail_cache {
            return false;
        }
        self.tail_cache = s.tail.0.load(Ordering::Acquire);
        head == self.tail_cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring full");
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn high_water_tracks_worst_occupancy() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        assert_eq!(tx.high_water(), 0);
        for i in 0..3 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.high_water(), 3);
        for _ in 0..3 {
            rx.pop();
        }
        tx.push(3).unwrap();
        // Draining does not lower the recorded worst case (and the
        // producer's view may overshoot while its consumer cache is
        // stale — high_water is an upper bound).
        assert!(tx.high_water() >= 3);
        // Filling the ring pins it at capacity, spill or no spill.
        for i in 4..11 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.high_water(), tx.capacity());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn interleaved_push_pop_wraps() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..100 {
            for _ in 0..3 {
                tx.push(next_in).unwrap();
                next_in += 1;
            }
            for _ in 0..3 {
                assert_eq!(rx.pop(), Some(next_out));
                next_out += 1;
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drops_inflight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.push(D).unwrap();
        }
        drop(rx.pop()); // one consumed and dropped
        drop(tx);
        drop(rx); // ring dropped with 4 in flight
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_producer_consumer_preserve_order() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut i = 0;
                while i < N {
                    match tx.push(i) {
                        Ok(()) => i += 1,
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            });
            let mut expect = 0;
            while expect < N {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expect);
                        expect += 1;
                    }
                    None => std::hint::spin_loop(),
                }
            }
            assert!(rx.is_empty());
        });
    }
}
