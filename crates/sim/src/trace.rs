//! Structured, causally stamped execution traces.
//!
//! When tracing is enabled, the engine records every network-plane action
//! (send / deliver / drop / timer / note) with its ground-truth time, and
//! actors may additionally record **process events** (sense, send, receive,
//! actuate, detector verdicts) carrying the acting process's *logical*
//! timestamp — scalar or vector, per the run's clock discipline. A trace
//! therefore exposes both time axes the paper contrasts: physical
//! (simulation) time and causal time.
//!
//! The pipeline is designed to be observational and cheap:
//!
//! - **Per-actor ring buffers.** Records are staged in fixed-capacity
//!   per-actor buffers (preallocated when tracing is enabled) and drained
//!   into the central log in batches, so the engine hot path never grows a
//!   shared `Vec` record-by-record. Every record carries a global monotone
//!   sequence number assigned at record time; [`Trace::seal`] drains all
//!   rings and restores the total recording order by sorting on it —
//!   deterministic regardless of ring capacity or drain timing.
//! - **Message identity.** Transmissions are numbered with a per-run
//!   monotone [`MsgId`], so a `Sent` record pairs with exactly one
//!   `Delivered` (or `Lost`) record even with many in-flight messages on
//!   one channel. Exporters use the id to draw Perfetto flow arrows;
//!   [`crate::trace_analysis`] uses it for latency attribution.
//! - **Disabled = one branch.** A disabled trace discards everything.
//!
//! Offline consumers: [`crate::trace_export`] (Chrome trace-event JSON and
//! JSONL) and [`crate::trace_analysis`] (happened-before DAG, critical
//! paths, channel histograms, loss-vicinity windows).

use serde::{Deserialize, Error, Serialize, Value};

use crate::network::ActorId;
use crate::time::SimTime;

/// Default capacity (in records) of each per-actor staging ring.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Identity of one attempted transmission, monotone within a run.
///
/// Assigned by the engine at `Sent` time (and for injected external
/// deliveries at injection time), never reused; a `Sent`/`Lost` pair and
/// the matching `Delivered` share the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl Serialize for MsgId {
    fn to_value(&self) -> Value {
        Value::UInt(self.0)
    }
}

impl Deserialize for MsgId {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).map(MsgId)
    }
}

/// The semantic process events actors can stamp into the trace (the
/// paper's event alphabet at trace granularity: `n`/`s`/`r`/`a` plus the
/// detector's verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessEventKind {
    /// A sense event `n` (detail: the world event id).
    Sense,
    /// A semantic send event `s` (detail: the destination actor).
    Send,
    /// A semantic receive event `r` (detail: the source actor).
    Receive,
    /// An actuate event `a` (detail: the actuated object id).
    Actuate,
    /// A detector occurrence verdict (detail: the process whose report
    /// completed the occurrence, or `u64::MAX` when none did).
    Detect,
}

impl ProcessEventKind {
    /// Stable lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ProcessEventKind::Sense => "sense",
            ProcessEventKind::Send => "send",
            ProcessEventKind::Receive => "receive",
            ProcessEventKind::Actuate => "actuate",
            ProcessEventKind::Detect => "detect",
        }
    }
}

/// The kinds of fault-plane events a [`TraceKind::Fault`] record can
/// carry (see [`crate::fault`]). `detail` on the record disambiguates:
/// message id for channel effects, cut index for partitions, the
/// [`crate::fault::ClockFaultKind::code`] for clock faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultRecordKind {
    /// The actor crashed.
    Crash,
    /// The actor recovered from a crash.
    Recover,
    /// The actor was isolated by a partition cut.
    PartitionCut,
    /// The partition isolating the actor healed.
    PartitionHeal,
    /// A clock fault hit the actor.
    ClockFault,
    /// A message from the actor was corrupted in flight.
    Corrupted,
    /// A message from the actor was duplicated in flight.
    Duplicated,
    /// A message from the actor was delayed past the FIFO order.
    Reordered,
    /// A message from the actor was dropped by a channel-fault rule.
    ChannelDrop,
    /// A message from the actor was parked at a partition cut.
    Parked,
    /// A parked message from the actor was released at heal time.
    Unparked,
}

impl FaultRecordKind {
    /// Stable lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultRecordKind::Crash => "crash",
            FaultRecordKind::Recover => "recover",
            FaultRecordKind::PartitionCut => "partition_cut",
            FaultRecordKind::PartitionHeal => "partition_heal",
            FaultRecordKind::ClockFault => "clock_fault",
            FaultRecordKind::Corrupted => "corrupted",
            FaultRecordKind::Duplicated => "duplicated",
            FaultRecordKind::Reordered => "reordered",
            FaultRecordKind::ChannelDrop => "channel_drop",
            FaultRecordKind::Parked => "parked",
            FaultRecordKind::Unparked => "unparked",
        }
    }
}

/// How many vector components a [`ClockStamp`] keeps in-struct before
/// spilling to the heap (mirrors `psn-clocks`' inline small-vector stamps).
pub const STAMP_INLINE: usize = 8;

/// A logical timestamp attached to a process event.
///
/// `psn-sim` cannot depend on `psn-clocks` (the dependency points the other
/// way), so the trace layer carries stamps in this self-contained form:
/// scalar value or vector of components, with up to [`STAMP_INLINE`]
/// components stored inline so stamping stays allocation-free for the
/// paper-scale deployments.
#[derive(Debug, Clone)]
pub enum ClockStamp {
    /// No logical stamp was available for this event.
    None,
    /// A scalar (Lamport-style) stamp.
    Scalar(u64),
    /// A vector (Mattern/Fidge-style) stamp.
    Vector(StampVec),
}

impl ClockStamp {
    /// Build a vector stamp from a component slice.
    pub fn vector(components: &[u64]) -> Self {
        ClockStamp::Vector(StampVec::from_slice(components))
    }

    /// The vector components, if this is a vector stamp.
    pub fn as_vector(&self) -> Option<&[u64]> {
        match self {
            ClockStamp::Vector(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Strict vector-clock order `self < other`: `Some(true/false)` when
    /// both are vector stamps of equal length, `None` otherwise.
    pub fn vector_lt(&self, other: &ClockStamp) -> Option<bool> {
        let (a, b) = (self.as_vector()?, other.as_vector()?);
        if a.len() != b.len() {
            return None;
        }
        let mut le = true;
        let mut ne = false;
        for (x, y) in a.iter().zip(b) {
            le &= x <= y;
            ne |= x != y;
        }
        Some(le && ne)
    }
}

impl PartialEq for ClockStamp {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ClockStamp::None, ClockStamp::None) => true,
            (ClockStamp::Scalar(a), ClockStamp::Scalar(b)) => a == b,
            (ClockStamp::Vector(a), ClockStamp::Vector(b)) => a.as_slice() == b.as_slice(),
            _ => false,
        }
    }
}

impl Serialize for ClockStamp {
    fn to_value(&self) -> Value {
        match self {
            ClockStamp::None => Value::Null,
            ClockStamp::Scalar(v) => Value::Map(vec![("scalar".to_string(), Value::UInt(*v))]),
            ClockStamp::Vector(v) => Value::Map(vec![(
                "vector".to_string(),
                Value::Seq(v.as_slice().iter().map(|&c| Value::UInt(c)).collect()),
            )]),
        }
    }
}

impl Deserialize for ClockStamp {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(ClockStamp::None),
            Value::Map(m) => match m.first() {
                Some((k, Value::UInt(s))) if k == "scalar" => Ok(ClockStamp::Scalar(*s)),
                Some((k, Value::Seq(seq))) if k == "vector" => {
                    let mut comps = Vec::with_capacity(seq.len());
                    for c in seq {
                        comps.push(u64::from_value(c)?);
                    }
                    Ok(ClockStamp::Vector(StampVec::from_slice(&comps)))
                }
                _ => Err(Error::custom("ClockStamp: unknown map shape")),
            },
            _ => Err(Error::custom("ClockStamp: expected null or map")),
        }
    }
}

/// The component storage of [`ClockStamp::Vector`]: inline up to
/// [`STAMP_INLINE`] components, heap spill above.
#[derive(Debug, Clone)]
pub struct StampVec {
    len: u32,
    inline: [u64; STAMP_INLINE],
    spill: Vec<u64>,
}

impl StampVec {
    /// Copy a component slice.
    pub fn from_slice(components: &[u64]) -> Self {
        let len = components.len();
        if len <= STAMP_INLINE {
            let mut inline = [0u64; STAMP_INLINE];
            inline[..len].copy_from_slice(components);
            StampVec { len: len as u32, inline, spill: Vec::new() }
        } else {
            StampVec { len: len as u32, inline: [0; STAMP_INLINE], spill: components.to_vec() }
        }
    }

    /// The components.
    pub fn as_slice(&self) -> &[u64] {
        if self.len as usize <= STAMP_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// One recorded trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global recording order within the run (dense from 0).
    pub seq: u64,
    /// Ground-truth simulation time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Backwards-compatible alias: records used to be called events.
pub type TraceEvent = TraceRecord;

/// The kinds of records a trace can hold.
///
/// Fields are the obvious actor ids / payload sizes / timer tags; `msg` is
/// the per-run transmission id (see [`MsgId`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TraceKind {
    /// A point-to-point transmission was attempted.
    Sent { from: ActorId, to: ActorId, bytes: usize, msg: MsgId },
    /// A message was delivered to its destination.
    Delivered { from: ActorId, to: ActorId, msg: MsgId },
    /// A message was dropped by the loss model.
    Lost { from: ActorId, to: ActorId, msg: MsgId },
    /// A timer fired at an actor.
    TimerFired { actor: ActorId, tag: u64 },
    /// A free-form annotation emitted by an actor (protocol-level events:
    /// "sensed x=5", "detected φ", …).
    Note { actor: ActorId, label: String },
    /// A logically stamped semantic process event (sense / send / receive /
    /// actuate / detect). `detail` is a kind-specific payload — see
    /// [`ProcessEventKind`].
    Process { actor: ActorId, kind: ProcessEventKind, stamp: ClockStamp, detail: u64 },
    /// A fault-plane event (crash, recovery, partition cut/heal, channel
    /// effect, clock fault). Only ever recorded when a non-empty
    /// [`crate::fault::FaultScript`] is installed, so fault-free golden
    /// traces never contain this kind. `detail` is kind-specific — see
    /// [`FaultRecordKind`].
    Fault { actor: ActorId, kind: FaultRecordKind, detail: u64 },
}

impl TraceKind {
    /// The actor this record belongs to (its staging ring): the acting /
    /// observing side of each kind.
    pub fn actor(&self) -> ActorId {
        match self {
            TraceKind::Sent { from, .. } | TraceKind::Lost { from, .. } => *from,
            TraceKind::Delivered { to, .. } => *to,
            TraceKind::TimerFired { actor, .. }
            | TraceKind::Note { actor, .. }
            | TraceKind::Process { actor, .. }
            | TraceKind::Fault { actor, .. } => *actor,
        }
    }

    /// The transmission id, for message records.
    pub fn msg_id(&self) -> Option<MsgId> {
        match self {
            TraceKind::Sent { msg, .. }
            | TraceKind::Delivered { msg, .. }
            | TraceKind::Lost { msg, .. } => Some(*msg),
            _ => None,
        }
    }
}

/// A structured record of a run.
///
/// Records are staged in per-actor rings and drained into the central log;
/// call [`Trace::seal`] (the engine does, at the end of
/// [`crate::engine::Engine::run`]) before reading. Sealing is idempotent
/// and recording may resume after it — post-hoc analyses (e.g. detector
/// verdicts) append and re-seal.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    rings: Vec<Vec<TraceRecord>>,
    ring_capacity: usize,
    next_seq: u64,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            rings: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            next_seq: 0,
            enabled: true,
        }
    }

    /// A trace that discards everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        Trace {
            records: Vec::new(),
            rings: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            next_seq: 0,
            enabled: false,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Preallocate staging rings for `n` actors (no-op when disabled). The
    /// engine calls this at run start so steady-state recording never
    /// allocates.
    pub fn configure_actors(&mut self, n: usize) {
        if !self.enabled {
            return;
        }
        let cap = self.ring_capacity;
        while self.rings.len() < n {
            self.rings.push(Vec::with_capacity(cap));
        }
    }

    /// Override the per-actor staging ring capacity (records). Takes effect
    /// for rings created after the call.
    pub fn set_ring_capacity(&mut self, cap: usize) {
        self.ring_capacity = cap.max(1);
    }

    /// Record an event (no-op if disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let actor = kind.actor();
        if actor >= self.rings.len() {
            let cap = self.ring_capacity;
            self.rings.resize_with(actor + 1, || Vec::with_capacity(cap));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let ring = &mut self.rings[actor];
        ring.push(TraceRecord { seq, at, kind });
        if ring.len() >= self.ring_capacity {
            self.records.append(ring);
        }
    }

    /// Drain every staging ring into the central log and restore the total
    /// recording order. Idempotent; recording may continue afterwards.
    pub fn seal(&mut self) {
        let mut drained = false;
        for ring in &mut self.rings {
            if !ring.is_empty() {
                self.records.append(ring);
                drained = true;
            }
        }
        if drained || !self.records.is_sorted_by_key(|r| r.seq) {
            self.records.sort_unstable_by_key(|r| r.seq);
        }
    }

    fn assert_sealed(&self) {
        debug_assert!(
            self.rings.iter().all(Vec::is_empty),
            "Trace::seal() must run before reading (the engine seals at end of run)"
        );
    }

    /// All records in recording order (which is chronological, since the
    /// engine advances time monotonically). Requires [`Trace::seal`].
    pub fn records(&self) -> &[TraceRecord] {
        self.assert_sealed();
        &self.records
    }

    /// Alias of [`Trace::records`] kept from the flat-event-list days.
    pub fn events(&self) -> &[TraceRecord] {
        self.records()
    }

    /// Number of recorded events (staged or sealed).
    pub fn len(&self) -> usize {
        self.records.len() + self.rings.iter().map(Vec::len).sum::<usize>()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `Note` annotations from a given actor, with their times.
    pub fn notes_of(&self, actor: ActorId) -> Vec<(SimTime, &str)> {
        self.records()
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Note { actor: a, label } if *a == actor => Some((e.at, label.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Count records matching a predicate.
    pub fn count_matching(&self, f: impl Fn(&TraceKind) -> bool) -> usize {
        self.records().iter().filter(|e| f(&e.kind)).count()
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        self.assert_sealed();
        Value::Map(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            (
                "records".to_string(),
                Value::Seq(self.records.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("Trace: expected map"))?;
        let mut trace = Trace::disabled();
        for (k, val) in m {
            match k.as_str() {
                "enabled" => trace.enabled = bool::from_value(val)?,
                "records" => {
                    let seq = val.as_seq().ok_or_else(|| Error::custom("Trace.records: seq"))?;
                    trace.records =
                        seq.iter().map(TraceRecord::from_value).collect::<Result<Vec<_>, _>>()?;
                }
                _ => {}
            }
        }
        trace.next_seq = trace.records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(i: u64) -> MsgId {
        MsgId(i)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::TimerFired { actor: 0, tag: 1 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_millis(1),
            TraceKind::Sent { from: 0, to: 1, bytes: 8, msg: msg(0) },
        );
        t.record(SimTime::from_millis(2), TraceKind::Delivered { from: 0, to: 1, msg: msg(0) });
        t.seal();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].at, SimTime::from_millis(1));
        assert!(matches!(t.records()[1].kind, TraceKind::Delivered { .. }));
    }

    #[test]
    fn seal_restores_recording_order_across_rings() {
        // Tiny rings so several drains interleave: the sealed order must
        // still be exactly the recording order.
        let mut t = Trace::enabled();
        t.set_ring_capacity(2);
        for i in 0..20u64 {
            let actor = (i % 3) as ActorId;
            t.record(SimTime::from_millis(i), TraceKind::TimerFired { actor, tag: i });
        }
        t.seal();
        let seqs: Vec<u64> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        let tags: Vec<u64> = t
            .records()
            .iter()
            .map(|r| match r.kind {
                TraceKind::TimerFired { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seal_is_idempotent_and_recording_resumes() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::TimerFired { actor: 0, tag: 0 });
        t.seal();
        t.seal();
        assert_eq!(t.len(), 1);
        // Post-hoc append (the detector-verdict pattern), then re-seal.
        t.record(
            SimTime::from_millis(2),
            TraceKind::Process {
                actor: 1,
                kind: ProcessEventKind::Detect,
                stamp: ClockStamp::Scalar(7),
                detail: 0,
            },
        );
        t.seal();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].seq, 1);
    }

    #[test]
    fn notes_filter_by_actor() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::Note { actor: 3, label: "sensed".into() });
        t.record(SimTime::from_millis(2), TraceKind::Note { actor: 4, label: "other".into() });
        t.record(SimTime::from_millis(5), TraceKind::Note { actor: 3, label: "detected".into() });
        t.seal();
        let notes = t.notes_of(3);
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].1, "sensed");
        assert_eq!(notes[1].0, SimTime::from_millis(5));
    }

    #[test]
    fn count_matching_counts() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(SimTime::from_millis(i), TraceKind::Lost { from: 0, to: 1, msg: msg(i) });
        }
        t.record(SimTime::from_millis(9), TraceKind::Delivered { from: 0, to: 1, msg: msg(5) });
        t.seal();
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Lost { .. })), 5);
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Delivered { .. })), 1);
    }

    #[test]
    fn stamp_vec_spills_above_inline_capacity() {
        let small: Vec<u64> = (0..STAMP_INLINE as u64).collect();
        let big: Vec<u64> = (0..(STAMP_INLINE as u64 + 5)).collect();
        assert_eq!(StampVec::from_slice(&small).as_slice(), &small[..]);
        assert_eq!(StampVec::from_slice(&big).as_slice(), &big[..]);
    }

    #[test]
    fn vector_lt_is_strict_componentwise_order() {
        let a = ClockStamp::vector(&[1, 0, 2]);
        let b = ClockStamp::vector(&[1, 1, 2]);
        let c = ClockStamp::vector(&[0, 5, 0]);
        assert_eq!(a.vector_lt(&b), Some(true));
        assert_eq!(b.vector_lt(&a), Some(false));
        assert_eq!(a.vector_lt(&a), Some(false), "not reflexive: strict order");
        assert_eq!(a.vector_lt(&c), Some(false));
        assert_eq!(c.vector_lt(&a), Some(false), "concurrent either way");
        assert_eq!(a.vector_lt(&ClockStamp::Scalar(3)), None);
    }

    #[test]
    fn stamps_round_trip_through_values() {
        for stamp in [
            ClockStamp::None,
            ClockStamp::Scalar(42),
            ClockStamp::vector(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]),
        ] {
            let back = ClockStamp::from_value(&stamp.to_value()).expect("round trip");
            assert_eq!(back, stamp);
        }
    }
}
