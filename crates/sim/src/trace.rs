//! Structured, causally stamped execution traces.
//!
//! When tracing is enabled, the engine records every network-plane action
//! (send / deliver / drop / timer / note) with its ground-truth time, and
//! actors may additionally record **process events** (sense, send, receive,
//! actuate, detector verdicts) carrying the acting process's *logical*
//! timestamp — scalar or vector, per the run's clock discipline. A trace
//! therefore exposes both time axes the paper contrasts: physical
//! (simulation) time and causal time.
//!
//! The pipeline is designed to be observational and cheap:
//!
//! - **Canonical staging.** Records are staged with a *canonical cursor* —
//!   the canonical key of the engine event being processed when the record
//!   was made (see [`crate::queue::event_key`]) plus an intra-event counter
//!   — instead of a globally assigned sequence number. [`Trace::seal`]
//!   sorts staged records by `(time, cursor, intra)` and only then assigns
//!   the dense `seq` numbers. Because the sort key is derived from event
//!   *content*, the sealed trace is identical whether the records were
//!   produced by one sequential engine loop or by several shard threads —
//!   the property the sharded engine's bit-identity guarantee rests on.
//!   In a sequential run the staging order already equals the canonical
//!   order, so the sort is a no-op pass.
//! - **Message identity.** Transmissions are numbered with a per-run
//!   monotone [`MsgId`], so a `Sent` record pairs with exactly one
//!   `Delivered` (or `Lost`) record even with many in-flight messages on
//!   one channel. Exporters use the id to draw Perfetto flow arrows;
//!   [`crate::trace_analysis`] uses it for latency attribution.
//! - **Disabled = one branch.** A disabled trace discards everything.
//!
//! Offline consumers: [`crate::trace_export`] (Chrome trace-event JSON and
//! JSONL) and [`crate::trace_analysis`] (happened-before DAG, critical
//! paths, channel histograms, loss-vicinity windows).

use serde::{Deserialize, Error, Serialize, Value};

use crate::network::ActorId;
use crate::time::SimTime;

/// Staging reservation granularity (records per actor) used by
/// [`Trace::configure_actors`].
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Identity of one attempted transmission, monotone within a run.
///
/// Assigned by the engine at `Sent` time (and for injected external
/// deliveries at injection time), never reused; a `Sent`/`Lost` pair and
/// the matching `Delivered` share the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl Serialize for MsgId {
    fn to_value(&self) -> Value {
        Value::UInt(self.0)
    }
}

impl Deserialize for MsgId {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).map(MsgId)
    }
}

/// The semantic process events actors can stamp into the trace (the
/// paper's event alphabet at trace granularity: `n`/`s`/`r`/`a` plus the
/// detector's verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessEventKind {
    /// A sense event `n` (detail: the world event id).
    Sense,
    /// A semantic send event `s` (detail: the destination actor).
    Send,
    /// A semantic receive event `r` (detail: the source actor).
    Receive,
    /// An actuate event `a` (detail: the actuated object id).
    Actuate,
    /// A detector occurrence verdict (detail: the process whose report
    /// completed the occurrence, or `u64::MAX` when none did).
    Detect,
}

impl ProcessEventKind {
    /// Stable lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ProcessEventKind::Sense => "sense",
            ProcessEventKind::Send => "send",
            ProcessEventKind::Receive => "receive",
            ProcessEventKind::Actuate => "actuate",
            ProcessEventKind::Detect => "detect",
        }
    }
}

/// The kinds of fault-plane events a [`TraceKind::Fault`] record can
/// carry (see [`crate::fault`]). `detail` on the record disambiguates:
/// message id for channel effects, cut index for partitions, the
/// [`crate::fault::ClockFaultKind::code`] for clock faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultRecordKind {
    /// The actor crashed.
    Crash,
    /// The actor recovered from a crash.
    Recover,
    /// The actor was isolated by a partition cut.
    PartitionCut,
    /// The partition isolating the actor healed.
    PartitionHeal,
    /// A clock fault hit the actor.
    ClockFault,
    /// A message from the actor was corrupted in flight.
    Corrupted,
    /// A message from the actor was duplicated in flight.
    Duplicated,
    /// A message from the actor was delayed past the FIFO order.
    Reordered,
    /// A message from the actor was dropped by a channel-fault rule.
    ChannelDrop,
    /// A message from the actor was parked at a partition cut.
    Parked,
    /// A parked message from the actor was released at heal time.
    Unparked,
}

impl FaultRecordKind {
    /// Stable lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultRecordKind::Crash => "crash",
            FaultRecordKind::Recover => "recover",
            FaultRecordKind::PartitionCut => "partition_cut",
            FaultRecordKind::PartitionHeal => "partition_heal",
            FaultRecordKind::ClockFault => "clock_fault",
            FaultRecordKind::Corrupted => "corrupted",
            FaultRecordKind::Duplicated => "duplicated",
            FaultRecordKind::Reordered => "reordered",
            FaultRecordKind::ChannelDrop => "channel_drop",
            FaultRecordKind::Parked => "parked",
            FaultRecordKind::Unparked => "unparked",
        }
    }
}

/// How many vector components a [`ClockStamp`] keeps in-struct before
/// spilling to the heap (mirrors `psn-clocks`' inline small-vector stamps).
pub const STAMP_INLINE: usize = 8;

/// A logical timestamp attached to a process event.
///
/// `psn-sim` cannot depend on `psn-clocks` (the dependency points the other
/// way), so the trace layer carries stamps in this self-contained form:
/// scalar value or vector of components, with up to [`STAMP_INLINE`]
/// components stored inline so stamping stays allocation-free for the
/// paper-scale deployments.
#[derive(Debug, Clone)]
pub enum ClockStamp {
    /// No logical stamp was available for this event.
    None,
    /// A scalar (Lamport-style) stamp.
    Scalar(u64),
    /// A vector (Mattern/Fidge-style) stamp.
    Vector(StampVec),
}

impl ClockStamp {
    /// Build a vector stamp from a component slice.
    pub fn vector(components: &[u64]) -> Self {
        ClockStamp::Vector(StampVec::from_slice(components))
    }

    /// The vector components, if this is a vector stamp.
    pub fn as_vector(&self) -> Option<&[u64]> {
        match self {
            ClockStamp::Vector(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Strict vector-clock order `self < other`: `Some(true/false)` when
    /// both are vector stamps of equal length, `None` otherwise.
    pub fn vector_lt(&self, other: &ClockStamp) -> Option<bool> {
        let (a, b) = (self.as_vector()?, other.as_vector()?);
        if a.len() != b.len() {
            return None;
        }
        let mut le = true;
        let mut ne = false;
        for (x, y) in a.iter().zip(b) {
            le &= x <= y;
            ne |= x != y;
        }
        Some(le && ne)
    }
}

impl PartialEq for ClockStamp {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ClockStamp::None, ClockStamp::None) => true,
            (ClockStamp::Scalar(a), ClockStamp::Scalar(b)) => a == b,
            (ClockStamp::Vector(a), ClockStamp::Vector(b)) => a.as_slice() == b.as_slice(),
            _ => false,
        }
    }
}

impl Serialize for ClockStamp {
    fn to_value(&self) -> Value {
        match self {
            ClockStamp::None => Value::Null,
            ClockStamp::Scalar(v) => Value::Map(vec![("scalar".to_string(), Value::UInt(*v))]),
            ClockStamp::Vector(v) => Value::Map(vec![(
                "vector".to_string(),
                Value::Seq(v.as_slice().iter().map(|&c| Value::UInt(c)).collect()),
            )]),
        }
    }
}

impl Deserialize for ClockStamp {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(ClockStamp::None),
            Value::Map(m) => match m.first() {
                Some((k, Value::UInt(s))) if k == "scalar" => Ok(ClockStamp::Scalar(*s)),
                Some((k, Value::Seq(seq))) if k == "vector" => {
                    let mut comps = Vec::with_capacity(seq.len());
                    for c in seq {
                        comps.push(u64::from_value(c)?);
                    }
                    Ok(ClockStamp::Vector(StampVec::from_slice(&comps)))
                }
                _ => Err(Error::custom("ClockStamp: unknown map shape")),
            },
            _ => Err(Error::custom("ClockStamp: expected null or map")),
        }
    }
}

/// The component storage of [`ClockStamp::Vector`]: inline up to
/// [`STAMP_INLINE`] components, heap spill above.
#[derive(Debug, Clone)]
pub struct StampVec {
    len: u32,
    inline: [u64; STAMP_INLINE],
    spill: Vec<u64>,
}

impl StampVec {
    /// Copy a component slice.
    pub fn from_slice(components: &[u64]) -> Self {
        let len = components.len();
        if len <= STAMP_INLINE {
            let mut inline = [0u64; STAMP_INLINE];
            inline[..len].copy_from_slice(components);
            StampVec { len: len as u32, inline, spill: Vec::new() }
        } else {
            StampVec { len: len as u32, inline: [0; STAMP_INLINE], spill: components.to_vec() }
        }
    }

    /// The components.
    pub fn as_slice(&self) -> &[u64] {
        if self.len as usize <= STAMP_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// One recorded trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global recording order within the run (dense from 0).
    pub seq: u64,
    /// Ground-truth simulation time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Backwards-compatible alias: records used to be called events.
pub type TraceEvent = TraceRecord;

/// The kinds of records a trace can hold.
///
/// Fields are the obvious actor ids / payload sizes / timer tags; `msg` is
/// the per-run transmission id (see [`MsgId`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TraceKind {
    /// A point-to-point transmission was attempted.
    Sent { from: ActorId, to: ActorId, bytes: usize, msg: MsgId },
    /// A message was delivered to its destination.
    Delivered { from: ActorId, to: ActorId, msg: MsgId },
    /// A message was dropped by the loss model.
    Lost { from: ActorId, to: ActorId, msg: MsgId },
    /// A timer fired at an actor.
    TimerFired { actor: ActorId, tag: u64 },
    /// A free-form annotation emitted by an actor (protocol-level events:
    /// "sensed x=5", "detected φ", …).
    Note { actor: ActorId, label: String },
    /// A logically stamped semantic process event (sense / send / receive /
    /// actuate / detect). `detail` is a kind-specific payload — see
    /// [`ProcessEventKind`].
    Process { actor: ActorId, kind: ProcessEventKind, stamp: ClockStamp, detail: u64 },
    /// A fault-plane event (crash, recovery, partition cut/heal, channel
    /// effect, clock fault). Only ever recorded when a non-empty
    /// [`crate::fault::FaultScript`] is installed, so fault-free golden
    /// traces never contain this kind. `detail` is kind-specific — see
    /// [`FaultRecordKind`].
    Fault { actor: ActorId, kind: FaultRecordKind, detail: u64 },
}

impl TraceKind {
    /// The actor this record belongs to (its staging ring): the acting /
    /// observing side of each kind.
    pub fn actor(&self) -> ActorId {
        match self {
            TraceKind::Sent { from, .. } | TraceKind::Lost { from, .. } => *from,
            TraceKind::Delivered { to, .. } => *to,
            TraceKind::TimerFired { actor, .. }
            | TraceKind::Note { actor, .. }
            | TraceKind::Process { actor, .. }
            | TraceKind::Fault { actor, .. } => *actor,
        }
    }

    /// The transmission id, for message records.
    pub fn msg_id(&self) -> Option<MsgId> {
        match self {
            TraceKind::Sent { msg, .. }
            | TraceKind::Delivered { msg, .. }
            | TraceKind::Lost { msg, .. } => Some(*msg),
            _ => None,
        }
    }
}

/// An opaque checkpoint of a [`Trace`]'s staging state, taken with
/// [`Trace::mark`] and consumed by [`Trace::rollback`] — the trace half of
/// the engine's optimistic-window undo.
#[derive(Debug, Clone)]
pub struct TraceMark {
    staged_len: usize,
    cursor: u128,
    intra: u32,
}

/// A record staged during the run, carrying its canonical sort key instead
/// of a pre-assigned sequence number.
#[derive(Debug, Clone)]
struct Staged {
    at: SimTime,
    cursor: u128,
    intra: u32,
    kind: TraceKind,
}

/// A structured record of a run.
///
/// During the run, records are staged with the canonical cursor of the
/// engine event that produced them; the first [`Trace::seal`] (the engine
/// seals at the end of [`crate::engine::Engine::run`]) sorts them into
/// canonical order and assigns the dense `seq` numbers. Sealing is
/// idempotent and recording may resume after it — post-hoc analyses (e.g.
/// detector verdicts) append (in plain recording order, after everything
/// the engine staged) and re-seal.
#[derive(Debug, Clone)]
pub struct Trace {
    records: Vec<TraceRecord>,
    staged: Vec<Staged>,
    cursor: u128,
    intra: u32,
    next_seq: u64,
    /// True until the first seal: records are staged under canonical keys.
    canonical: bool,
    enabled: bool,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// Cursor for records made while dispatching `on_start` to `actor`
    /// (starts precede every queue event at t = 0).
    #[inline]
    pub fn start_cursor(actor: ActorId) -> u128 {
        actor as u128
    }

    /// Cursor for records made while processing the queue event with
    /// canonical key `key` (see [`crate::queue::event_key`]). Orders after
    /// every start cursor; among themselves, event cursors order exactly
    /// like the events fire.
    #[inline]
    pub fn event_cursor(key: u64) -> u128 {
        (1u128 << 64) | key as u128
    }

    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            staged: Vec::new(),
            cursor: 0,
            intra: 0,
            next_seq: 0,
            canonical: true,
            enabled: true,
        }
    }

    /// A trace that discards everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        Trace { enabled: false, ..Trace::enabled() }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Preallocate staging space for a run over `n` actors (no-op when
    /// disabled). The engine calls this at run start so early recording
    /// does not regrow the buffer step by step.
    pub fn configure_actors(&mut self, n: usize) {
        if !self.enabled {
            return;
        }
        self.staged.reserve(n.saturating_mul(DEFAULT_RING_CAPACITY / 4));
    }

    /// Set the canonical cursor for subsequent records and reset the
    /// intra-event counter. The engine calls this once per dispatched
    /// event; direct users of `Trace` (benches, tests) can ignore it —
    /// records then sort by recording order within each timestamp.
    #[inline]
    pub fn set_cursor(&mut self, cursor: u128) {
        if !self.enabled {
            return;
        }
        self.cursor = cursor;
        self.intra = 0;
    }

    /// Record an event (no-op if disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.canonical {
            let intra = self.intra;
            self.intra += 1;
            self.staged.push(Staged { at, cursor: self.cursor, intra, kind });
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.records.push(TraceRecord { seq, at, kind });
        }
    }

    /// Checkpoint the staging state for a speculative window (see the
    /// engine's optimistic mode): pre-seal, staged records are append-only,
    /// so a `(staged length, cursor, intra)` triple restores the trace
    /// exactly. Meaningless after the first seal.
    pub fn mark(&self) -> TraceMark {
        debug_assert!(self.canonical, "mark() only applies to an unsealed trace");
        TraceMark { staged_len: self.staged.len(), cursor: self.cursor, intra: self.intra }
    }

    /// Discard every record staged since `mark` and restore the cursor
    /// state, undoing a rolled-back speculative window.
    pub fn rollback(&mut self, mark: &TraceMark) {
        if !self.enabled {
            return;
        }
        debug_assert!(self.canonical && self.staged.len() >= mark.staged_len);
        self.staged.truncate(mark.staged_len);
        self.cursor = mark.cursor;
        self.intra = mark.intra;
    }

    /// Move every record staged in `other` into this trace's staging
    /// buffer (the shard engine merges per-shard traces this way before
    /// the canonical seal). If this trace was already sealed (a second
    /// sharded run on one engine), the incoming records are sealed
    /// per-shard and appended in plain seq order instead.
    pub fn absorb(&mut self, other: &mut Trace) {
        if self.canonical {
            debug_assert!(other.canonical, "absorb requires an unsealed source");
            self.staged.append(&mut other.staged);
        } else {
            other.seal();
            self.records.reserve(other.records.len());
            for r in other.records.drain(..) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.records.push(TraceRecord { seq, at: r.at, kind: r.kind });
            }
        }
    }

    /// Sort staged records into canonical `(time, cursor, intra)` order and
    /// assign the dense `seq` numbers. Idempotent; recording may continue
    /// afterwards (appends keep seq order, so later seals are no-ops).
    pub fn seal(&mut self) {
        if !self.canonical {
            return;
        }
        self.canonical = false;
        self.staged.sort_unstable_by_key(|a| (a.at, a.cursor, a.intra));
        self.records.reserve(self.staged.len());
        for s in self.staged.drain(..) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.records.push(TraceRecord { seq, at: s.at, kind: s.kind });
        }
    }

    fn assert_sealed(&self) {
        debug_assert!(
            self.staged.is_empty(),
            "Trace::seal() must run before reading (the engine seals at end of run)"
        );
    }

    /// All records in recording order (which is chronological, since the
    /// engine advances time monotonically). Requires [`Trace::seal`].
    pub fn records(&self) -> &[TraceRecord] {
        self.assert_sealed();
        &self.records
    }

    /// Alias of [`Trace::records`] kept from the flat-event-list days.
    pub fn events(&self) -> &[TraceRecord] {
        self.records()
    }

    /// Number of recorded events (staged or sealed).
    pub fn len(&self) -> usize {
        self.records.len() + self.staged.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `Note` annotations from a given actor, with their times.
    pub fn notes_of(&self, actor: ActorId) -> Vec<(SimTime, &str)> {
        self.records()
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Note { actor: a, label } if *a == actor => Some((e.at, label.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Count records matching a predicate.
    pub fn count_matching(&self, f: impl Fn(&TraceKind) -> bool) -> usize {
        self.records().iter().filter(|e| f(&e.kind)).count()
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        self.assert_sealed();
        Value::Map(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            (
                "records".to_string(),
                Value::Seq(self.records.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("Trace: expected map"))?;
        let mut trace = Trace::disabled();
        for (k, val) in m {
            match k.as_str() {
                "enabled" => trace.enabled = bool::from_value(val)?,
                "records" => {
                    let seq = val.as_seq().ok_or_else(|| Error::custom("Trace.records: seq"))?;
                    trace.records =
                        seq.iter().map(TraceRecord::from_value).collect::<Result<Vec<_>, _>>()?;
                }
                _ => {}
            }
        }
        trace.next_seq = trace.records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        // A deserialized trace was sealed when serialized: appends continue
        // in plain seq order.
        trace.canonical = false;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(i: u64) -> MsgId {
        MsgId(i)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::TimerFired { actor: 0, tag: 1 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_millis(1),
            TraceKind::Sent { from: 0, to: 1, bytes: 8, msg: msg(0) },
        );
        t.record(SimTime::from_millis(2), TraceKind::Delivered { from: 0, to: 1, msg: msg(0) });
        t.seal();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].at, SimTime::from_millis(1));
        assert!(matches!(t.records()[1].kind, TraceKind::Delivered { .. }));
    }

    #[test]
    fn seal_preserves_recording_order_without_cursors() {
        // With no explicit cursors, records at distinct times keep their
        // recording order and get dense seqs.
        let mut t = Trace::enabled();
        for i in 0..20u64 {
            let actor = (i % 3) as ActorId;
            t.record(SimTime::from_millis(i), TraceKind::TimerFired { actor, tag: i });
        }
        t.seal();
        let seqs: Vec<u64> = t.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        let tags: Vec<u64> = t
            .records()
            .iter()
            .map(|r| match r.kind {
                TraceKind::TimerFired { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seal_orders_by_cursor_regardless_of_staging_order() {
        // Two "shards" record the same logical events under canonical
        // cursors; merging either way round seals to the same sequence.
        let mk = |order: &[u64]| {
            let mut parts: Vec<Trace> = Vec::new();
            for &k in order {
                let mut t = Trace::enabled();
                t.set_cursor(Trace::event_cursor(k));
                t.record(SimTime::from_millis(5), TraceKind::TimerFired { actor: 0, tag: k });
                t.record(SimTime::from_millis(5), TraceKind::TimerFired { actor: 0, tag: 100 + k });
                parts.push(t);
            }
            let mut all = Trace::enabled();
            for p in &mut parts {
                all.absorb(p);
            }
            all.seal();
            all.records()
                .iter()
                .map(|r| match r.kind {
                    TraceKind::TimerFired { tag, .. } => tag,
                    _ => unreachable!(),
                })
                .collect::<Vec<u64>>()
        };
        let a = mk(&[3, 1, 2]);
        let b = mk(&[2, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 101, 2, 102, 3, 103]);
    }

    #[test]
    fn start_cursors_order_before_event_cursors() {
        assert!(Trace::start_cursor(usize::MAX) < Trace::event_cursor(0));
        assert!(Trace::event_cursor(1) < Trace::event_cursor(2));
    }

    #[test]
    fn seal_is_idempotent_and_recording_resumes() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::TimerFired { actor: 0, tag: 0 });
        t.seal();
        t.seal();
        assert_eq!(t.len(), 1);
        // Post-hoc append (the detector-verdict pattern), then re-seal.
        t.record(
            SimTime::from_millis(2),
            TraceKind::Process {
                actor: 1,
                kind: ProcessEventKind::Detect,
                stamp: ClockStamp::Scalar(7),
                detail: 0,
            },
        );
        t.seal();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].seq, 1);
    }

    #[test]
    fn notes_filter_by_actor() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::Note { actor: 3, label: "sensed".into() });
        t.record(SimTime::from_millis(2), TraceKind::Note { actor: 4, label: "other".into() });
        t.record(SimTime::from_millis(5), TraceKind::Note { actor: 3, label: "detected".into() });
        t.seal();
        let notes = t.notes_of(3);
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].1, "sensed");
        assert_eq!(notes[1].0, SimTime::from_millis(5));
    }

    #[test]
    fn count_matching_counts() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(SimTime::from_millis(i), TraceKind::Lost { from: 0, to: 1, msg: msg(i) });
        }
        t.record(SimTime::from_millis(9), TraceKind::Delivered { from: 0, to: 1, msg: msg(5) });
        t.seal();
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Lost { .. })), 5);
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Delivered { .. })), 1);
    }

    #[test]
    fn stamp_vec_spills_above_inline_capacity() {
        let small: Vec<u64> = (0..STAMP_INLINE as u64).collect();
        let big: Vec<u64> = (0..(STAMP_INLINE as u64 + 5)).collect();
        assert_eq!(StampVec::from_slice(&small).as_slice(), &small[..]);
        assert_eq!(StampVec::from_slice(&big).as_slice(), &big[..]);
    }

    #[test]
    fn vector_lt_is_strict_componentwise_order() {
        let a = ClockStamp::vector(&[1, 0, 2]);
        let b = ClockStamp::vector(&[1, 1, 2]);
        let c = ClockStamp::vector(&[0, 5, 0]);
        assert_eq!(a.vector_lt(&b), Some(true));
        assert_eq!(b.vector_lt(&a), Some(false));
        assert_eq!(a.vector_lt(&a), Some(false), "not reflexive: strict order");
        assert_eq!(a.vector_lt(&c), Some(false));
        assert_eq!(c.vector_lt(&a), Some(false), "concurrent either way");
        assert_eq!(a.vector_lt(&ClockStamp::Scalar(3)), None);
    }

    #[test]
    fn stamps_round_trip_through_values() {
        for stamp in [
            ClockStamp::None,
            ClockStamp::Scalar(42),
            ClockStamp::vector(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]),
        ] {
            let back = ClockStamp::from_value(&stamp.to_value()).expect("round trip");
            assert_eq!(back, stamp);
        }
    }
}
