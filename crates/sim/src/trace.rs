//! Execution traces.
//!
//! When tracing is enabled, the engine records every network-plane action
//! with its ground-truth time. Offline analyses (lattice construction,
//! accuracy scoring) read these traces; they are also invaluable when
//! debugging a protocol.

use serde::{Deserialize, Serialize};

use crate::network::ActorId;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Ground-truth simulation time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of events a trace can record.
///
/// Fields are the obvious actor ids / payload sizes / timer tags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TraceKind {
    /// A point-to-point transmission was attempted.
    Sent { from: ActorId, to: ActorId, bytes: usize },
    /// A message was delivered to its destination.
    Delivered { from: ActorId, to: ActorId },
    /// A message was dropped by the loss model.
    Lost { from: ActorId, to: ActorId },
    /// A timer fired at an actor.
    TimerFired { actor: ActorId, tag: u64 },
    /// A free-form annotation emitted by an actor (protocol-level events:
    /// "sensed x=5", "detected φ", …).
    Note { actor: ActorId, label: String },
}

/// A chronological record of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace { events: Vec::new(), enabled: true }
    }

    /// A trace that discards everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        Trace { events: Vec::new(), enabled: false }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op if disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { at, kind });
        }
    }

    /// All recorded events, in recording order (which is chronological,
    /// since the engine advances time monotonically).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All `Note` annotations from a given actor, with their times.
    pub fn notes_of(&self, actor: ActorId) -> Vec<(SimTime, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Note { actor: a, label } if *a == actor => Some((e.at, label.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Count events matching a predicate.
    pub fn count_matching(&self, f: impl Fn(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| f(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::TimerFired { actor: 0, tag: 1 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::Sent { from: 0, to: 1, bytes: 8 });
        t.record(SimTime::from_millis(2), TraceKind::Delivered { from: 0, to: 1 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].at, SimTime::from_millis(1));
        assert!(matches!(t.events()[1].kind, TraceKind::Delivered { .. }));
    }

    #[test]
    fn notes_filter_by_actor() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::Note { actor: 3, label: "sensed".into() });
        t.record(SimTime::from_millis(2), TraceKind::Note { actor: 4, label: "other".into() });
        t.record(SimTime::from_millis(5), TraceKind::Note { actor: 3, label: "detected".into() });
        let notes = t.notes_of(3);
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].1, "sensed");
        assert_eq!(notes[1].0, SimTime::from_millis(5));
    }

    #[test]
    fn count_matching_counts() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(SimTime::from_millis(i), TraceKind::Lost { from: 0, to: 1 });
        }
        t.record(SimTime::from_millis(9), TraceKind::Delivered { from: 0, to: 1 });
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Lost { .. })), 5);
        assert_eq!(t.count_matching(|k| matches!(k, TraceKind::Delivered { .. })), 1);
    }
}
