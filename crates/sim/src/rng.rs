//! Deterministic, splittable random-number streams.
//!
//! Every stochastic entity in a simulation (each sensor process, the world
//! plane, each network channel, …) draws from its **own** stream, derived
//! from the run's master seed and a stable stream identifier. This makes
//! runs reproducible bit-for-bit and — crucially for parameter sweeps —
//! means that changing one entity's behaviour does not perturb the random
//! numbers any other entity sees (common random numbers across sweep cells).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// SplitMix64 step: used to derive stream seeds from `(master, stream_id)`.
/// This is the standard seeding recipe recommended for xoshiro-family
/// generators; it guarantees well-separated streams even for adjacent ids.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A factory for per-entity random streams, all derived from one master seed.
#[derive(Debug, Clone)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Create a factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the stream with the given stable identifier.
    ///
    /// The same `(master, id)` pair always yields an identical stream.
    pub fn stream(&self, id: u64) -> RngStream {
        let mut s = self.master ^ id.wrapping_mul(0xA24B_AED4_963E_E407);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&a.to_le_bytes());
        seed[8..16].copy_from_slice(&b.to_le_bytes());
        seed[16..24].copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        seed[24..].copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        RngStream { rng: SmallRng::from_seed(seed) }
    }

    /// Derive a stream from a string label (hashed with FNV-1a), for
    /// entities that are more naturally named than numbered.
    ///
    /// The engine derives its stochastic draws from **per-sender** labels —
    /// `"engine.network.{sender}"` for delivery jitter and
    /// `"engine.faults.{sender}"` for channel-fault rolls — rather than one
    /// shared stream. That choice is what makes the sharded engine
    /// bit-identical to the sequential one: a shard only needs its own
    /// senders' streams, so the draw sequence is independent of how actors
    /// are interleaved across shards.
    pub fn labeled_stream(&self, label: &str) -> RngStream {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.stream(h)
    }
}

/// One deterministic random stream with simulation-oriented helpers.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
}

impl RngStream {
    /// A uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)` (returns `lo` if the range is empty).
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.rng.gen_range(0..n)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// An exponentially distributed draw with the given mean (inverse rate).
    ///
    /// Used for Poisson inter-arrival times of world-plane events.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inversion: -mean * ln(U), with U in (0, 1] to avoid ln(0).
        let u = 1.0 - self.uniform01();
        -mean * u.ln()
    }

    /// An exponentially distributed duration with the given mean duration.
    pub fn exponential_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// A standard-normal draw (Box–Muller; one value per call for
    /// reproducibility under refactoring).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform01();
        let u2: f64 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A uniformly drawn duration in `[lo, hi]` inclusive.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.uniform_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream(7);
        let mut b = f.stream(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_ids_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream(1);
        let mut b = f.stream(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams should not collide");
    }

    #[test]
    fn different_master_differs() {
        let mut a = RngFactory::new(1).stream(0);
        let mut b = RngFactory::new(2).stream(0);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn labeled_stream_is_stable() {
        let f = RngFactory::new(9);
        let mut a = f.labeled_stream("world");
        let mut b = f.labeled_stream("world");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = f.labeled_stream("network");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform01_in_range() {
        let mut s = RngFactory::new(3).stream(0);
        for _ in 0..10_000 {
            let x = s.uniform01();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_bounds_inclusive() {
        let mut s = RngFactory::new(3).stream(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = s.uniform_u64(5, 8);
            assert!((5..=8).contains(&x));
            saw_lo |= x == 5;
            saw_hi |= x == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut s = RngFactory::new(11).stream(0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| s.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut s = RngFactory::new(13).stream(0);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std was {}", var.sqrt());
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut s = RngFactory::new(1).stream(0);
        assert!(!s.bernoulli(0.0));
        assert!(s.bernoulli(1.0));
        assert!(!s.bernoulli(-0.5));
        assert!(s.bernoulli(1.5));
        let hits = (0..100_000).filter(|_| s.bernoulli(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p was {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut s = RngFactory::new(5).stream(0);
        let mut xs: Vec<u32> = (0..50).collect();
        s.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn uniform_duration_in_bounds() {
        let mut s = RngFactory::new(5).stream(9);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = s.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }
}
