//! Event providers: where externally injected events come from.
//!
//! The batch pipeline pre-builds a world timeline and injects it wholesale
//! before [`Engine::run`](crate::engine::Engine::run). A long-running
//! service instead advances the engine **incrementally**
//! ([`Engine::step_until`](crate::engine::Engine::step_until)) and pulls
//! events from whatever source it has — a pre-built timeline, a seeded
//! generator, or a live channel fed by ingest connections. [`EventProvider`]
//! abstracts the source so the same driver loop serves all three:
//!
//! - [`TimelineProvider`] — a pre-built event list (the batch path);
//! - [`GeneratorProvider`] — events synthesised on demand by a closure
//!   (seeded load generators, chaos drivers);
//! - [`ChannelProvider`] — events arriving over an `mpsc` channel from
//!   other threads (the wire-ingest path of `psn-serve`).
//!
//! The contract mirrors the engine's stepping watermark: `poll(up_to)`
//! surrenders every available event with `at < up_to`, in the order the
//! source produced them. The driver injects them (typically via
//! `try_inject`, so a source that emits an event behind the engine clock
//! gets a typed error, not a panic) and then steps the engine to `up_to`.

use std::sync::mpsc::{Receiver, TryRecvError};

use crate::engine::Message;
use crate::network::ActorId;
use crate::time::SimTime;

/// One externally supplied event: deliver `msg` to `to` at simulation time
/// `at`, bypassing the network's delay/loss models (the source is outside
/// the network plane — a world sensor, a wire client, a replayed log).
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalEvent<M> {
    /// Delivery time (ground truth).
    pub at: SimTime,
    /// Destination actor.
    pub to: ActorId,
    /// Conventional source id (often the destination itself for
    /// world-plane sense events).
    pub from: ActorId,
    /// The payload.
    pub msg: M,
}

/// A source of externally injected events, polled by watermark.
pub trait EventProvider<M: Message>: Send {
    /// Append every available event with `at < up_to` to `sink`, in source
    /// order. Events at or past `up_to` stay with the provider for a later
    /// poll. May be called with a non-decreasing `up_to` sequence only.
    fn poll(&mut self, up_to: SimTime, sink: &mut Vec<ExternalEvent<M>>);

    /// True when the source will never yield another event (list drained,
    /// generator done, channel disconnected and buffer empty). A live
    /// channel with connected senders is never exhausted.
    fn exhausted(&self) -> bool;
}

/// A pre-built event list (the batch timeline source).
///
/// Events are yielded in list order; for incremental polling the list must
/// be non-decreasing in `at` (a pre-built world timeline is). A single
/// `poll(SimTime::MAX)` reproduces the batch pipeline's injection sequence
/// exactly.
pub struct TimelineProvider<M> {
    events: Vec<ExternalEvent<M>>,
    cursor: usize,
}

impl<M> TimelineProvider<M> {
    /// Wrap a pre-built event list.
    pub fn new(events: Vec<ExternalEvent<M>>) -> Self {
        TimelineProvider { events, cursor: 0 }
    }

    /// Events not yet surrendered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl<M: Message> EventProvider<M> for TimelineProvider<M> {
    fn poll(&mut self, up_to: SimTime, sink: &mut Vec<ExternalEvent<M>>) {
        while self.cursor < self.events.len() && self.events[self.cursor].at < up_to {
            sink.push(self.events[self.cursor].clone());
            self.cursor += 1;
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor == self.events.len()
    }
}

/// Events synthesised on demand by a closure.
///
/// On each poll the closure sees the half-open window `[from, up_to)` it
/// must cover and appends that window's events to the sink; it returns
/// `false` once it will never produce another event. Windows never overlap
/// and never repeat, so a seeded closure yields a deterministic stream
/// regardless of how the driver paces its polls.
pub struct GeneratorProvider<M> {
    #[allow(clippy::type_complexity)]
    gen: Box<dyn FnMut(SimTime, SimTime, &mut Vec<ExternalEvent<M>>) -> bool + Send>,
    covered_to: SimTime,
    done: bool,
}

impl<M> GeneratorProvider<M> {
    /// Wrap a generator closure `gen(from, up_to, sink) -> more`.
    pub fn new(
        gen: impl FnMut(SimTime, SimTime, &mut Vec<ExternalEvent<M>>) -> bool + Send + 'static,
    ) -> Self {
        GeneratorProvider { gen: Box::new(gen), covered_to: SimTime::ZERO, done: false }
    }
}

impl<M: Message> EventProvider<M> for GeneratorProvider<M> {
    fn poll(&mut self, up_to: SimTime, sink: &mut Vec<ExternalEvent<M>>) {
        if self.done || up_to <= self.covered_to {
            return;
        }
        let from = self.covered_to;
        self.covered_to = up_to;
        if !(self.gen)(from, up_to, sink) {
            self.done = true;
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }
}

/// Events arriving over a channel from other threads (live wire ingest).
///
/// `poll` drains whatever has arrived so far; events at or past the
/// watermark are buffered (in arrival order) for later polls. The provider
/// is exhausted only once every sender is dropped *and* the buffer is
/// empty.
pub struct ChannelProvider<M> {
    rx: Receiver<ExternalEvent<M>>,
    /// Arrived but not yet due (in arrival order).
    buffer: Vec<ExternalEvent<M>>,
    disconnected: bool,
}

impl<M> ChannelProvider<M> {
    /// Wrap the receiving half of an ingest channel.
    pub fn new(rx: Receiver<ExternalEvent<M>>) -> Self {
        ChannelProvider { rx, buffer: Vec::new(), disconnected: false }
    }

    /// Events buffered past the last watermark.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl<M: Message> EventProvider<M> for ChannelProvider<M> {
    fn poll(&mut self, up_to: SimTime, sink: &mut Vec<ExternalEvent<M>>) {
        loop {
            match self.rx.try_recv() {
                Ok(ev) => self.buffer.push(ev),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        // Stable partition preserves arrival order among the due events.
        let mut kept = Vec::new();
        for ev in self.buffer.drain(..) {
            if ev.at < up_to {
                sink.push(ev);
            } else {
                kept.push(ev);
            }
        }
        self.buffer = kept;
    }

    fn exhausted(&self) -> bool {
        self.disconnected && self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[derive(Clone, Debug, PartialEq)]
    struct Tick(u64);
    impl Message for Tick {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    fn ev(ms: u64, k: u64) -> ExternalEvent<Tick> {
        ExternalEvent { at: SimTime::from_millis(ms), to: 0, from: 0, msg: Tick(k) }
    }

    #[test]
    fn timeline_provider_respects_the_watermark() {
        let mut p = TimelineProvider::new(vec![ev(10, 0), ev(20, 1), ev(30, 2)]);
        let mut sink = Vec::new();
        p.poll(SimTime::from_millis(20), &mut sink);
        assert_eq!(sink.len(), 1, "events at the watermark stay pending");
        assert!(!p.exhausted());
        p.poll(SimTime::from_millis(31), &mut sink);
        assert_eq!(sink.len(), 3);
        assert!(p.exhausted());
        assert_eq!(sink, vec![ev(10, 0), ev(20, 1), ev(30, 2)]);
    }

    #[test]
    fn one_max_poll_reproduces_the_batch_sequence() {
        let events = vec![ev(10, 0), ev(20, 1), ev(15, 2)]; // list order, not time order
        let mut p = TimelineProvider::new(events.clone());
        let mut sink = Vec::new();
        p.poll(SimTime::MAX, &mut sink);
        assert_eq!(sink, events, "batch injection order is the list order");
        assert!(p.exhausted());
    }

    #[test]
    fn generator_provider_covers_disjoint_windows() {
        let mut p = GeneratorProvider::new(|from: SimTime, up_to: SimTime, sink: &mut Vec<_>| {
            // One event per whole millisecond in [from, up_to).
            let mut ms = from.as_nanos().div_ceil(1_000_000);
            while SimTime::from_millis(ms) < up_to {
                sink.push(ev(ms, ms));
                ms += 1;
            }
            up_to < SimTime::from_millis(5)
        });
        let mut sink = Vec::new();
        p.poll(SimTime::from_millis(2), &mut sink);
        p.poll(SimTime::from_millis(2), &mut sink); // same watermark: no repeat
        p.poll(SimTime::from_millis(5), &mut sink);
        assert_eq!(sink.iter().map(|e| e.msg.0).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(p.exhausted());
        p.poll(SimTime::from_millis(9), &mut sink);
        assert_eq!(sink.len(), 5, "a done generator yields nothing more");
    }

    #[test]
    fn channel_provider_buffers_past_watermark_until_due() {
        let (tx, rx) = mpsc::channel();
        let mut p = ChannelProvider::new(rx);
        tx.send(ev(5, 0)).unwrap();
        tx.send(ev(50, 1)).unwrap();
        let mut sink = Vec::new();
        p.poll(SimTime::from_millis(10), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(p.buffered(), 1);
        assert!(!p.exhausted());
        drop(tx);
        p.poll(SimTime::from_millis(10), &mut sink);
        assert!(!p.exhausted(), "buffered events keep the source alive");
        p.poll(SimTime::from_millis(60), &mut sink);
        assert_eq!(sink.len(), 2);
        assert!(p.exhausted(), "disconnected and drained");
    }
}
