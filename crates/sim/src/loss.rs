//! Message-loss models.
//!
//! Strobe-clock protocols broadcast their clocks; the paper notes (§4.2.2)
//! that "a message loss may result in the wrong detection of the predicate
//! in the temporal vicinity of the lost message. However, there will be no
//! long-term ripple effects." Experiment E9 injects losses from these models
//! and verifies that claim.

use serde::{Deserialize, Serialize};

use crate::rng::RngStream;

/// A message-loss model. Stateful variants carry their channel state, so use
/// one instance per channel (or one shared instance for a broadcast medium).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Lossless channel.
    None,
    /// Each message is independently lost with probability `p`.
    Bernoulli {
        /// Per-message loss probability.
        p: f64,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain. In the *good*
    /// state messages are lost with probability `loss_good`, in the *bad*
    /// state with `loss_bad`; the chain moves good→bad with probability
    /// `p_gb` and bad→good with `p_bg`, evaluated per message.
    GilbertElliott {
        /// Probability of moving good → bad, per message.
        p_gb: f64,
        /// Probability of moving bad → good, per message.
        p_bg: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state: `true` = bad (bursty) state.
        in_bad: bool,
    },
}

impl LossModel {
    /// A Gilbert–Elliott model starting in the good state.
    pub fn bursty(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad, in_bad: false }
    }

    /// Decide whether the next message is lost (advances burst state).
    pub fn is_lost(&mut self, rng: &mut RngStream) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.bernoulli(*p),
            LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad, in_bad } => {
                // Transition first, then sample loss in the new state.
                if *in_bad {
                    if rng.bernoulli(*p_bg) {
                        *in_bad = false;
                    }
                } else if rng.bernoulli(*p_gb) {
                    *in_bad = true;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.bernoulli(p)
            }
        }
    }

    /// The long-run average loss probability of this model.
    pub fn steady_state_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p.clamp(0.0, 1.0),
            LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad, .. } => {
                if p_gb + p_bg == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_gb / (p_gb + p_bg);
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> RngStream {
        RngFactory::new(123).stream(5)
    }

    #[test]
    fn lossless_never_drops() {
        let mut r = rng();
        let mut m = LossModel::None;
        assert!((0..1000).all(|_| !m.is_lost(&mut r)));
        assert_eq!(m.steady_state_loss(), 0.0);
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut r = rng();
        let mut m = LossModel::Bernoulli { p: 0.2 };
        let lost = (0..100_000).filter(|_| m.is_lost(&mut r)).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate was {rate}");
        assert!((m.steady_state_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut r = rng();
        let mut m = LossModel::bursty(0.05, 0.20, 0.01, 0.50);
        let n = 400_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut r)).count();
        let rate = lost as f64 / n as f64;
        let expected = m.steady_state_loss();
        assert!((rate - expected).abs() < 0.01, "rate {rate} vs expected {expected}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Losses should cluster: probability of a loss immediately following
        // a loss should exceed the marginal loss rate.
        let mut r = rng();
        let mut m = LossModel::bursty(0.02, 0.10, 0.001, 0.8);
        let samples: Vec<bool> = (0..400_000).map(|_| m.is_lost(&mut r)).collect();
        let marginal = samples.iter().filter(|&&x| x).count() as f64 / samples.len() as f64;
        let mut after_loss = 0usize;
        let mut loss_then_loss = 0usize;
        for w in samples.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    loss_then_loss += 1;
                }
            }
        }
        let conditional = loss_then_loss as f64 / after_loss as f64;
        assert!(
            conditional > 2.0 * marginal,
            "conditional {conditional} should exceed 2x marginal {marginal}"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The empirical long-run loss rate of any Gilbert–Elliott
            /// chain matches the analytic stationary loss probability
            /// π_bad·loss_bad + (1−π_bad)·loss_good. Transition
            /// probabilities are bounded away from 0 so the chain mixes
            /// within the sample budget.
            #[test]
            fn gilbert_elliott_empirical_rate_matches_stationary(
                p_gb in 0.02f64..0.5,
                p_bg in 0.02f64..0.5,
                loss_good in 0.0f64..0.2,
                loss_bad in 0.3f64..1.0,
                start_bad in 0u8..2,
                seed in 0u64..1_000,
            ) {
                let mut m = LossModel::GilbertElliott {
                    p_gb, p_bg, loss_good, loss_bad, in_bad: start_bad == 1,
                };
                let expected = m.steady_state_loss();
                let mut r = RngFactory::new(seed).stream(1);
                let n = 200_000u32;
                let lost = (0..n).filter(|_| m.is_lost(&mut r)).count();
                let rate = lost as f64 / n as f64;
                // Chebyshev-ish slack: burstier chains (small transition
                // probabilities) have higher variance in the sample mean.
                let tol = 0.015 + 0.03 * (0.02 / p_gb.min(p_bg));
                prop_assert!(
                    (rate - expected).abs() < tol,
                    "rate {} vs stationary {} (tol {})", rate, expected, tol
                );
            }

            /// A fixed `(model, stream)` pair replays the identical loss
            /// sequence — burst state and RNG advance in lock-step, which
            /// the engine's replayability depends on.
            #[test]
            fn gilbert_elliott_is_deterministic_under_a_fixed_stream(
                p_gb in 0.0f64..1.0,
                p_bg in 0.0f64..1.0,
                loss_good in 0.0f64..1.0,
                loss_bad in 0.0f64..1.0,
                seed in 0u64..1_000,
            ) {
                let run = || {
                    let mut m = LossModel::bursty(p_gb, p_bg, loss_good, loss_bad);
                    let mut r = RngFactory::new(seed).labeled_stream("engine.network");
                    (0..2_000).map(|_| m.is_lost(&mut r)).collect::<Vec<bool>>()
                };
                let (a, b) = (run(), run());
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn steady_state_handles_degenerate_chain() {
        let m = LossModel::GilbertElliott {
            p_gb: 0.0,
            p_bg: 0.0,
            loss_good: 0.1,
            loss_bad: 0.9,
            in_bad: false,
        };
        assert!((m.steady_state_loss() - 0.1).abs() < 1e-12);
    }
}
