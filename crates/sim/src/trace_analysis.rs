//! Post-hoc analysis of a structured [`Trace`].
//!
//! [`TraceAnalysis`] indexes a sealed trace once and answers the questions
//! the paper keeps asking of an execution:
//!
//! - **Message pairing** — every `Sent` matched to its `Delivered` (or
//!   `Lost`) by [`MsgId`](crate::trace::MsgId), giving per-channel latency/byte histograms
//!   ([`TraceAnalysis::channel_stats`]).
//! - **Happened-before** — the causal DAG *reconstructed from the recorded
//!   vector stamps* ([`TraceAnalysis::hb_edges`]): an edge `e → f` is in
//!   the covering relation of `V(e) < V(f)`, so the DAG's reachability is
//!   exactly vector-stamp order. Note this is deliberately not the
//!   physical message graph: strobe deliveries merge strobe clocks without
//!   ticking the causal vector, so physical edges would overapproximate
//!   causality.
//! - **Critical paths** — the chain of records behind an event
//!   ([`TraceAnalysis::critical_path`]): walk a `Delivered` back to its
//!   `Sent` (one message hop = one latency attribution) and every other
//!   record back to its actor-local predecessor, ending at the originating
//!   cause (for a detection: the world-plane sense injection). The
//!   detector-verdict variant [`TraceAnalysis::detection_chain`] binds a
//!   `Detect` record to the report delivery that completed the occurrence.
//! - **Loss vicinity** — merged time windows around every `Lost` record
//!   ([`TraceAnalysis::loss_windows`]); experiment E9's far-from-loss
//!   filter is [`TraceAnalysis::near_any_loss`].

use std::collections::{BTreeMap, HashMap};

use crate::network::ActorId;
use crate::time::{SimDuration, SimTime};
use crate::trace::{ProcessEventKind, Trace, TraceKind, TraceRecord};

/// Log₂-bucketed latency histogram plus exact count/sum/min/max. Bucket
/// `k` counts samples with `ns` in `[2^k, 2^(k+1))` (bucket 0 also takes
/// 0 ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum_ns: 0, min_ns: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    /// Add one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        let bucket = (64 - ns.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket] += 1;
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.count += 1;
        self.sum_ns += u128::from(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> SimDuration {
        SimDuration(self.min_ns)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration(self.max_ns)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration(0)
        } else {
            SimDuration((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// The log₂ bucket counts (bucket `k` ≈ `[2^k, 2^(k+1))` ns).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

/// Aggregates for one directed channel `(from, to)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions attempted (`Sent` records).
    pub sent: u64,
    /// Of those, dropped by the loss model.
    pub lost: u64,
    /// Payload bytes attempted.
    pub bytes: u64,
    /// Delivery latency distribution of the messages that arrived.
    pub latency: LatencyHistogram,
}

/// A cause→effect chain of trace records with per-hop latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Indices into [`Trace::records`], cause first, target last.
    pub records: Vec<usize>,
    /// `hops[i]` = time from `records[i]` to `records[i+1]`
    /// (`records.len() - 1` entries).
    pub hops: Vec<SimDuration>,
    /// End-to-end time (the sum of `hops`).
    pub total: SimDuration,
}

/// Index over a sealed [`Trace`]. Build once, query many times.
pub struct TraceAnalysis<'a> {
    records: &'a [TraceRecord],
    /// `MsgId.0` → index of the `Sent` record.
    send_of: HashMap<u64, usize>,
    /// `MsgId.0` → index of the `Delivered` record.
    delivery_of: HashMap<u64, usize>,
    /// Per record: index of the previous record of the same actor.
    local_prev: Vec<Option<usize>>,
    channels: BTreeMap<(ActorId, ActorId), ChannelStats>,
    /// Times of `Lost` records, ascending.
    loss_times: Vec<SimTime>,
    /// Times of `Fault` records, ascending.
    fault_times: Vec<SimTime>,
}

impl<'a> TraceAnalysis<'a> {
    /// Index `trace` (must be sealed — the engine seals at end of run).
    pub fn build(trace: &'a Trace) -> Self {
        let records = trace.records();
        let mut send_of = HashMap::new();
        let mut delivery_of = HashMap::new();
        let mut local_prev = vec![None; records.len()];
        let mut last_of_actor: HashMap<ActorId, usize> = HashMap::new();
        let mut channels: BTreeMap<(ActorId, ActorId), ChannelStats> = BTreeMap::new();
        let mut loss_times = Vec::new();
        let mut fault_times = Vec::new();

        for (i, r) in records.iter().enumerate() {
            let actor = r.kind.actor();
            local_prev[i] = last_of_actor.insert(actor, i);
            match &r.kind {
                TraceKind::Sent { from, to, bytes, msg } => {
                    send_of.insert(msg.0, i);
                    let ch = channels.entry((*from, *to)).or_default();
                    ch.sent += 1;
                    ch.bytes += *bytes as u64;
                }
                TraceKind::Delivered { msg, .. } => {
                    delivery_of.insert(msg.0, i);
                    if let Some(&s) = send_of.get(&msg.0) {
                        if let TraceKind::Sent { from, to, .. } = &records[s].kind {
                            let ch = channels.entry((*from, *to)).or_default();
                            ch.latency.record(r.at - records[s].at);
                        }
                    }
                }
                TraceKind::Lost { from, to, .. } => {
                    channels.entry((*from, *to)).or_default().lost += 1;
                    loss_times.push(r.at);
                }
                TraceKind::Fault { .. } => fault_times.push(r.at),
                _ => {}
            }
        }
        // Seal order is by seq, not time: records appended after a seal
        // (detector verdicts, merged traces) carry later seqs but may carry
        // earlier times, so the binary-searched indices below must be
        // sorted here, not trusted.
        loss_times.sort_unstable();
        fault_times.sort_unstable();
        TraceAnalysis {
            records,
            send_of,
            delivery_of,
            local_prev,
            channels,
            loss_times,
            fault_times,
        }
    }

    /// The records this analysis indexes.
    pub fn records(&self) -> &'a [TraceRecord] {
        self.records
    }

    /// Per-channel transmission counts, byte totals, and latency
    /// histograms, keyed `(from, to)` in deterministic order.
    pub fn channel_stats(&self) -> &BTreeMap<(ActorId, ActorId), ChannelStats> {
        &self.channels
    }

    /// The undirected traffic-affinity graph for
    /// [`crate::engine::ShardPlan::by_affinity`]: per actor pair `(a, b)`
    /// with `a < b`, the total transmissions in either direction. Sorted by
    /// `(a, b)` — deterministic for a fixed trace, so the derived plan is
    /// too.
    pub fn affinity_edges(&self) -> Vec<(ActorId, ActorId, u64)> {
        let mut und: BTreeMap<(ActorId, ActorId), u64> = BTreeMap::new();
        for (&(from, to), cs) in &self.channels {
            if from == to {
                continue;
            }
            let key = if from < to { (from, to) } else { (to, from) };
            *und.entry(key).or_default() += cs.sent;
        }
        und.into_iter().map(|((a, b), w)| (a, b, w)).collect()
    }

    /// Index of the `Sent` record for a transmission id.
    pub fn send_of(&self, msg: u64) -> Option<usize> {
        self.send_of.get(&msg).copied()
    }

    /// Index of the `Delivered` record for a transmission id.
    pub fn delivery_of(&self, msg: u64) -> Option<usize> {
        self.delivery_of.get(&msg).copied()
    }

    /// Indices of the `Process` records carrying vector stamps — the nodes
    /// of the happened-before DAG.
    pub fn hb_nodes(&self) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(&r.kind, TraceKind::Process { stamp, .. } if stamp.as_vector().is_some())
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Did `a` causally precede `b`, per the recorded vector stamps?
    /// `false` when either record carries no vector stamp.
    pub fn happened_before(&self, a: usize, b: usize) -> bool {
        let stamp = |i: usize| match &self.records[i].kind {
            TraceKind::Process { stamp, .. } => Some(stamp),
            _ => None,
        };
        match (stamp(a), stamp(b)) {
            (Some(sa), Some(sb)) => sa.vector_lt(sb).unwrap_or(false),
            _ => false,
        }
    }

    /// The happened-before DAG over [`TraceAnalysis::hb_nodes`],
    /// reconstructed from the vector stamps as the **covering relation**:
    /// `(a, b)` is an edge iff `V(a) < V(b)` with no recorded `c` strictly
    /// between. The transitive closure of these edges is exactly
    /// stamp order — the property `tests/determinism.rs` proves.
    ///
    /// Cost is cubic in the node count; intended for post-mortem debugging
    /// and tests, not for the simulation hot path.
    pub fn hb_edges(&self) -> Vec<(usize, usize)> {
        let nodes = self.hb_nodes();
        let mut edges = Vec::new();
        // Records are in recording order and causality respects it (a
        // cause is always recorded before its effects), so only scan
        // forward pairs, with candidates for "strictly between" limited to
        // the nodes recorded between the two.
        for (ai, &a) in nodes.iter().enumerate() {
            'pair: for (bi, &b) in nodes.iter().enumerate().skip(ai + 1) {
                if !self.happened_before(a, b) {
                    continue;
                }
                for &c in &nodes[ai + 1..bi] {
                    if self.happened_before(a, c) && self.happened_before(c, b) {
                        continue 'pair;
                    }
                }
                edges.push((a, b));
            }
        }
        edges
    }

    /// The cause→effect chain ending at record `target`: a `Delivered`
    /// steps back across the network to its `Sent` (one message hop);
    /// anything else steps to the same actor's previous record. Terminates
    /// at a record with no predecessor — for a sense-triggered chain, the
    /// world plane's injected delivery.
    pub fn critical_path(&self, target: usize) -> CriticalPath {
        assert!(target < self.records.len(), "record index out of range");
        let mut chain = vec![target];
        let mut cur = target;
        loop {
            let prev = match &self.records[cur].kind {
                TraceKind::Delivered { msg, .. } => self.send_of.get(&msg.0).copied(),
                _ => self.local_prev[cur],
            };
            match prev {
                Some(p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        chain.reverse();
        let hops: Vec<SimDuration> =
            chain.windows(2).map(|w| self.records[w[1]].at - self.records[w[0]].at).collect();
        let total = self.records[target].at - self.records[chain[0]].at;
        CriticalPath { records: chain, hops, total }
    }

    /// Indices of detector-verdict records (`Process` with
    /// [`ProcessEventKind::Detect`]).
    pub fn detections(&self) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(&r.kind, TraceKind::Process { kind: ProcessEventKind::Detect, .. })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The end-to-end critical path behind a detector verdict: the chain
    /// sense → report send → delivery → detection, with per-hop latency.
    ///
    /// `detect` must index a `Detect` record whose `detail` names the
    /// process whose report completed the occurrence (as written by the
    /// traced detectors); returns `None` when no matching report delivery
    /// exists in the trace (e.g. a deployment-time open interval).
    pub fn detection_chain(&self, detect: usize) -> Option<CriticalPath> {
        let rec = &self.records[detect];
        let TraceKind::Process { actor: root, kind: ProcessEventKind::Detect, detail, .. } =
            &rec.kind
        else {
            return None;
        };
        // The triggering delivery: the last report from `detail` delivered
        // to the root at the verdict's time. Detect records are appended
        // post-hoc (their seq is past the run), so bind by (from, to, at)
        // rather than by local predecessor.
        let trigger = self.records[..detect]
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, r)| r.at == rec.at)
            .find_map(|(i, r)| match &r.kind {
                TraceKind::Delivered { from, to, .. }
                    if *to == *root && *from as u64 == *detail =>
                {
                    Some(i)
                }
                _ => None,
            })?;
        let mut path = self.critical_path(trigger);
        path.records.push(detect);
        path.hops.push(rec.at - self.records[trigger].at);
        path.total = rec.at - self.records[path.records[0]].at;
        Some(path)
    }

    /// Merged `[t − vicinity, t + vicinity]` windows around every `Lost`
    /// record, ascending and non-overlapping: the parts of the run where
    /// the paper says detection may be wrong (§4.2.2).
    pub fn loss_windows(&self, vicinity: SimDuration) -> Vec<(SimTime, SimTime)> {
        let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
        for &t in &self.loss_times {
            let lo = SimTime(t.as_nanos().saturating_sub(vicinity.as_nanos()));
            let hi = t.saturating_add(vicinity);
            match windows.last_mut() {
                Some((_, end)) if lo <= *end => {
                    if hi > *end {
                        *end = hi;
                    }
                }
                _ => windows.push((lo, hi)),
            }
        }
        windows
    }

    /// Is any message loss within `vicinity` of the interval
    /// `[start, end]`? (Experiment E9's far-from-loss filter.)
    pub fn near_any_loss(&self, start: SimTime, end: SimTime, vicinity: SimDuration) -> bool {
        // partition_point is only meaningful on a sorted slice; build()
        // sorts, so this can only fire if the field is mutated elsewhere.
        debug_assert!(self.loss_times.is_sorted(), "loss_times must stay ascending");
        Self::near_any(&self.loss_times, start, end, vicinity)
    }

    /// Is any fault-plane event (crash, recovery, partition cut/heal,
    /// channel fault application, clock fault) within `vicinity` of the
    /// interval `[start, end]`? The chaos soak's detector invariant — a
    /// detection far from both truth and every fault is a genuine false
    /// positive — is built on this.
    pub fn near_any_fault(&self, start: SimTime, end: SimTime, vicinity: SimDuration) -> bool {
        debug_assert!(self.fault_times.is_sorted(), "fault_times must stay ascending");
        Self::near_any(&self.fault_times, start, end, vicinity)
    }

    fn near_any(times: &[SimTime], start: SimTime, end: SimTime, vicinity: SimDuration) -> bool {
        let lo = start.as_nanos().saturating_sub(vicinity.as_nanos());
        let hi = end.saturating_add(vicinity).as_nanos();
        let first = times.partition_point(|t| t.as_nanos() < lo);
        times.get(first).is_some_and(|t| t.as_nanos() <= hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockStamp, MsgId, ProcessEventKind};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A hand-built two-sensor chain: world inject → sense → send →
    /// deliver at root → receive → detect.
    fn chain_trace() -> Trace {
        let mut tr = Trace::enabled();
        tr.record(t(10), TraceKind::Delivered { from: 0, to: 0, msg: MsgId(0) }); // world inject
        tr.record(
            t(10),
            TraceKind::Process {
                actor: 0,
                kind: ProcessEventKind::Sense,
                stamp: ClockStamp::vector(&[1, 0, 0]),
                detail: 7,
            },
        );
        tr.record(
            t(10),
            TraceKind::Process {
                actor: 0,
                kind: ProcessEventKind::Send,
                stamp: ClockStamp::vector(&[2, 0, 0]),
                detail: 2,
            },
        );
        tr.record(t(10), TraceKind::Sent { from: 0, to: 2, bytes: 64, msg: MsgId(1) });
        tr.record(t(40), TraceKind::Delivered { from: 0, to: 2, msg: MsgId(1) });
        tr.record(
            t(40),
            TraceKind::Process {
                actor: 2,
                kind: ProcessEventKind::Receive,
                stamp: ClockStamp::vector(&[2, 0, 1]),
                detail: 0,
            },
        );
        tr.seal();
        // Post-hoc detector verdict bound to sensor 0's report.
        tr.record(
            t(40),
            TraceKind::Process {
                actor: 2,
                kind: ProcessEventKind::Detect,
                stamp: ClockStamp::vector(&[2, 0, 1]),
                detail: 0,
            },
        );
        tr.seal();
        tr
    }

    #[test]
    fn channel_stats_pair_messages_by_id() {
        let mut tr = Trace::enabled();
        // Two in-flight messages on one channel, delivered out of order:
        // only the id makes the pairing unambiguous.
        tr.record(t(0), TraceKind::Sent { from: 0, to: 1, bytes: 10, msg: MsgId(0) });
        tr.record(t(1), TraceKind::Sent { from: 0, to: 1, bytes: 10, msg: MsgId(1) });
        tr.record(t(5), TraceKind::Delivered { from: 0, to: 1, msg: MsgId(1) });
        tr.record(t(90), TraceKind::Delivered { from: 0, to: 1, msg: MsgId(0) });
        tr.record(t(91), TraceKind::Sent { from: 0, to: 1, bytes: 10, msg: MsgId(2) });
        tr.record(t(91), TraceKind::Lost { from: 0, to: 1, msg: MsgId(2) });
        tr.seal();
        let a = TraceAnalysis::build(&tr);
        let ch = &a.channel_stats()[&(0, 1)];
        assert_eq!(ch.sent, 3);
        assert_eq!(ch.lost, 1);
        assert_eq!(ch.bytes, 30);
        assert_eq!(ch.latency.count(), 2);
        assert_eq!(ch.latency.min(), SimDuration::from_millis(4));
        assert_eq!(ch.latency.max(), SimDuration::from_millis(90));
        assert_eq!(ch.latency.mean(), SimDuration::from_millis(47));
    }

    #[test]
    fn critical_path_walks_message_hops_and_local_steps() {
        let tr = chain_trace();
        let a = TraceAnalysis::build(&tr);
        let receive = 5; // the Receive process record
        let path = a.critical_path(receive);
        // inject → sense → send-evt → sent → delivered → receive.
        assert_eq!(path.records, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(path.total, SimDuration::from_millis(30));
        assert_eq!(path.hops.iter().copied().sum::<SimDuration>(), path.total);
        assert_eq!(path.hops[3], SimDuration::from_millis(30), "the network hop");
    }

    #[test]
    fn detection_chain_binds_verdict_to_the_completing_report() {
        let tr = chain_trace();
        let a = TraceAnalysis::build(&tr);
        let det = a.detections();
        assert_eq!(det.len(), 1);
        let path = a.detection_chain(det[0]).expect("bound");
        assert_eq!(*path.records.last().unwrap(), det[0]);
        assert_eq!(path.records[0], 0, "terminates at the world inject");
        assert_eq!(path.total, SimDuration::from_millis(30));
    }

    #[test]
    fn hb_edges_cover_exactly_stamp_order() {
        let tr = chain_trace();
        let a = TraceAnalysis::build(&tr);
        let nodes = a.hb_nodes();
        assert_eq!(nodes.len(), 4);
        let edges = a.hb_edges();
        // sense → send-evt → {receive, detect}: the detect record carries
        // the *same* vector as the receive (the verdict is stamped with the
        // root's state at the completing report), so the two are unordered
        // siblings under the send event, not a chain.
        assert_eq!(edges, vec![(nodes[0], nodes[1]), (nodes[1], nodes[2]), (nodes[1], nodes[3])]);
        assert!(a.happened_before(nodes[0], nodes[3]), "sense still precedes the verdict stamp");
        assert!(!a.happened_before(nodes[2], nodes[3]), "equal stamps are not strictly ordered");
    }

    #[test]
    fn loss_windows_merge_and_near_loss_matches() {
        let mut tr = Trace::enabled();
        for (ms, id) in [(100u64, 0u64), (105, 1), (500, 2)] {
            tr.record(t(ms), TraceKind::Lost { from: 0, to: 1, msg: MsgId(id) });
        }
        tr.seal();
        let a = TraceAnalysis::build(&tr);
        let w = a.loss_windows(SimDuration::from_millis(10));
        assert_eq!(w, vec![(t(90), t(115)), (t(490), t(510))]);
        assert!(a.near_any_loss(t(80), t(95), SimDuration::from_millis(10)));
        assert!(!a.near_any_loss(t(200), t(300), SimDuration::from_millis(10)));
        assert!(
            a.near_any_loss(t(200), t(491), SimDuration::from_millis(10)),
            "vicinity extends the interval end"
        );
    }

    #[test]
    fn out_of_order_loss_records_still_index_correctly() {
        // Post-seal appends carry later seqs but may carry *earlier* times
        // (seal sorts by seq, not time) — the loss index must sort rather
        // than trust recording order, or partition_point misses windows.
        let mut tr = Trace::enabled();
        tr.record(t(500), TraceKind::Lost { from: 0, to: 1, msg: MsgId(0) });
        tr.seal();
        tr.record(t(100), TraceKind::Lost { from: 0, to: 1, msg: MsgId(1) });
        tr.record(t(300), TraceKind::Lost { from: 0, to: 1, msg: MsgId(2) });
        tr.seal();
        let at: Vec<SimTime> = tr.records().iter().map(|r| r.at).collect();
        assert_eq!(at, vec![t(500), t(100), t(300)], "record order really is non-chronological");
        let a = TraceAnalysis::build(&tr);
        assert_eq!(
            a.loss_windows(SimDuration::from_millis(10)),
            vec![(t(90), t(110)), (t(290), t(310)), (t(490), t(510))]
        );
        for ms in [100u64, 300, 500] {
            assert!(
                a.near_any_loss(t(ms), t(ms), SimDuration::from_millis(5)),
                "loss at {ms}ms must be found regardless of recording order"
            );
        }
        assert!(!a.near_any_loss(t(200), t(200), SimDuration::from_millis(5)));
    }

    #[test]
    fn fault_vicinity_mirrors_loss_vicinity() {
        use crate::trace::FaultRecordKind;
        let mut tr = Trace::enabled();
        tr.record(t(200), TraceKind::Fault { actor: 1, kind: FaultRecordKind::Crash, detail: 0 });
        tr.record(t(260), TraceKind::Fault { actor: 1, kind: FaultRecordKind::Recover, detail: 0 });
        tr.seal();
        let a = TraceAnalysis::build(&tr);
        assert!(a.near_any_fault(t(190), t(195), SimDuration::from_millis(10)));
        assert!(a.near_any_fault(t(230), t(240), SimDuration::from_millis(25)));
        assert!(!a.near_any_fault(t(100), t(150), SimDuration::from_millis(10)));
        assert!(
            !a.near_any_loss(t(200), t(260), SimDuration::from_secs(1)),
            "faults are not losses"
        );
    }
}
