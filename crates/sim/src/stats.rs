//! Summary statistics for experiment outputs.
//!
//! Small, allocation-light helpers: online mean/variance (Welford),
//! percentiles over sorted samples, fixed-width histograms, and normal
//! confidence intervals for sweep cells that aggregate many seeded runs.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm) — numerically
/// stable, single pass, O(1) memory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the 95% normal confidence interval for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation on the
/// sorted data. Returns NaN for an empty slice.
///
/// Pre-sorted input is used as-is (one O(n) check). Unsorted input is
/// sorted into a temporary copy first — formerly this was only a
/// `debug_assert`, so a release build fed unsorted samples silently
/// returned garbage quantiles.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    if samples.len() == 1 {
        return samples[0];
    }
    let sorted_view;
    let sorted: &[f64] = if samples.windows(2).all(|w| w[0] <= w[1]) {
        samples
    } else {
        let mut copy = samples.to_vec();
        copy.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        sorted_view = copy;
        &sorted_view
    };
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Sort a sample and return (p50, p90, p99).
pub fn percentiles(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    (quantile(samples, 0.50), quantile(samples, 0.90), quantile(samples, 0.99))
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped into
/// the end bins. NaN observations are not recorded; they are counted in
/// [`Histogram::dropped`] instead (NaN would otherwise cast to bin 0 and
/// silently skew the distribution).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
    dropped: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram { lo, hi, bins: vec![0; bins], total: 0, dropped: 0 }
    }

    /// Record one observation. NaN is skipped and counted as dropped.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.dropped += 1;
            return;
        }
        let k = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64)
            .floor()
            .clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[k] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded (NaN drops excluded).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// NaN observations that were offered to [`Histogram::record`] and
    /// skipped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The `q`-quantile of the recorded distribution at bucket granularity:
    /// the upper edge of the first bucket whose cumulative mass reaches
    /// `q`. Returns NaN if the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = 0u64;
        for (k, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.lo + width * (k + 1) as f64;
            }
        }
        self.hi
    }

    /// The fraction of mass at or below `x` (empirical CDF at bucket
    /// granularity).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64)
            .floor()
            .clamp(-1.0, (self.bins.len() - 1) as f64);
        if k < 0.0 {
            return 0.0;
        }
        let upto: u64 = self.bins[..=(k as usize)].iter().sum();
        upto as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(quantile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn percentiles_sorts_input() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let (p50, p90, p99) = percentiles(&mut xs);
        assert_eq!(p50, 3.0);
        assert!(p90 >= p50 && p99 >= p90);
        assert_eq!(xs, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -5.0, 15.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bins()[0], 2, "0.5 and clamped -5.0");
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 2, "9.9 and clamped 15.0");
    }

    #[test]
    fn histogram_drops_nan_instead_of_bin_zero() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(0.5);
        h.record(f64::NAN);
        assert_eq!(h.dropped(), 2, "NaN observations are counted");
        assert_eq!(h.total(), 1, "NaN observations are not recorded");
        assert_eq!(h.bins()[0], 1, "only the real 0.5 lands in bin 0");
    }

    #[test]
    fn histogram_quantile_at_bucket_granularity() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-12, "median at upper edge of bin 4");
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-12);
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-12, "q=0 maps to the first occupied bin");
        assert!(Histogram::new(0.0, 1.0, 4).quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        // Pin the fix: unsorted samples give the same quantiles as their
        // sorted permutation (release builds used to interpolate garbage).
        let unsorted = [3.0, 1.0, 2.0, 4.0];
        let sorted = [1.0, 2.0, 3.0, 4.0];
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(quantile(&unsorted, q), quantile(&sorted, q), "q={q}");
        }
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 1.0), 3.0);
    }

    mod merge_properties {
        use super::super::OnlineStats;
        use proptest::prelude::*;

        fn stats_of(xs: &[f64]) -> OnlineStats {
            let mut s = OnlineStats::new();
            for &x in xs {
                s.push(x);
            }
            s
        }

        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
        }

        fn assert_equivalent(a: &OnlineStats, b: &OnlineStats) {
            assert_eq!(a.count(), b.count());
            assert!(close(a.mean(), b.mean()), "mean {} vs {}", a.mean(), b.mean());
            assert!(
                close(a.variance(), b.variance()),
                "variance {} vs {}",
                a.variance(),
                b.variance()
            );
            if a.count() > 0 {
                assert_eq!(a.min(), b.min());
                assert_eq!(a.max(), b.max());
            }
        }

        proptest! {
            #[test]
            fn merge_is_associative_and_order_insensitive(
                xs in proptest::collection::vec(-1e3f64..1e3, 0..40),
                ys in proptest::collection::vec(-1e3f64..1e3, 0..40),
                zs in proptest::collection::vec(-1e3f64..1e3, 0..40),
            ) {
                let (sx, sy, sz) = (stats_of(&xs), stats_of(&ys), stats_of(&zs));

                // (x ⊕ y) ⊕ z
                let mut left = sx.clone();
                left.merge(&sy);
                left.merge(&sz);

                // x ⊕ (y ⊕ z)
                let mut yz = sy.clone();
                yz.merge(&sz);
                let mut right = sx.clone();
                right.merge(&yz);

                // z ⊕ (y ⊕ x): a different operand order entirely.
                let mut yx = sy.clone();
                yx.merge(&sx);
                let mut rev = sz.clone();
                rev.merge(&yx);

                // And the ground truth: one pass over the concatenation.
                let all: Vec<f64> =
                    xs.iter().chain(&ys).chain(&zs).copied().collect();
                let whole = stats_of(&all);

                assert_equivalent(&left, &right);
                assert_equivalent(&left, &rev);
                assert_equivalent(&left, &whole);
            }
        }
    }

    #[test]
    fn histogram_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.cdf_at(4.99) - 0.5).abs() < 1e-12);
        assert_eq!(h.cdf_at(-1.0), 0.0);
        assert!((h.cdf_at(100.0) - 1.0).abs() < 1e-12);
    }
}
