//! The logical network overlay L (paper §2.1).
//!
//! `⟨P, L⟩` is the network/observation plane: processes communicate over a
//! **dynamically changing** logical overlay. This module provides the
//! overlay graph (static full mesh, arbitrary graphs, and dynamic link
//! up/down changes) plus the per-network delay, loss, and FIFO
//! configuration consumed by the engine.

use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::loss::LossModel;

/// Index of an actor (process) in the simulation.
pub type ActorId = usize;

/// The overlay graph topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of distinct actors is connected (the common case for the
    /// paper's system-wide strobe broadcasts).
    FullMesh {
        /// Number of nodes.
        n: usize,
    },
    /// Arbitrary undirected graph given by an adjacency matrix. `adj[i][j]`
    /// is true iff `i` and `j` can exchange messages directly.
    Graph {
        /// Symmetric adjacency matrix; the diagonal is ignored.
        adj: Vec<Vec<bool>>,
    },
}

impl Topology {
    /// A ring of `n` nodes (each node linked to its two neighbours).
    pub fn ring(n: usize) -> Self {
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            adj[i][(i + 1) % n] = true;
            adj[(i + 1) % n][i] = true;
        }
        Topology::Graph { adj }
    }

    /// A star with node 0 at the centre — the common sensornet configuration
    /// with a distinguished root/back-end server P₀.
    pub fn star(n: usize) -> Self {
        let mut adj = vec![vec![false; n]; n];
        adj[0][1..].iter_mut().for_each(|e| *e = true);
        for row in adj.iter_mut().skip(1) {
            row[0] = true;
        }
        Topology::Graph { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            Topology::FullMesh { n } => *n,
            Topology::Graph { adj } => adj.len(),
        }
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Are `a` and `b` directly connected? (No self-loops.)
    pub fn connected(&self, a: ActorId, b: ActorId) -> bool {
        if a == b {
            return false;
        }
        match self {
            Topology::FullMesh { n } => a < *n && b < *n,
            Topology::Graph { adj } => a < adj.len() && b < adj.len() && adj[a][b],
        }
    }

    /// Bring a link up or down. L is a *dynamically changing* graph in the
    /// paper's model; experiments can reconfigure mid-run. A `FullMesh` is
    /// first materialized into an explicit graph.
    pub fn set_link(&mut self, a: ActorId, b: ActorId, up: bool) {
        if a == b {
            return;
        }
        if let Topology::FullMesh { n } = *self {
            let adj = (0..n).map(|i| (0..n).map(|j| i != j).collect()).collect();
            *self = Topology::Graph { adj };
        }
        if let Topology::Graph { adj } = self {
            if a < adj.len() && b < adj.len() {
                adj[a][b] = up;
                adj[b][a] = up;
            }
        }
    }

    /// The neighbours of `a`.
    pub fn neighbors(&self, a: ActorId) -> Vec<ActorId> {
        let mut out = Vec::new();
        self.collect_neighbors(a, &mut out);
        out
    }

    /// Collect the neighbours of `a` (ascending id order) into `out`,
    /// clearing it first. Allocation-free once `out` has warmed up — the
    /// engine calls this on every broadcast.
    pub fn collect_neighbors(&self, a: ActorId, out: &mut Vec<ActorId>) {
        out.clear();
        match self {
            Topology::FullMesh { n } => {
                if a < *n {
                    out.extend((0..*n).filter(|&b| b != a));
                }
            }
            Topology::Graph { adj } => {
                if let Some(row) = adj.get(a) {
                    out.extend(
                        row.iter().enumerate().filter_map(|(b, &up)| (up && b != a).then_some(b)),
                    );
                }
            }
        }
    }
}

/// Full network-plane configuration: overlay + delay + loss + ordering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// The overlay graph L.
    pub topology: Topology,
    /// The message-delay model (paper §3.2.2).
    pub delay: DelayModel,
    /// The message-loss model.
    pub loss: LossModel,
    /// If true, per-(sender, receiver) channels deliver in FIFO order; if
    /// false, messages may overtake each other (pure asynchrony).
    pub fifo: bool,
}

impl NetworkConfig {
    /// A lossless full mesh of `n` nodes with the given delay model, FIFO.
    pub fn full_mesh(n: usize, delay: DelayModel) -> Self {
        NetworkConfig {
            topology: Topology::FullMesh { n },
            delay,
            loss: LossModel::None,
            fifo: true,
        }
    }

    /// Replace the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Set FIFO / non-FIFO channel ordering (builder style).
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }
}

/// Counters the engine maintains about network-plane activity. Experiment
/// E7 ("clock sync is not free"; strobe scalar O(1) vs strobe vector O(n))
/// reads these.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Point-to-point message transmissions attempted (a broadcast to k
    /// neighbours counts k).
    pub messages_sent: u64,
    /// Messages actually delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub messages_lost: u64,
    /// Total payload bytes across attempted transmissions.
    pub bytes_sent: u64,
    /// Number of broadcast operations performed.
    pub broadcasts: u64,
    /// Messages removed by the fault plane (down-node drops, partition
    /// drops, channel-fault drops). Always a subset of `messages_lost`.
    pub messages_faulted: u64,
    /// Extra copies injected by channel-fault duplication (each also counts
    /// in `messages_sent`).
    pub messages_duplicated: u64,
}

impl NetStats {
    /// Fold another counter set into this one. The sharded engine keeps
    /// per-shard stats during a run and merges them at the end; every field
    /// is a sum-decomposable counter, so the merge is exact.
    pub fn absorb(&mut self, other: &NetStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.bytes_sent += other.bytes_sent;
        self.broadcasts += other.broadcasts;
        self.messages_faulted += other.messages_faulted;
        self.messages_duplicated += other.messages_duplicated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn full_mesh_connects_all_pairs() {
        let t = Topology::FullMesh { n: 4 };
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.connected(a, b), a != b);
            }
        }
        assert!(!t.connected(0, 4), "out-of-range is not connected");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ring_has_degree_two() {
        let t = Topology::ring(5);
        for i in 0..5 {
            assert_eq!(t.neighbors(i).len(), 2, "node {i}");
        }
        assert!(t.connected(0, 4), "ring wraps around");
        assert!(!t.connected(0, 2));
    }

    #[test]
    fn star_centres_on_zero() {
        let t = Topology::star(6);
        assert_eq!(t.neighbors(0).len(), 5);
        for i in 1..6 {
            assert_eq!(t.neighbors(i), vec![0]);
        }
    }

    #[test]
    fn dynamic_link_changes() {
        let mut t = Topology::FullMesh { n: 3 };
        t.set_link(0, 1, false);
        assert!(!t.connected(0, 1));
        assert!(!t.connected(1, 0));
        assert!(t.connected(0, 2), "other links unaffected");
        t.set_link(0, 1, true);
        assert!(t.connected(0, 1));
    }

    #[test]
    fn self_links_are_ignored() {
        let mut t = Topology::FullMesh { n: 3 };
        t.set_link(1, 1, true);
        assert!(!t.connected(1, 1));
    }

    #[test]
    fn ring_of_two_is_single_link() {
        let t = Topology::ring(2);
        assert!(t.connected(0, 1));
        assert_eq!(t.neighbors(0), vec![1]);
    }

    #[test]
    fn config_builders() {
        let c = NetworkConfig::full_mesh(3, DelayModel::delta(SimDuration::from_millis(10)))
            .with_loss(LossModel::Bernoulli { p: 0.1 })
            .with_fifo(false);
        assert!(!c.fifo);
        assert_eq!(c.topology.len(), 3);
        assert!(matches!(c.loss, LossModel::Bernoulli { .. }));
    }
}
