//! # psn-core — the ⟨P, L, O, C⟩ execution model
//!
//! The paper's first contribution (§2): a general system and execution
//! model for sensor-actuator networks in pervasive environments. A system
//! is a quadruple ⟨P, L, O, C⟩ — processes P on a logical overlay L (the
//! network plane, provided by `psn-sim`), world objects O with covert
//! channels C (the world plane, provided by `psn-world`). This crate wires
//! the two planes together:
//!
//! - [`event`] — the five event kinds c/n/a/s/r and per-process event logs;
//! - [`bundle`] — every clock of §3.2 running side by side over one
//!   execution, so detectors compare on identical runs;
//! - [`message`] — strobes, reports, and actuation commands;
//! - [`process`] — the sensor/actuator process: sense → tick → strobe →
//!   report;
//! - [`root`] — the distinguished root P₀: collect, merge clocks, actuate;
//! - [`execution`] — run a scenario end to end and return the
//!   [`execution::ExecutionTrace`] detectors consume;
//! - [`live`] — the same engine advanced incrementally from an
//!   [`psn_sim::provider::EventProvider`], with snapshot/restore by
//!   deterministic journal replay (the substrate of `psn-serve`);
//! - [`metrics`] — execution-level instrumentation (semantic event counts,
//!   strobe broadcasts, wire bytes by clock discipline) recorded into a
//!   [`psn_sim::metrics::Metrics`] registry without perturbing the run.
//!
//! ## Example
//!
//! ```
//! use psn_core::execution::{run_execution, ExecutionConfig};
//! use psn_world::scenarios::exhibition::{generate, ExhibitionParams};
//! use psn_sim::time::{SimDuration, SimTime};
//!
//! let scenario = generate(
//!     &ExhibitionParams {
//!         doors: 2,
//!         arrival_rate_hz: 0.5,
//!         mean_stay: SimDuration::from_secs(30),
//!         duration: SimTime::from_secs(120),
//!         capacity: 10,
//!     },
//!     42,
//! );
//! let trace = run_execution(&scenario, &ExecutionConfig::default());
//! assert_eq!(trace.log.sense_events().len(), scenario.timeline.len());
//! ```

#![warn(missing_docs)]

pub mod bundle;
pub mod causal_delivery;
pub mod event;
pub mod execution;
pub mod io;
pub mod live;
pub mod log;
pub mod message;
pub mod metrics;
pub mod process;
pub mod root;

pub use bundle::{ClockBundle, ClockConfig, StampSet, StrobePayload};
pub use causal_delivery::{CausalBuffer, CausalMsg, CausalSender};
pub use event::{EventKind, ProcEvent};
pub use execution::{
    run_execution, run_execution_instrumented, run_execution_profiled, run_execution_with_rule,
    world_events, ExecutionConfig, ExecutionTrace, ShardPlanKind, SpeculationMode,
};
pub use io::TraceFile;
pub use live::{LiveExecution, LiveSnapshot, LoggedEvent, RestoreError, LIVE_SNAPSHOT_VERSION};
pub use log::{ActuationRecord, ExecutionLog, ReceivedReport};
pub use message::{NetMsg, Report};
pub use metrics::ExecMetrics;
pub use process::{RecoveryPolicy, SensorProcess, StrobePolicy, TraceStampMode};
pub use root::{ActuationRule, NoActuation, RootProcess};
