//! The clock bundle: every clock of §3.2 running over one execution.
//!
//! To compare detection accuracy across clock options *on identical
//! executions* (the comparisons of §3.3 and experiments E2/E6/E10), each
//! process runs the whole clock zoo side by side. The strobe messages are
//! shared — one broadcast carries both the scalar and the vector strobe
//! payload — and every event receives a [`StampSet`] with one timestamp per
//! clock. Detectors then read only the stamp family they are being
//! evaluated with; wire-size accounting per family is analytic (see
//! `psn-bench` E7).

use serde::{Deserialize, Serialize};

use psn_clocks::{
    LamportClock, LogicalClock, Oscillator, PhysReading, ProcessId, ScalarStamp, StrobeScalarClock,
    StrobeVectorClock, SyncedClock, VectorClock, VectorStamp,
};
use psn_sim::fault::ClockFaultKind;
use psn_sim::rng::RngStream;
use psn_sim::time::{SimDuration, SimTime};

/// Hardware/clock parameters shared by all processes in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Skew bound ε of the synchronized physical clock service.
    pub epsilon: SimDuration,
    /// Max initial offset of the free-running oscillator.
    pub max_offset: SimDuration,
    /// Max |drift| of the free-running oscillator, ppm.
    pub max_drift_ppm: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            epsilon: SimDuration::from_millis(1),
            max_offset: SimDuration::from_millis(50),
            max_drift_ppm: 50.0,
        }
    }
}

/// All clocks of one process.
#[derive(Debug, Clone)]
pub struct ClockBundle {
    /// Lamport scalar clock (SC1–SC3) — causality-based.
    pub lamport: LamportClock,
    /// Mattern/Fidge vector clock (VC1–VC3) — causality-based.
    pub vector: VectorClock,
    /// Strobe scalar clock (SSC1–SSC2).
    pub strobe_scalar: StrobeScalarClock,
    /// Strobe vector clock (SVC1–SVC2).
    pub strobe_vector: StrobeVectorClock,
    /// Free-running local oscillator (unsynchronized physical clock).
    pub oscillator: Oscillator,
    /// ε-synchronized physical clock service view.
    pub synced: SyncedClock,
    /// When set, the physical clocks are stuck at these
    /// `(physical, synced)` readings (the `Freeze` clock fault); logical
    /// clocks are unaffected.
    pub frozen: Option<(PhysReading, PhysReading)>,
}

impl ClockBundle {
    /// A bundle for process `id` among `n`, with hardware imperfections
    /// drawn from `rng`.
    pub fn new(id: ProcessId, n: usize, cfg: &ClockConfig, rng: &mut RngStream) -> Self {
        ClockBundle {
            lamport: LamportClock::new(id),
            vector: VectorClock::new(id, n),
            strobe_scalar: StrobeScalarClock::new(id),
            strobe_vector: StrobeVectorClock::new(id, n),
            oscillator: Oscillator::random(rng, cfg.max_offset, cfg.max_drift_ppm, 1),
            synced: SyncedClock::new(rng, cfg.epsilon),
            frozen: None,
        }
    }

    /// Read every clock *without ticking* at ground-truth time `now`.
    pub fn snapshot(&self, now: SimTime) -> StampSet {
        let (physical, synced) = match self.frozen {
            Some(readings) => readings,
            None => (self.oscillator.read(now), self.synced.read(now)),
        };
        StampSet {
            lamport: self.lamport.current(),
            vector: self.vector.current(),
            strobe_scalar: self.strobe_scalar.current(),
            strobe_vector: self.strobe_vector.current(),
            physical,
            synced,
            truth: now,
        }
    }

    /// Apply a fault-plane clock fault to the physical clock hardware at
    /// ground-truth time `now`. Logical and strobe clocks have no hardware
    /// and are never affected.
    pub fn apply_clock_fault(
        &mut self,
        kind: ClockFaultKind,
        now: SimTime,
        rng: &mut RngStream,
        cfg: &ClockConfig,
    ) {
        match kind {
            ClockFaultKind::DriftSpike { add_ppm } => self.oscillator.drift_ppm += add_ppm,
            // A reset zeroes the reading: the offset swallows all elapsed
            // ground truth, as when a node reboots without battery-backed
            // time.
            ClockFaultKind::Reset => self.oscillator.offset_ns = -(now.as_nanos() as i64),
            ClockFaultKind::Freeze => {
                self.frozen = Some((self.oscillator.read(now), self.synced.read(now)));
            }
            ClockFaultKind::Unfreeze => self.frozen = None,
            ClockFaultKind::Desync => self.synced.desync(rng, cfg.max_offset),
            ClockFaultKind::Resync => self.synced.resync(rng),
        }
    }

    /// Apply the *relevant event* rules (SC1, VC1, SSC1, SVC1) for a sense
    /// event at ground-truth time `now`; returns the event's stamps and the
    /// strobe payload that the protocol must now broadcast.
    pub fn on_sense(&mut self, now: SimTime) -> (StampSet, StrobePayload) {
        self.lamport.on_local_event();
        self.vector.on_local_event();
        self.strobe_scalar.on_local_event();
        self.strobe_vector.on_local_event();
        let stamps = self.snapshot(now);
        let strobe = StrobePayload::new(stamps.strobe_scalar, stamps.strobe_vector.clone());
        (stamps, strobe)
    }

    /// Apply the internal-event rules (SC1, VC1 only — strobe clocks tick
    /// only on *sensed* relevant events) for a compute/actuate event.
    pub fn on_internal(&mut self, now: SimTime) -> StampSet {
        self.lamport.on_local_event();
        self.vector.on_local_event();
        self.snapshot(now)
    }

    /// Apply the send rules (SC2, VC2) for an in-network computation
    /// message; returns the stamps to piggyback.
    pub fn on_send(&mut self, now: SimTime) -> StampSet {
        self.lamport.on_send();
        self.vector.on_send();
        self.snapshot(now)
    }

    /// Apply the receive rules (SC3, VC3) for a piggybacked stamp set.
    pub fn on_receive(&mut self, piggyback: &StampSet, now: SimTime) -> StampSet {
        self.lamport.on_receive(&piggyback.lamport);
        self.vector.on_receive(&piggyback.vector);
        self.snapshot(now)
    }

    /// Apply the strobe rules (SSC2, SVC2): merge without ticking.
    pub fn on_strobe(&mut self, strobe: &StrobePayload) {
        self.strobe_scalar.on_strobe(&strobe.scalar);
        self.strobe_vector.on_strobe(&strobe.vector);
    }
}

/// The payload of one strobe broadcast. Physically these would be two
/// protocol variants (O(1) scalar vs O(n) vector); the bundle carries both
/// on one simulated message so detectors compare on identical executions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrobePayload {
    /// The scalar strobe (SSC1 broadcast value).
    pub scalar: ScalarStamp,
    /// The vector strobe (SVC1 broadcast value).
    pub vector: VectorStamp,
    /// Integrity checksum over both stamps, computed at construction. A
    /// channel-fault corruption mutates the stamps but not the checksum, so
    /// [`StrobePayload::verify`] detects it — receivers with
    /// [`crate::process::StrobePolicy::quarantine`] enabled drop such
    /// strobes instead of merging garbage. Modelled as part of the link
    /// layer's existing CRC, so it does not enter the wire-size accounting.
    pub checksum: u64,
}

impl StrobePayload {
    /// A payload with a valid checksum over `scalar` and `vector`.
    pub fn new(scalar: ScalarStamp, vector: VectorStamp) -> Self {
        let checksum = Self::compute_checksum(&scalar, &vector);
        StrobePayload { scalar, vector, checksum }
    }

    /// True iff the stamps still match the checksum.
    pub fn verify(&self) -> bool {
        self.checksum == Self::compute_checksum(&self.scalar, &self.vector)
    }

    fn compute_checksum(scalar: &ScalarStamp, vector: &VectorStamp) -> u64 {
        // FNV-1a over the stamp words (the repo's standard content hash).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(scalar.value);
        mix(scalar.process as u64);
        for &c in vector.iter() {
            mix(c);
        }
        h
    }
}

/// The timestamps every clock assigned to one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampSet {
    /// Lamport scalar stamp.
    pub lamport: ScalarStamp,
    /// Mattern/Fidge vector stamp.
    pub vector: VectorStamp,
    /// Strobe scalar stamp.
    pub strobe_scalar: ScalarStamp,
    /// Strobe vector stamp.
    pub strobe_vector: VectorStamp,
    /// Free-running physical reading (unsynchronized).
    pub physical: PhysReading,
    /// ε-synchronized physical reading.
    pub synced: PhysReading,
    /// Ground truth — **scoring only**, never visible to protocols.
    pub truth: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::rng::RngFactory;

    fn bundle(id: usize, n: usize) -> ClockBundle {
        let mut rng = RngFactory::new(77).stream(id as u64);
        ClockBundle::new(id, n, &ClockConfig::default(), &mut rng)
    }

    #[test]
    fn sense_ticks_all_logical_clocks() {
        let mut b = bundle(0, 3);
        let (s, strobe) = b.on_sense(SimTime::from_millis(5));
        assert_eq!(s.lamport.value, 1);
        assert_eq!(s.vector.as_slice(), [1, 0, 0]);
        assert_eq!(s.strobe_scalar.value, 1);
        assert_eq!(s.strobe_vector.as_slice(), [1, 0, 0]);
        assert_eq!(strobe.scalar, s.strobe_scalar);
        assert_eq!(strobe.vector, s.strobe_vector);
        assert_eq!(s.truth, SimTime::from_millis(5));
    }

    #[test]
    fn internal_does_not_tick_strobes() {
        let mut b = bundle(1, 2);
        let s = b.on_internal(SimTime::ZERO);
        assert_eq!(s.lamport.value, 1, "causal clocks tick");
        assert_eq!(s.strobe_scalar.value, 0, "strobe clocks tick only on sense");
        assert_eq!(s.strobe_vector.as_slice(), [0, 0]);
    }

    #[test]
    fn strobe_merges_without_ticks() {
        let mut a = bundle(0, 2);
        let mut b = bundle(1, 2);
        let (_, strobe) = a.on_sense(SimTime::ZERO);
        b.on_strobe(&strobe);
        let snap = b.snapshot(SimTime::from_millis(1));
        assert_eq!(snap.strobe_scalar.value, 1);
        assert_eq!(snap.strobe_vector.as_slice(), [1, 0]);
        assert_eq!(snap.lamport.value, 0, "strobes do not touch causal clocks");
        assert_eq!(snap.vector.as_slice(), [0, 0]);
    }

    #[test]
    fn send_receive_chain_updates_causal_clocks_only() {
        let mut a = bundle(0, 2);
        let mut b = bundle(1, 2);
        let m = a.on_send(SimTime::from_millis(1));
        let r = b.on_receive(&m, SimTime::from_millis(4));
        assert_eq!(r.lamport.value, 2, "max(0,1)+1");
        assert_eq!(r.vector.as_slice(), [1, 1]);
        assert_eq!(r.strobe_vector.as_slice(), [0, 0], "reports do not move strobe clocks");
    }

    #[test]
    fn physical_readings_reflect_now() {
        let b = bundle(0, 1);
        let t1 = b.snapshot(SimTime::from_secs(1));
        let t2 = b.snapshot(SimTime::from_secs(2));
        assert!(t2.physical > t1.physical, "oscillator advances with truth");
        assert!(t2.synced > t1.synced);
        // Synced error bounded by ε/2 = 0.5ms.
        let err = (t2.synced.0 - 2_000_000_000i64).abs();
        assert!(err <= 500_000, "synced error {err}ns");
    }

    #[test]
    fn bundles_differ_across_processes() {
        let a = bundle(0, 2);
        let b = bundle(1, 2);
        // Different RNG draws: virtually certain to differ.
        assert_ne!(a.oscillator, b.oscillator);
    }

    #[test]
    fn strobe_checksum_verifies_until_tampered() {
        let p = StrobePayload::new(
            ScalarStamp { value: 7, process: 2 },
            VectorStamp::from_slice(&[3, 0, 7]),
        );
        assert!(p.verify());
        let mut garbled = p.clone();
        garbled.scalar.value += 1;
        assert!(!garbled.verify(), "scalar tamper detected");
        let mut garbled = p.clone();
        garbled.vector.as_mut_slice()[1] += 1;
        assert!(!garbled.verify(), "vector tamper detected");
    }

    #[test]
    fn freeze_pins_physical_clocks_only() {
        let mut rng = RngFactory::new(77).stream(9);
        let mut b = bundle(0, 2);
        let t1 = SimTime::from_secs(1);
        b.apply_clock_fault(ClockFaultKind::Freeze, t1, &mut rng, &ClockConfig::default());
        let frozen = b.snapshot(SimTime::from_secs(5));
        assert_eq!(frozen.physical, b.oscillator.read(t1), "physical stuck at freeze time");
        assert_eq!(frozen.synced, b.synced.read(t1));
        let _ = b.on_sense(SimTime::from_secs(5));
        assert_eq!(b.lamport.current().value, 1, "logical clocks keep ticking");
        b.apply_clock_fault(ClockFaultKind::Unfreeze, t1, &mut rng, &ClockConfig::default());
        let thawed = b.snapshot(SimTime::from_secs(5));
        assert!(thawed.physical > frozen.physical, "unfrozen clock catches up with truth");
    }

    #[test]
    fn reset_zeroes_the_oscillator_reading() {
        let mut rng = RngFactory::new(77).stream(9);
        let mut b = bundle(0, 2);
        let t = SimTime::from_secs(10);
        b.apply_clock_fault(ClockFaultKind::Reset, t, &mut rng, &ClockConfig::default());
        let r = b.oscillator.read(t);
        // Only residual drift remains: |r| ≤ drift_ppm·10s ≤ 50ppm·10s.
        assert!(r.0.abs() <= 500_000 + 1, "post-reset reading {}ns", r.0);
    }

    #[test]
    fn drift_spike_accelerates_the_oscillator() {
        let mut rng = RngFactory::new(77).stream(9);
        let mut b = bundle(0, 2);
        let before = b.oscillator.drift_ppm;
        b.apply_clock_fault(
            ClockFaultKind::DriftSpike { add_ppm: 500.0 },
            SimTime::ZERO,
            &mut rng,
            &ClockConfig::default(),
        );
        assert_eq!(b.oscillator.drift_ppm, before + 500.0);
    }

    #[test]
    fn desync_then_resync_restores_the_epsilon_bound() {
        let mut rng = RngFactory::new(77).stream(9);
        let cfg = ClockConfig::default();
        let mut b = bundle(0, 2);
        let t = SimTime::from_secs(3);
        b.apply_clock_fault(ClockFaultKind::Desync, t, &mut rng, &cfg);
        b.apply_clock_fault(ClockFaultKind::Resync, t, &mut rng, &cfg);
        let err = (b.synced.read(t).0 - t.as_nanos() as i64).abs();
        assert!(err <= cfg.epsilon.as_nanos() as i64 / 2, "resynced within ε/2: {err}ns");
    }
}
