//! The clock bundle: every clock of §3.2 running over one execution.
//!
//! To compare detection accuracy across clock options *on identical
//! executions* (the comparisons of §3.3 and experiments E2/E6/E10), each
//! process runs the whole clock zoo side by side. The strobe messages are
//! shared — one broadcast carries both the scalar and the vector strobe
//! payload — and every event receives a [`StampSet`] with one timestamp per
//! clock. Detectors then read only the stamp family they are being
//! evaluated with; wire-size accounting per family is analytic (see
//! `psn-bench` E7).

use serde::{Deserialize, Serialize};

use psn_clocks::{
    LamportClock, LogicalClock, Oscillator, PhysReading, ProcessId, ScalarStamp, StrobeScalarClock,
    StrobeVectorClock, SyncedClock, VectorClock, VectorStamp,
};
use psn_sim::rng::RngStream;
use psn_sim::time::{SimDuration, SimTime};

/// Hardware/clock parameters shared by all processes in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Skew bound ε of the synchronized physical clock service.
    pub epsilon: SimDuration,
    /// Max initial offset of the free-running oscillator.
    pub max_offset: SimDuration,
    /// Max |drift| of the free-running oscillator, ppm.
    pub max_drift_ppm: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            epsilon: SimDuration::from_millis(1),
            max_offset: SimDuration::from_millis(50),
            max_drift_ppm: 50.0,
        }
    }
}

/// All clocks of one process.
#[derive(Debug, Clone)]
pub struct ClockBundle {
    /// Lamport scalar clock (SC1–SC3) — causality-based.
    pub lamport: LamportClock,
    /// Mattern/Fidge vector clock (VC1–VC3) — causality-based.
    pub vector: VectorClock,
    /// Strobe scalar clock (SSC1–SSC2).
    pub strobe_scalar: StrobeScalarClock,
    /// Strobe vector clock (SVC1–SVC2).
    pub strobe_vector: StrobeVectorClock,
    /// Free-running local oscillator (unsynchronized physical clock).
    pub oscillator: Oscillator,
    /// ε-synchronized physical clock service view.
    pub synced: SyncedClock,
}

impl ClockBundle {
    /// A bundle for process `id` among `n`, with hardware imperfections
    /// drawn from `rng`.
    pub fn new(id: ProcessId, n: usize, cfg: &ClockConfig, rng: &mut RngStream) -> Self {
        ClockBundle {
            lamport: LamportClock::new(id),
            vector: VectorClock::new(id, n),
            strobe_scalar: StrobeScalarClock::new(id),
            strobe_vector: StrobeVectorClock::new(id, n),
            oscillator: Oscillator::random(rng, cfg.max_offset, cfg.max_drift_ppm, 1),
            synced: SyncedClock::new(rng, cfg.epsilon),
        }
    }

    /// Read every clock *without ticking* at ground-truth time `now`.
    pub fn snapshot(&self, now: SimTime) -> StampSet {
        StampSet {
            lamport: self.lamport.current(),
            vector: self.vector.current(),
            strobe_scalar: self.strobe_scalar.current(),
            strobe_vector: self.strobe_vector.current(),
            physical: self.oscillator.read(now),
            synced: self.synced.read(now),
            truth: now,
        }
    }

    /// Apply the *relevant event* rules (SC1, VC1, SSC1, SVC1) for a sense
    /// event at ground-truth time `now`; returns the event's stamps and the
    /// strobe payload that the protocol must now broadcast.
    pub fn on_sense(&mut self, now: SimTime) -> (StampSet, StrobePayload) {
        self.lamport.on_local_event();
        self.vector.on_local_event();
        self.strobe_scalar.on_local_event();
        self.strobe_vector.on_local_event();
        let stamps = self.snapshot(now);
        let strobe =
            StrobePayload { scalar: stamps.strobe_scalar, vector: stamps.strobe_vector.clone() };
        (stamps, strobe)
    }

    /// Apply the internal-event rules (SC1, VC1 only — strobe clocks tick
    /// only on *sensed* relevant events) for a compute/actuate event.
    pub fn on_internal(&mut self, now: SimTime) -> StampSet {
        self.lamport.on_local_event();
        self.vector.on_local_event();
        self.snapshot(now)
    }

    /// Apply the send rules (SC2, VC2) for an in-network computation
    /// message; returns the stamps to piggyback.
    pub fn on_send(&mut self, now: SimTime) -> StampSet {
        self.lamport.on_send();
        self.vector.on_send();
        self.snapshot(now)
    }

    /// Apply the receive rules (SC3, VC3) for a piggybacked stamp set.
    pub fn on_receive(&mut self, piggyback: &StampSet, now: SimTime) -> StampSet {
        self.lamport.on_receive(&piggyback.lamport);
        self.vector.on_receive(&piggyback.vector);
        self.snapshot(now)
    }

    /// Apply the strobe rules (SSC2, SVC2): merge without ticking.
    pub fn on_strobe(&mut self, strobe: &StrobePayload) {
        self.strobe_scalar.on_strobe(&strobe.scalar);
        self.strobe_vector.on_strobe(&strobe.vector);
    }
}

/// The payload of one strobe broadcast. Physically these would be two
/// protocol variants (O(1) scalar vs O(n) vector); the bundle carries both
/// on one simulated message so detectors compare on identical executions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrobePayload {
    /// The scalar strobe (SSC1 broadcast value).
    pub scalar: ScalarStamp,
    /// The vector strobe (SVC1 broadcast value).
    pub vector: VectorStamp,
}

/// The timestamps every clock assigned to one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampSet {
    /// Lamport scalar stamp.
    pub lamport: ScalarStamp,
    /// Mattern/Fidge vector stamp.
    pub vector: VectorStamp,
    /// Strobe scalar stamp.
    pub strobe_scalar: ScalarStamp,
    /// Strobe vector stamp.
    pub strobe_vector: VectorStamp,
    /// Free-running physical reading (unsynchronized).
    pub physical: PhysReading,
    /// ε-synchronized physical reading.
    pub synced: PhysReading,
    /// Ground truth — **scoring only**, never visible to protocols.
    pub truth: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::rng::RngFactory;

    fn bundle(id: usize, n: usize) -> ClockBundle {
        let mut rng = RngFactory::new(77).stream(id as u64);
        ClockBundle::new(id, n, &ClockConfig::default(), &mut rng)
    }

    #[test]
    fn sense_ticks_all_logical_clocks() {
        let mut b = bundle(0, 3);
        let (s, strobe) = b.on_sense(SimTime::from_millis(5));
        assert_eq!(s.lamport.value, 1);
        assert_eq!(s.vector.as_slice(), [1, 0, 0]);
        assert_eq!(s.strobe_scalar.value, 1);
        assert_eq!(s.strobe_vector.as_slice(), [1, 0, 0]);
        assert_eq!(strobe.scalar, s.strobe_scalar);
        assert_eq!(strobe.vector, s.strobe_vector);
        assert_eq!(s.truth, SimTime::from_millis(5));
    }

    #[test]
    fn internal_does_not_tick_strobes() {
        let mut b = bundle(1, 2);
        let s = b.on_internal(SimTime::ZERO);
        assert_eq!(s.lamport.value, 1, "causal clocks tick");
        assert_eq!(s.strobe_scalar.value, 0, "strobe clocks tick only on sense");
        assert_eq!(s.strobe_vector.as_slice(), [0, 0]);
    }

    #[test]
    fn strobe_merges_without_ticks() {
        let mut a = bundle(0, 2);
        let mut b = bundle(1, 2);
        let (_, strobe) = a.on_sense(SimTime::ZERO);
        b.on_strobe(&strobe);
        let snap = b.snapshot(SimTime::from_millis(1));
        assert_eq!(snap.strobe_scalar.value, 1);
        assert_eq!(snap.strobe_vector.as_slice(), [1, 0]);
        assert_eq!(snap.lamport.value, 0, "strobes do not touch causal clocks");
        assert_eq!(snap.vector.as_slice(), [0, 0]);
    }

    #[test]
    fn send_receive_chain_updates_causal_clocks_only() {
        let mut a = bundle(0, 2);
        let mut b = bundle(1, 2);
        let m = a.on_send(SimTime::from_millis(1));
        let r = b.on_receive(&m, SimTime::from_millis(4));
        assert_eq!(r.lamport.value, 2, "max(0,1)+1");
        assert_eq!(r.vector.as_slice(), [1, 1]);
        assert_eq!(r.strobe_vector.as_slice(), [0, 0], "reports do not move strobe clocks");
    }

    #[test]
    fn physical_readings_reflect_now() {
        let b = bundle(0, 1);
        let t1 = b.snapshot(SimTime::from_secs(1));
        let t2 = b.snapshot(SimTime::from_secs(2));
        assert!(t2.physical > t1.physical, "oscillator advances with truth");
        assert!(t2.synced > t1.synced);
        // Synced error bounded by ε/2 = 0.5ms.
        let err = (t2.synced.0 - 2_000_000_000i64).abs();
        assert!(err <= 500_000, "synced error {err}ns");
    }

    #[test]
    fn bundles_differ_across_processes() {
        let a = bundle(0, 2);
        let b = bundle(1, 2);
        // Different RNG draws: virtually certain to differ.
        assert_ne!(a.oscillator, b.oscillator);
    }
}
