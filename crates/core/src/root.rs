//! The distinguished root process P₀ (paper §2.1).
//!
//! "In a common configuration, a distinguished process P₀ acts as a root or
//! back-end server that processes the sensed information." The root
//! collects reports, maintains its own causality-based clocks (ticking per
//! SC3/VC3 on each report), and optionally runs an **actuation rule** that
//! closes the sense → send → receive → actuate loop of §4.1.

use std::sync::Arc;

use parking_lot::Mutex;

use psn_clocks::ProcessId;
use psn_sim::engine::{Actor, Context};
use psn_sim::network::ActorId;
use psn_world::{AttrKey, AttrValue};

use crate::bundle::{ClockBundle, ClockConfig};
use crate::event::{EventKind, ProcEvent};
use crate::log::{ActuationRecord, ExecutionLog, ReceivedReport};
use crate::message::{NetMsg, Report};
use crate::metrics::ExecMetrics;

/// A rule the root evaluates online on each arriving report. Returning
/// commands closes the actuation loop.
pub trait ActuationRule: Send {
    /// Inspect the arriving report (and the history so far); return
    /// `(target process, attribute, command)` triples to actuate.
    fn on_report(
        &mut self,
        report: &Report,
        history: &ExecutionLog,
    ) -> Vec<(ProcessId, AttrKey, AttrValue)>;

    /// A deep copy of the rule's current state, used as the rollback
    /// checkpoint by the optimistic sharded mode
    /// ([`crate::execution::SpeculationMode::Optimistic`]). `None` (the
    /// default) makes the root unforkable, and the engine silently falls
    /// back to conservative windows — stateful rules opt in by cloning
    /// themselves here.
    fn fork(&self) -> Option<Box<dyn ActuationRule>> {
        None
    }
}

/// A no-op rule: observe only.
pub struct NoActuation;
impl ActuationRule for NoActuation {
    fn on_report(&mut self, _: &Report, _: &ExecutionLog) -> Vec<(ProcessId, AttrKey, AttrValue)> {
        Vec::new()
    }

    fn fork(&self) -> Option<Box<dyn ActuationRule>> {
        Some(Box::new(NoActuation))
    }
}

/// The root actor.
pub struct RootProcess {
    id: ProcessId,
    n: usize,
    cfg: ClockConfig,
    bundle: Option<ClockBundle>,
    event_seq: usize,
    rule: Box<dyn ActuationRule>,
    /// Relay unseen strobes (multi-hop overlays where the root is a hub).
    flood: bool,
    /// Drop strobes whose integrity checksum fails (see
    /// [`crate::process::StrobePolicy::quarantine`]).
    quarantine: bool,
    seen_strobes: Vec<u64>,
    log: Arc<Mutex<ExecutionLog>>,
    metrics: ExecMetrics,
    trace_stamp: crate::process::TraceStampMode,
}

impl RootProcess {
    /// A root with actor id `id` (conventionally `n`, after the sensors).
    pub fn new(
        id: ProcessId,
        n: usize,
        cfg: ClockConfig,
        rule: Box<dyn ActuationRule>,
        log: Arc<Mutex<ExecutionLog>>,
    ) -> Self {
        RootProcess {
            id,
            n,
            cfg,
            bundle: None,
            event_seq: 0,
            rule,
            flood: false,
            quarantine: false,
            seen_strobes: vec![0; n + 1],
            log,
            metrics: ExecMetrics::disabled(),
            trace_stamp: crate::process::TraceStampMode::default(),
        }
    }

    /// Enable strobe flood relay at the root (builder style).
    pub fn with_flood(mut self, flood: bool) -> Self {
        self.flood = flood;
        self
    }

    /// Drop corrupted strobes instead of merging them (builder style).
    pub fn with_quarantine(mut self, quarantine: bool) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Which logical stamp to attach to structured trace records (builder
    /// style). Only consulted when the engine trace is enabled.
    pub fn with_trace_stamp(mut self, mode: crate::process::TraceStampMode) -> Self {
        self.trace_stamp = mode;
        self
    }

    /// Record semantic event counts and strobe byte accounting into
    /// `metrics` (builder style). Recording never changes behaviour.
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = metrics;
        self
    }
}

impl Actor<NetMsg> for RootProcess {
    fn fork(&self) -> Option<Box<dyn Actor<NetMsg> + Send>> {
        // Forkable exactly when the actuation rule is: the rule is the only
        // field without a structural clone. The log handle stays shared so
        // the speculation hooks' rollback reaches the fork's appends too.
        let rule = self.rule.fork()?;
        Some(Box::new(RootProcess {
            id: self.id,
            n: self.n,
            cfg: self.cfg.clone(),
            bundle: self.bundle.clone(),
            event_seq: self.event_seq,
            rule,
            flood: self.flood,
            quarantine: self.quarantine,
            seen_strobes: self.seen_strobes.clone(),
            log: Arc::clone(&self.log),
            metrics: self.metrics.clone(),
            trace_stamp: self.trace_stamp,
        }))
    }

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.bundle = Some(ClockBundle::new(self.id, self.n + 1, &self.cfg, ctx.rng()));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, from: ActorId, msg: NetMsg) {
        let now = ctx.now();
        match msg {
            NetMsg::Report(report) => {
                let bundle = self.bundle.as_mut().expect("started");
                // Receive event r: merge piggybacked stamps (SC3/VC3).
                let stamps = bundle.on_receive(&report.send_stamps, now);
                self.metrics.receives.inc();
                self.event_seq += 1;
                let root_vector = stamps.vector.clone();
                if ctx.trace_enabled() {
                    ctx.trace_process(
                        psn_sim::trace::ProcessEventKind::Receive,
                        self.trace_stamp.stamp_of(&stamps),
                        from as u64,
                    );
                }
                let mut log = self.log.lock();
                log.events.push(ProcEvent {
                    process: self.id,
                    seq: self.event_seq,
                    at: now,
                    kind: EventKind::Receive { from },
                    stamps,
                });
                log.reports.push(ReceivedReport {
                    report: report.clone(),
                    arrived_at: now,
                    root_vector,
                });
                let commands = self.rule.on_report(&report, &log);
                for (target, key, command) in commands {
                    log.actuations.push(ActuationRecord { at: now, target, key, command });
                    drop(log);
                    // The command is a computation message: a send event s
                    // at the root (SC2/VC2), stamps piggybacked.
                    let bundle = self.bundle.as_mut().expect("started");
                    let send_stamps = bundle.on_send(now);
                    self.metrics.sends.inc();
                    self.event_seq += 1;
                    if ctx.trace_enabled() {
                        ctx.trace_process(
                            psn_sim::trace::ProcessEventKind::Send,
                            self.trace_stamp.stamp_of(&send_stamps),
                            target as u64,
                        );
                    }
                    ctx.send(
                        target,
                        NetMsg::Actuate { key, command, stamps: Box::new(send_stamps.clone()) },
                    );
                    log = self.log.lock();
                    log.events.push(ProcEvent {
                        process: self.id,
                        seq: self.event_seq,
                        at: now,
                        kind: EventKind::Send { to: target },
                        stamps: send_stamps,
                    });
                }
            }
            NetMsg::Strobe { origin, seq, payload } => {
                if self.quarantine && !payload.verify() {
                    return; // corrupted in transit: drop, never relay
                }
                // The root participates in the strobe protocol as a
                // listener (it is in P, so system-wide broadcasts reach it).
                self.bundle.as_mut().expect("started").on_strobe(&payload);
                if origin < self.seen_strobes.len() && seq > self.seen_strobes[origin] {
                    self.seen_strobes[origin] = seq;
                    if self.flood {
                        ctx.broadcast(NetMsg::Strobe { origin, seq, payload });
                        self.metrics.on_strobe_broadcast();
                    }
                }
            }
            NetMsg::WorldSense { .. } | NetMsg::Actuate { .. } => {
                // The root senses nothing and is never actuated.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{SensorProcess, StrobePolicy};
    use psn_sim::delay::DelayModel;
    use psn_sim::engine::Engine;
    use psn_sim::network::NetworkConfig;
    use psn_sim::time::SimTime;

    /// Actuate back at the reporting process whenever value > 5.
    struct Threshold;
    impl ActuationRule for Threshold {
        fn on_report(
            &mut self,
            report: &Report,
            _: &ExecutionLog,
        ) -> Vec<(ProcessId, AttrKey, AttrValue)> {
            if report.value.as_int() > 5 {
                vec![(report.process, report.key, AttrValue::Bool(true))]
            } else {
                Vec::new()
            }
        }

        fn fork(&self) -> Option<Box<dyn ActuationRule>> {
            Some(Box::new(Threshold))
        }
    }

    fn run(rule: Box<dyn ActuationRule>) -> Arc<Mutex<ExecutionLog>> {
        let log = ExecutionLog::shared();
        let net = NetworkConfig::full_mesh(3, DelayModel::Synchronous);
        let mut engine = Engine::new(net, 1);
        for id in 0..2 {
            engine.add_actor(Box::new(SensorProcess::new(
                id,
                2,
                2,
                ClockConfig::default(),
                StrobePolicy::default(),
                Arc::clone(&log),
            )));
        }
        engine.add_actor(Box::new(RootProcess::new(
            2,
            2,
            ClockConfig::default(),
            rule,
            Arc::clone(&log),
        )));
        engine.inject(
            SimTime::from_millis(10),
            0,
            0,
            NetMsg::WorldSense {
                key: AttrKey::new(0, 0),
                value: AttrValue::Int(3),
                world_event: 0,
            },
        );
        engine.inject(
            SimTime::from_millis(20),
            1,
            1,
            NetMsg::WorldSense {
                key: AttrKey::new(1, 0),
                value: AttrValue::Int(9),
                world_event: 1,
            },
        );
        engine.run();
        log
    }

    #[test]
    fn root_collects_reports_in_order() {
        let log = run(Box::new(NoActuation));
        let log = log.lock();
        assert_eq!(log.reports.len(), 2);
        assert_eq!(log.reports[0].report.process, 0);
        assert_eq!(log.reports[1].report.process, 1);
        assert_eq!(log.reports[1].report.value, AttrValue::Int(9));
    }

    #[test]
    fn root_vector_advances_monotonically() {
        let log = run(Box::new(NoActuation));
        let log = log.lock();
        let v0 = &log.reports[0].root_vector;
        let v1 = &log.reports[1].root_vector;
        assert!(v0.lt(v1), "the root's knowledge frontier only grows");
    }

    #[test]
    fn actuation_rule_closes_the_loop() {
        let log = run(Box::new(Threshold));
        let log = log.lock();
        assert_eq!(log.actuations.len(), 1, "only the report with value 9 triggers");
        assert_eq!(log.actuations[0].target, 1);
        // The actuated sensor recorded an 'a' event.
        let p1_events = log.events_of(1);
        assert!(p1_events.iter().any(|e| e.kind.tag() == 'a'));
    }

    #[test]
    fn receive_events_recorded_at_root() {
        let log = run(Box::new(NoActuation));
        let log = log.lock();
        let root_events = log.events_of(2);
        assert_eq!(root_events.len(), 2);
        assert!(root_events.iter().all(|e| e.kind.tag() == 'r'));
        // Root's vector clock merged the senders' components.
        let last = &root_events[1].stamps.vector;
        assert!(last[0] >= 1 && last[1] >= 1);
    }
}
