//! The sensor/actuator process (paper §2.1–2.2).
//!
//! A [`SensorProcess`] is an active network entity with an independent
//! clock (the whole [`ClockBundle`]). Its behaviour per the execution
//! model:
//!
//! - on a significant change of a watched attribute it records a **sense
//!   event** `n`, ticks its clocks (SC1/VC1/SSC1/SVC1), **broadcasts a
//!   strobe** (per the strobe policy), and **sends a report** to the root
//!   P₀ (a send event `s`, rules SC2/VC2);
//! - on receiving a strobe it merges (SSC2/SVC2) without ticking;
//! - on receiving an actuation command from the root it records an
//!   **actuate event** `a` and outputs to the environment.

use std::sync::Arc;

use parking_lot::Mutex;

use psn_clocks::{LogicalClock, ProcessId};
use psn_sim::engine::{Actor, Context};
use psn_sim::fault::FaultEvent;
use psn_sim::network::ActorId;
use psn_world::AttrValue;

use crate::bundle::{ClockBundle, ClockConfig, StrobePayload};
use crate::event::{EventKind, ProcEvent};
use crate::log::ExecutionLog;
use crate::message::{NetMsg, Report};
use crate::metrics::ExecMetrics;

/// Per-process strobe policy.
///
/// The paper (§4.2): "the strobe by a process can synchronize at any time.
/// However, this synchronization need not happen any more frequently than
/// the local sensing of relevant events" — `every = 1` is the maximum
/// event-driven rate; `heartbeat` adds optional *time-driven* strobes
/// (current clock value, no tick) so long-quiet processes still
/// disseminate what they know; `flood` makes receivers relay unseen
/// strobes, implementing the protocol's System-wide_Broadcast on overlays
/// that are not fully meshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StrobePolicy {
    /// Broadcast on every k-th sense event (1 = every event, the default).
    pub every: usize,
    /// Also broadcast the current clock (without ticking) at this period.
    pub heartbeat: Option<psn_sim::time::SimDuration>,
    /// Relay strobes not seen before to neighbours (multi-hop overlays).
    pub flood: bool,
    /// Drop strobes whose integrity checksum fails (corrupted in transit by
    /// the fault plane) instead of merging the garbled stamps. Off by
    /// default: the paper's protocol trusts the channel, and E13 measures
    /// exactly what that trust costs per discipline.
    pub quarantine: bool,
}

impl Default for StrobePolicy {
    fn default() -> Self {
        StrobePolicy { every: 1, heartbeat: None, flood: false, quarantine: false }
    }
}

/// How a sensor process restores its state when the fault plane recovers it
/// after a crash (the crash-recover model; crash-stop is simply a script
/// with no recovery entry).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryPolicy {
    /// Replay the durable [`ExecutionLog`] on restart: fast-forward the
    /// Lamport clock, merge-catch-up the vector clocks past the last stamp
    /// this process assigned, and restore the sense/event counters. With
    /// `false` the process restarts amnesiac at zero — its new stamps may
    /// collide with pre-crash ones (what E11 measures).
    pub replay_log: bool,
    /// Run a post-recovery resync round for the ε-synced physical clock
    /// (planned by [`psn_sync::plan_resync`]); until it completes the clock
    /// is desynced and ε-based detection windows are unsound for this
    /// process. `None` never resyncs.
    pub resync: Option<psn_sync::ResyncParams>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { replay_log: true, resync: Some(psn_sync::ResyncParams::default()) }
    }
}

/// Timer tag of the post-recovery resync completion.
const TIMER_RESYNC: u64 = 1;
/// Heartbeat timer tags are `TIMER_HEARTBEAT_BASE + generation`; the
/// generation bumps on every recovery so a pre-crash heartbeat chain that
/// survived the outage (its timer fired after the recovery) is recognised
/// as stale and dropped instead of doubling the heartbeat rate.
const TIMER_HEARTBEAT_BASE: u64 = 8;

/// Which logical stamp the structured run trace carries on process events
/// (sense/send/receive/actuate/detect).
///
/// The engine's structured trace ([`psn_sim::trace`]) records each semantic
/// process event together with the acting process's logical timestamp. The
/// vector stamp is the default: it is the stamp the offline
/// happened-before analysis ([`psn_sim::trace_analysis`]) reconstructs the
/// causal DAG from. The scalar mode records only the Lamport value —
/// cheaper on the wire formats, but the trace then upper-bounds causality
/// instead of capturing it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TraceStampMode {
    /// Stamp trace records with the Lamport scalar clock value.
    Scalar,
    /// Stamp trace records with the Mattern/Fidge vector clock (default).
    #[default]
    Vector,
}

impl TraceStampMode {
    /// Extract this mode's [`psn_sim::trace::ClockStamp`] from a stamp set.
    pub fn stamp_of(self, stamps: &crate::bundle::StampSet) -> psn_sim::trace::ClockStamp {
        match self {
            TraceStampMode::Scalar => psn_sim::trace::ClockStamp::Scalar(stamps.lamport.value),
            TraceStampMode::Vector => psn_sim::trace::ClockStamp::vector(stamps.vector.as_slice()),
        }
    }
}

/// A sensor/actuator process actor.
pub struct SensorProcess {
    id: ProcessId,
    n: usize,
    root: ActorId,
    cfg: ClockConfig,
    policy: StrobePolicy,
    bundle: Option<ClockBundle>,
    sense_count: usize,
    event_seq: usize,
    /// This process's strobe counter (event-driven + heartbeat strobes).
    strobe_seq: u64,
    /// Flood dedup: highest strobe seq seen per origin.
    seen_strobes: Vec<u64>,
    log: Arc<Mutex<ExecutionLog>>,
    metrics: ExecMetrics,
    trace_stamp: TraceStampMode,
    recovery: RecoveryPolicy,
    /// Current heartbeat chain generation (see [`TIMER_HEARTBEAT_BASE`]).
    heartbeat_gen: u64,
}

impl SensorProcess {
    /// A process `id` among `n` sensors reporting to `root`.
    pub fn new(
        id: ProcessId,
        n: usize,
        root: ActorId,
        cfg: ClockConfig,
        policy: StrobePolicy,
        log: Arc<Mutex<ExecutionLog>>,
    ) -> Self {
        SensorProcess {
            id,
            n,
            root,
            cfg,
            policy,
            bundle: None,
            sense_count: 0,
            event_seq: 0,
            strobe_seq: 0,
            seen_strobes: vec![0; n + 1],
            log,
            metrics: ExecMetrics::disabled(),
            trace_stamp: TraceStampMode::default(),
            recovery: RecoveryPolicy::default(),
            heartbeat_gen: 0,
        }
    }

    /// How to restore state when the fault plane recovers this process
    /// after a crash (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Record semantic event counts and strobe byte accounting into
    /// `metrics` (builder style). Recording never changes behaviour.
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Which logical stamp to attach to structured trace records (builder
    /// style). Only consulted when the engine trace is enabled.
    pub fn with_trace_stamp(mut self, mode: TraceStampMode) -> Self {
        self.trace_stamp = mode;
        self
    }

    fn next_strobe_seq(&mut self) -> u64 {
        self.strobe_seq += 1;
        self.strobe_seq
    }

    fn record(
        &mut self,
        at: psn_sim::time::SimTime,
        kind: EventKind,
        stamps: crate::bundle::StampSet,
    ) {
        self.event_seq += 1;
        self.log.lock().events.push(ProcEvent {
            process: self.id,
            seq: self.event_seq,
            at,
            kind,
            stamps,
        });
    }

    /// Broadcast the current clocks without ticking (heartbeat / recovery
    /// announce — the §4.2 synchronize-at-any-time strobe).
    fn broadcast_current_strobe(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let snap = self.bundle.as_ref().expect("started").snapshot(ctx.now());
        let payload = StrobePayload::new(snap.strobe_scalar, snap.strobe_vector);
        let seq = self.next_strobe_seq();
        ctx.broadcast(NetMsg::Strobe { origin: self.id, seq, payload });
        self.metrics.on_strobe_broadcast();
    }

    /// The crash-recover protocol. The engine delivers this after the
    /// scripted downtime: rebuild volatile clock state (fresh hardware
    /// imperfections — a reboot), replay the durable log per the
    /// [`RecoveryPolicy`] to re-prime the logical clocks (Lamport
    /// fast-forward, vector merge-catch-up), desync the ε-clock until the
    /// planned resync round completes, restart the heartbeat chain, and
    /// announce a catch-up strobe so peers re-merge quickly.
    fn recover(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let mut bundle = ClockBundle::new(self.id, self.n + 1, &self.cfg, ctx.rng());
        if self.recovery.replay_log {
            let log = self.log.lock();
            let mine = log.events_of(self.id);
            if let Some(last) = mine.last() {
                bundle.lamport.fast_forward(last.stamps.lamport.value);
                bundle.vector.prime(&last.stamps.vector);
                // Strobe clocks re-prime via their merge rules (SSC2/SVC2):
                // absorbing our own last stamp never ticks.
                bundle.strobe_scalar.on_strobe(&last.stamps.strobe_scalar);
                bundle.strobe_vector.on_strobe(&last.stamps.strobe_vector);
                self.event_seq = last.seq;
            } else {
                self.event_seq = 0;
            }
            self.sense_count = mine.iter().filter(|e| e.kind.tag() == 'n').count();
        } else {
            // Amnesiac restart: counters at zero, clocks at zero — new
            // stamps may collide with pre-crash ones (E11 measures this).
            self.sense_count = 0;
            self.event_seq = 0;
        }
        // strobe_seq intentionally survives the crash conceptually: it is
        // monotone across incarnations (this object persists), so flood
        // dedup at peers stays sound.
        bundle.synced.desync(ctx.rng(), self.cfg.max_offset);
        self.bundle = Some(bundle);
        if let Some(params) = &self.recovery.resync {
            ctx.set_timer(psn_sync::plan_resync(params).completes_after, TIMER_RESYNC);
        }
        if let Some(period) = self.policy.heartbeat {
            self.heartbeat_gen += 1;
            ctx.set_timer(period, TIMER_HEARTBEAT_BASE + self.heartbeat_gen);
        }
        self.broadcast_current_strobe(ctx);
    }
}

impl Actor<NetMsg> for SensorProcess {
    fn fork(&self) -> Option<Box<dyn Actor<NetMsg> + Send>> {
        // Every field is a value clone except the log handle, which stays
        // shared on purpose: the engine's speculation hooks roll the shared
        // log back alongside the actors (see psn-core's execution module),
        // so the fork must keep writing where the rollback can reach.
        Some(Box::new(SensorProcess {
            id: self.id,
            n: self.n,
            root: self.root,
            cfg: self.cfg.clone(),
            policy: self.policy,
            bundle: self.bundle.clone(),
            sense_count: self.sense_count,
            event_seq: self.event_seq,
            strobe_seq: self.strobe_seq,
            seen_strobes: self.seen_strobes.clone(),
            log: Arc::clone(&self.log),
            metrics: self.metrics.clone(),
            trace_stamp: self.trace_stamp,
            recovery: self.recovery.clone(),
            heartbeat_gen: self.heartbeat_gen,
        }))
    }

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        // Clock hardware imperfections come from this actor's own stream,
        // so the bundle is built here rather than in `new`.
        self.bundle = Some(ClockBundle::new(self.id, self.n + 1, &self.cfg, ctx.rng()));
        if let Some(period) = self.policy.heartbeat {
            ctx.set_timer(period, TIMER_HEARTBEAT_BASE + self.heartbeat_gen);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, tag: u64) {
        if tag == TIMER_RESYNC {
            // The post-recovery sync round completed: the ε bound holds
            // again (see psn_sync::recovery for what the round costs).
            self.bundle.as_mut().expect("started").synced.resync(ctx.rng());
            return;
        }
        if tag != TIMER_HEARTBEAT_BASE + self.heartbeat_gen {
            return; // stale heartbeat chain from before a recovery
        }
        // Heartbeat strobe: broadcast the *current* clocks without ticking
        // (a pure "catch up" message — the §4.2 synchronize-at-any-time).
        self.broadcast_current_strobe(ctx);
        if let Some(period) = self.policy.heartbeat {
            ctx.set_timer(period, TIMER_HEARTBEAT_BASE + self.heartbeat_gen);
        }
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, NetMsg>, event: &FaultEvent) {
        match event {
            FaultEvent::Recover => self.recover(ctx),
            FaultEvent::Clock(kind) => {
                let now = ctx.now();
                let bundle = self.bundle.as_mut().expect("started");
                bundle.apply_clock_fault(*kind, now, ctx.rng(), &self.cfg);
            }
            FaultEvent::Crash => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, _from: ActorId, msg: NetMsg) {
        let now = ctx.now();
        match msg {
            NetMsg::WorldSense { key, value, world_event } => {
                let bundle = self.bundle.as_mut().expect("started");
                // The sense event n: tick all relevant-event clocks.
                let (stamps, strobe) = bundle.on_sense(now);
                self.sense_count += 1;
                self.metrics.senses.inc();
                self.record(now, EventKind::Sense { key, value, world_event }, stamps.clone());
                if ctx.trace_enabled() {
                    ctx.trace_process(
                        psn_sim::trace::ProcessEventKind::Sense,
                        self.trace_stamp.stamp_of(&stamps),
                        world_event as u64,
                    );
                }
                // Strobe broadcast per policy (SSC1/SVC1's
                // System-wide_Broadcast).
                if self.sense_count.is_multiple_of(self.policy.every) {
                    let seq = self.next_strobe_seq();
                    ctx.broadcast(NetMsg::Strobe { origin: self.id, seq, payload: strobe });
                    self.metrics.on_strobe_broadcast();
                }
                // The report to P0: a semantic send event s.
                let bundle = self.bundle.as_mut().expect("started");
                let send_stamps = bundle.on_send(now);
                self.metrics.on_report_sent();
                self.record(now, EventKind::Send { to: self.root }, send_stamps.clone());
                if ctx.trace_enabled() {
                    ctx.trace_process(
                        psn_sim::trace::ProcessEventKind::Send,
                        self.trace_stamp.stamp_of(&send_stamps),
                        self.root as u64,
                    );
                }
                ctx.send(
                    self.root,
                    NetMsg::Report(Report {
                        process: self.id,
                        sense_seq: self.sense_count,
                        key,
                        value,
                        stamps,
                        send_stamps,
                        world_event,
                    }),
                );
            }
            NetMsg::Strobe { origin, seq, payload } => {
                if self.policy.quarantine && !payload.verify() {
                    // Corrupted in transit: drop instead of merging garbage
                    // (and never relay it).
                    return;
                }
                // SSC2/SVC2: merge, no tick, no logged event (control
                // message).
                self.bundle.as_mut().expect("started").on_strobe(&payload);
                // Flood relay: forward strobes not seen before so the
                // System-wide_Broadcast covers multi-hop overlays.
                if origin < self.seen_strobes.len() && seq > self.seen_strobes[origin] {
                    self.seen_strobes[origin] = seq;
                    if self.policy.flood && origin != self.id {
                        ctx.broadcast(NetMsg::Strobe { origin, seq, payload });
                        self.metrics.on_strobe_broadcast();
                    }
                }
            }
            NetMsg::Actuate { key, command, stamps: piggyback } => {
                // Receive event r (merge the root's stamps, SC3/VC3), then
                // the actuate event a — the sensor-side half of the §4.1
                // causal chain.
                let bundle = self.bundle.as_mut().expect("started");
                bundle.on_receive(&piggyback, now);
                let stamps = bundle.on_internal(now);
                self.metrics.actuates.inc();
                if ctx.trace_enabled() {
                    ctx.trace_process(
                        psn_sim::trace::ProcessEventKind::Actuate,
                        self.trace_stamp.stamp_of(&stamps),
                        key.object as u64,
                    );
                }
                self.record(now, EventKind::Actuate { key, command }, stamps);
                ctx.note(format!("actuate {key:?} := {command:?}"));
            }
            NetMsg::Report(_) => {
                // Sensors do not process peer reports.
            }
        }
    }
}

/// The command the actuation path applies to a sensed attribute: used by
/// closed-loop examples (e.g. the exhibition hall locking its doors).
pub fn actuation_command(value: bool) -> AttrValue {
    AttrValue::Bool(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::delay::DelayModel;
    use psn_sim::engine::Engine;
    use psn_sim::network::NetworkConfig;
    use psn_sim::time::SimTime;
    use psn_world::AttrKey;

    fn run_two_sensors(delay: DelayModel) -> Arc<Mutex<ExecutionLog>> {
        let log = ExecutionLog::shared();
        let net = NetworkConfig::full_mesh(3, delay);
        let mut engine = Engine::new(net, 42);
        for id in 0..2 {
            engine.add_actor(Box::new(SensorProcess::new(
                id,
                2,
                2,
                ClockConfig::default(),
                StrobePolicy::default(),
                Arc::clone(&log),
            )));
        }
        // A dummy root that just absorbs messages.
        struct Sink;
        impl Actor<NetMsg> for Sink {
            fn on_message(&mut self, _: &mut Context<'_, NetMsg>, _: ActorId, _: NetMsg) {}
        }
        engine.add_actor(Box::new(Sink));
        // Two world events at 10ms (P0) and 20ms (P1).
        engine.inject(
            SimTime::from_millis(10),
            0,
            0,
            NetMsg::WorldSense {
                key: AttrKey::new(0, 0),
                value: AttrValue::Int(1),
                world_event: 0,
            },
        );
        engine.inject(
            SimTime::from_millis(20),
            1,
            1,
            NetMsg::WorldSense {
                key: AttrKey::new(1, 0),
                value: AttrValue::Int(5),
                world_event: 1,
            },
        );
        engine.run();
        log
    }

    #[test]
    fn sense_records_event_and_send() {
        let log = run_two_sensors(DelayModel::Synchronous);
        let log = log.lock();
        let p0: Vec<_> = log.events_of(0);
        assert_eq!(p0.len(), 2, "sense + send");
        assert_eq!(p0[0].kind.tag(), 'n');
        assert_eq!(p0[1].kind.tag(), 's');
        assert_eq!(p0[0].stamps.strobe_vector.as_slice(), [1, 0, 0]);
    }

    #[test]
    fn strobes_synchronize_under_zero_delay() {
        let log = run_two_sensors(DelayModel::Synchronous);
        let log = log.lock();
        // P1's sense at 20ms happens after P0's strobe arrived (Δ=0), so
        // P1's strobe vector covers P0's event.
        let p1_sense = &log.events_of(1)[0];
        assert_eq!(p1_sense.stamps.strobe_vector.as_slice(), [1, 1, 0]);
        assert_eq!(p1_sense.stamps.strobe_scalar.value, 2, "caught up to 1, ticked to 2");
    }

    #[test]
    fn delayed_strobes_leave_concurrency() {
        // Delay 50ms > gap 10ms: P1's sense at 20ms happens before P0's
        // strobe lands, so its stamp does not cover P0's event.
        let log = run_two_sensors(DelayModel::Fixed(psn_sim::time::SimDuration::from_millis(50)));
        let log = log.lock();
        let p1_sense = &log.events_of(1)[0];
        assert_eq!(p1_sense.stamps.strobe_vector.as_slice(), [0, 1, 0]);
        assert!(p1_sense
            .stamps
            .strobe_vector
            .concurrent(&log.events_of(0)[0].stamps.strobe_vector));
    }
}
