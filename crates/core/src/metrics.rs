//! Execution-level instrumentation: what the ⟨P, L, O, C⟩ planes did.
//!
//! [`ExecMetrics`] is a bundle of pre-registered handles into a
//! [`psn_sim::metrics::Metrics`] registry, cloned into every
//! [`crate::process::SensorProcess`] and the [`crate::root::RootProcess`]
//! of an instrumented execution (see
//! [`crate::execution::run_execution_instrumented`]). It counts the
//! paper's semantic events — sense `n`, send `s`, receive `r`, actuate `a`
//! — plus strobe broadcasts, and accounts wire bytes **by clock
//! discipline** using the same analytic model as experiment E7: each
//! strobe broadcast reaches the `n−1` peers plus the root, an O(1) scalar
//! strobe payload is 8 bytes, an O(n) vector strobe payload is
//! `8·(n+1)` bytes, and each report piggybacks one `8·(n+1)`-byte causal
//! vector.
//!
//! Recording is observational only — no randomness, no effect on event
//! order — so instrumented and plain executions are bit-identical.

use psn_sim::metrics::{Counter, Metrics};

/// Bytes per scalar (strobe scalar / SSC) clock value on the wire.
const SCALAR_BYTES: u64 = 8;

/// Pre-registered execution metric handles. Clone freely; clones share
/// the same underlying cells.
#[derive(Clone)]
pub struct ExecMetrics {
    /// Sensor processes in the execution (the vector clocks have `n + 1`
    /// components, root included).
    n: u64,
    /// Sense events (`n` in the paper's event taxonomy).
    pub senses: Counter,
    /// Send events (`s`): reports from sensors plus actuation commands
    /// from the root.
    pub sends: Counter,
    /// Receive events (`r`): reports arriving at the root.
    pub receives: Counter,
    /// Actuate events (`a`) at sensor processes.
    pub actuates: Counter,
    /// Strobe broadcasts initiated (event-driven plus heartbeat).
    pub strobes: Counter,
    /// Wire bytes attributable to O(1) scalar strobe payloads.
    pub strobe_scalar_bytes: Counter,
    /// Wire bytes attributable to O(n) vector strobe payloads.
    pub strobe_vector_bytes: Counter,
    /// Wire bytes of causal vector piggybacks on reports.
    pub causal_piggyback_bytes: Counter,
}

impl ExecMetrics {
    /// Register execution metrics for an `n`-sensor run in `metrics`.
    pub fn attach(metrics: &Metrics, n: usize) -> Self {
        ExecMetrics {
            n: n as u64,
            senses: metrics.counter("exec.senses"),
            sends: metrics.counter("exec.sends"),
            receives: metrics.counter("exec.receives"),
            actuates: metrics.counter("exec.actuates"),
            strobes: metrics.counter("exec.strobes_broadcast"),
            strobe_scalar_bytes: metrics.counter("exec.strobe_scalar_bytes"),
            strobe_vector_bytes: metrics.counter("exec.strobe_vector_bytes"),
            causal_piggyback_bytes: metrics.counter("exec.causal_piggyback_bytes"),
        }
    }

    /// Inert handles for uninstrumented runs.
    pub fn disabled() -> Self {
        ExecMetrics::attach(&Metrics::disabled(), 0)
    }

    /// Every counter handle in a fixed order, for whole-bundle snapshot /
    /// restore by the optimistic-mode speculation hooks (see
    /// `psn-core`'s execution module): the checkpoint records each value,
    /// and a rollback [`Counter::reset_to`]s them so a discarded
    /// speculative window leaves no trace in the semantic counts.
    pub fn handles(&self) -> [&Counter; 8] {
        [
            &self.senses,
            &self.sends,
            &self.receives,
            &self.actuates,
            &self.strobes,
            &self.strobe_scalar_bytes,
            &self.strobe_vector_bytes,
            &self.causal_piggyback_bytes,
        ]
    }

    /// Record one strobe broadcast: the payload reaches the `n−1` peers
    /// plus the root, costing O(1) bytes per receiver under the scalar
    /// discipline and O(n) under the vector discipline.
    pub fn on_strobe_broadcast(&self) {
        self.strobes.inc();
        let receivers = self.n; // n−1 peers + the root
        self.strobe_scalar_bytes.add(receivers * SCALAR_BYTES);
        self.strobe_vector_bytes.add(receivers * SCALAR_BYTES * (self.n + 1));
    }

    /// Record one report send: the causal vector piggyback costs
    /// `8·(n+1)` bytes.
    pub fn on_report_sent(&self) {
        self.sends.inc();
        self.causal_piggyback_bytes.add(SCALAR_BYTES * (self.n + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_matches_the_e7_model() {
        let m = Metrics::new();
        let em = ExecMetrics::attach(&m, 4); // n = 4 sensors
        em.on_strobe_broadcast();
        em.on_strobe_broadcast();
        em.on_report_sent();
        let snap = m.snapshot();
        assert_eq!(snap.counter("exec.strobes_broadcast"), Some(2));
        // 2 broadcasts × 4 receivers × 8 bytes.
        assert_eq!(snap.counter("exec.strobe_scalar_bytes"), Some(64));
        // The vector payload is (n+1)× the scalar payload.
        assert_eq!(snap.counter("exec.strobe_vector_bytes"), Some(64 * 5));
        assert_eq!(snap.counter("exec.causal_piggyback_bytes"), Some(8 * 5));
        assert_eq!(snap.counter("exec.sends"), Some(1));
    }

    #[test]
    fn disabled_handles_are_inert() {
        let em = ExecMetrics::disabled();
        em.on_strobe_broadcast();
        em.senses.inc();
        assert_eq!(em.senses.get(), 0);
        assert_eq!(em.strobes.get(), 0);
    }
}
