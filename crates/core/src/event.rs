//! The event types of the execution model (paper §2.2).
//!
//! "At each process Pᵢ ∈ P, the local execution is a sequence of
//! alternating states and state transitions caused by events. An event e is
//! one of three types: an internal event, which is of type compute (c),
//! sense (n), or actuate (a); a send event (s); a receive event (r)."
//!
//! Every event carries its ground-truth time for *scoring only* — protocol
//! logic never reads it — plus the full [`StampSet`]
//! of timestamps every clock assigned to it.

use serde::{Deserialize, Serialize};

use psn_clocks::ProcessId;
use psn_sim::time::SimTime;
use psn_world::{AttrKey, AttrValue, WorldEventId};

use crate::bundle::StampSet;

/// What kind of event occurred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// An internal computation step (type `c`).
    Compute,
    /// A sense event (type `n`): a significant change of a world attribute
    /// was observed.
    Sense {
        /// The attribute that changed.
        key: AttrKey,
        /// The sensed new value.
        value: AttrValue,
        /// The ground-truth world event observed (scoring only).
        world_event: WorldEventId,
    },
    /// An actuate event (type `a`): a command was output to a world object.
    Actuate {
        /// The attribute being driven.
        key: AttrKey,
        /// The commanded value.
        command: AttrValue,
    },
    /// An in-network send (type `s`) of a computation message.
    Send {
        /// The destination process.
        to: ProcessId,
    },
    /// An in-network receive (type `r`) of a computation message.
    Receive {
        /// The source process.
        from: ProcessId,
    },
}

impl EventKind {
    /// One-letter tag from the paper: c/n/a/s/r.
    pub fn tag(&self) -> char {
        match self {
            EventKind::Compute => 'c',
            EventKind::Sense { .. } => 'n',
            EventKind::Actuate { .. } => 'a',
            EventKind::Send { .. } => 's',
            EventKind::Receive { .. } => 'r',
        }
    }

    /// Is this a *relevant* event for the strobe protocols (a sense event)?
    pub fn is_relevant(&self) -> bool {
        matches!(self, EventKind::Sense { .. })
    }
}

/// One event in a process's local execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcEvent {
    /// The process at which the event occurred.
    pub process: ProcessId,
    /// Local sequence number (1-based; intervals run between successive
    /// events, §2.2).
    pub seq: usize,
    /// Ground-truth time — scoring only.
    pub at: SimTime,
    /// The event's kind and payload.
    pub kind: EventKind,
    /// Timestamps assigned by every clock in the bundle.
    pub stamps: StampSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_paper() {
        assert_eq!(EventKind::Compute.tag(), 'c');
        assert_eq!(
            EventKind::Sense { key: AttrKey::new(0, 0), value: AttrValue::Int(1), world_event: 0 }
                .tag(),
            'n'
        );
        assert_eq!(
            EventKind::Actuate { key: AttrKey::new(0, 0), command: AttrValue::Bool(true) }.tag(),
            'a'
        );
        assert_eq!(EventKind::Send { to: 1 }.tag(), 's');
        assert_eq!(EventKind::Receive { from: 1 }.tag(), 'r');
    }

    #[test]
    fn only_sense_is_relevant_for_strobes() {
        assert!(EventKind::Sense {
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(1),
            world_event: 0
        }
        .is_relevant());
        assert!(!EventKind::Compute.is_relevant());
        assert!(!EventKind::Send { to: 0 }.is_relevant());
        assert!(!EventKind::Receive { from: 0 }.is_relevant());
        assert!(!EventKind::Actuate { key: AttrKey::new(0, 0), command: AttrValue::Int(0) }
            .is_relevant());
    }
}
