//! Network-plane message types.
//!
//! Three protocol messages flow through ⟨P, L⟩:
//!
//! - **strobes** — the control broadcasts of SSC1/SVC1;
//! - **reports** — a sensor telling the root P₀ about a sense event, so the
//!   root can detect global predicates ("a message send event s is
//!   triggered at a sensor/actuator process to communicate information
//!   about a relevant sensed event", §2.2);
//! - **actuation commands** — the root closing the loop ("if the predicate
//!   is satisfied, a message send event is also triggered to actuate").
//!
//! `WorldSense` is not a network message: it is the simulator injecting a
//! world-plane attribute change into the sensing process (the n event's
//! cause), bypassing delay/loss.

use serde::{Deserialize, Serialize};

use psn_clocks::ProcessId;
use psn_sim::engine::Message;
use psn_world::{AttrKey, AttrValue, WorldEventId};

use crate::bundle::{StampSet, StrobePayload};

/// A report of one sense event, sent sensor → root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The reporting process.
    pub process: ProcessId,
    /// Per-process sense counter (1-based): the index of this sense event
    /// among the process's sense events.
    pub sense_seq: usize,
    /// The attribute that changed.
    pub key: AttrKey,
    /// The sensed value.
    pub value: AttrValue,
    /// Timestamps of the **sense** event (what detectors reason over).
    pub stamps: StampSet,
    /// Timestamps of the **send** event (piggyback for the root's
    /// causality-based clocks, rules SC3/VC3).
    pub send_stamps: StampSet,
    /// Ground-truth id of the observed world event — scoring only.
    pub world_event: WorldEventId,
}

/// Everything that travels between actors in an execution.
// Boxing the big variants would touch every construction/match site for a
// type that only lives inside the engine's event queue; not worth it.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetMsg {
    /// Simulator → sensor: a watched attribute changed (not a network
    /// message; injected without delay/loss).
    WorldSense {
        /// The attribute that changed.
        key: AttrKey,
        /// Its new value.
        value: AttrValue,
        /// Ground-truth world event id.
        world_event: WorldEventId,
    },
    /// A strobe broadcast (SSC1 + SVC1 payloads together; per-family byte
    /// accounting is analytic, see `psn-bench` E7). `origin`/`seq` identify
    /// the strobe for flood deduplication on multi-hop overlays — the
    /// protocol's System-wide_Broadcast must reach all of P even when L is
    /// not a full mesh.
    Strobe {
        /// The process that originated the strobe.
        origin: usize,
        /// The origin's strobe counter (dedup key with `origin`).
        seq: u64,
        /// The clock payloads.
        payload: StrobePayload,
    },
    /// Sensor → root report of a sense event.
    Report(Report),
    /// Root → sensor actuation command. A computation message: it carries
    /// the root's send stamps so the sensor's actuate event is causally
    /// ordered after the detection (the §4.1 chain
    /// `e1@l1 → sense@l1 → … → actuate@l2 → e2@l2`).
    Actuate {
        /// The attribute to drive.
        key: AttrKey,
        /// The commanded value.
        command: AttrValue,
        /// The root's send-event stamps (piggyback, rules SC2/VC2).
        stamps: Box<StampSet>,
    },
}

impl Message for NetMsg {
    fn size_bytes(&self) -> usize {
        match self {
            NetMsg::WorldSense { .. } => 0, // not a network message
            // Scalar strobe (8) + vector strobe (8n): both variants on one
            // simulated message. The integrity checksum rides in the link
            // layer's CRC and is not counted.
            NetMsg::Strobe { payload, .. } => 8 + 8 * payload.vector.len(),
            // Key + value + the two stamp sets (each: lamport 8 + vector 8n
            // + strobe scalar 8 + strobe vector 8n + physical 8 + synced 8).
            NetMsg::Report(r) => 16 + 2 * (32 + 16 * r.stamps.vector.len()),
            NetMsg::Actuate { stamps, .. } => 16 + 32 + 16 * stamps.vector.len(),
        }
    }

    /// Channel-fault corruption: garble a strobe's clock stamps, leaving
    /// its checksum stale so quarantining receivers can detect the damage.
    /// Other message kinds are assumed protected end-to-end (reports and
    /// actuation commands would be retransmitted by a real transport) and
    /// pass through unharmed.
    fn corrupt(&mut self, rng: &mut psn_sim::rng::RngStream) -> bool {
        let NetMsg::Strobe { payload, .. } = self else {
            return false;
        };
        // A large bit-flip-style bump: big enough to drag scalar-strobe
        // receivers far into the future (the E13 cascade), and to set one
        // vector component beyond anything legitimately assigned.
        let bump = rng.uniform_u64(1_000, 10_000);
        if payload.vector.is_empty() || rng.bernoulli(0.5) {
            payload.scalar.value += bump;
        } else {
            let k = rng.index(payload.vector.len());
            payload.vector.as_mut_slice()[k] += bump;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_clocks::{PhysReading, ScalarStamp, VectorStamp};
    use psn_sim::time::SimTime;

    fn stamps(n: usize) -> StampSet {
        StampSet {
            lamport: ScalarStamp { value: 0, process: 0 },
            vector: VectorStamp::zero(n),
            strobe_scalar: ScalarStamp { value: 0, process: 0 },
            strobe_vector: VectorStamp::zero(n),
            physical: PhysReading(0),
            synced: PhysReading(0),
            truth: SimTime::ZERO,
        }
    }

    #[test]
    fn strobe_size_scales_with_n() {
        let s4 = NetMsg::Strobe {
            origin: 0,
            seq: 1,
            payload: StrobePayload::new(ScalarStamp { value: 1, process: 0 }, VectorStamp::zero(4)),
        };
        let s8 = NetMsg::Strobe {
            origin: 0,
            seq: 1,
            payload: StrobePayload::new(ScalarStamp { value: 1, process: 0 }, VectorStamp::zero(8)),
        };
        assert_eq!(s4.size_bytes(), 8 + 32);
        assert_eq!(s8.size_bytes(), 8 + 64);
    }

    #[test]
    fn corruption_garbles_strobes_detectably_and_spares_the_rest() {
        use psn_sim::engine::Message as _;
        let mut rng = psn_sim::rng::RngFactory::new(5).stream(0);
        for _ in 0..20 {
            let mut m = NetMsg::Strobe {
                origin: 0,
                seq: 1,
                payload: StrobePayload::new(
                    ScalarStamp { value: 3, process: 0 },
                    VectorStamp::from_slice(&[3, 1]),
                ),
            };
            assert!(m.corrupt(&mut rng));
            let NetMsg::Strobe { payload, .. } = &m else { unreachable!() };
            assert!(!payload.verify(), "checksum catches the garbled stamp");
            assert!(
                payload.scalar.value >= 1_000 || payload.vector.iter().any(|&c| c >= 1_000),
                "exactly one stamp took a large bump"
            );
        }
        let mut report = NetMsg::WorldSense {
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(1),
            world_event: 0,
        };
        assert!(!report.corrupt(&mut rng), "only strobes are corruptible");
    }

    #[test]
    fn world_sense_is_free() {
        let m = NetMsg::WorldSense {
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(1),
            world_event: 0,
        };
        assert_eq!(m.size_bytes(), 0);
    }

    #[test]
    fn report_size_includes_both_stamp_sets() {
        let r = NetMsg::Report(Report {
            process: 0,
            sense_seq: 1,
            key: AttrKey::new(0, 0),
            value: AttrValue::Int(1),
            stamps: stamps(4),
            send_stamps: stamps(4),
            world_event: 0,
        });
        assert_eq!(r.size_bytes(), 16 + 2 * (32 + 64));
    }
}
