//! Running a complete execution: world plane → network plane → root.
//!
//! [`run_execution`] takes a generated [`Scenario`] (the ground-truth world
//! timeline plus the sensing assignment) and a network/clock configuration,
//! builds the ⟨P, L⟩ plane (n sensors + the root P₀ on a full mesh), injects
//! every world event into its watching sensor at its ground-truth time, and
//! runs to quiescence. The result is an [`ExecutionTrace`]: the complete
//! observable history every detector in `psn-predicates` consumes —
//! detectors built on different clocks therefore compare on *identical*
//! executions.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_sim::delay::DelayModel;
use psn_sim::engine::Engine;
use psn_sim::loss::LossModel;
use psn_sim::network::{NetStats, NetworkConfig, Topology};
use psn_sim::provider::{EventProvider, ExternalEvent, TimelineProvider};
use psn_sim::time::SimTime;
use psn_world::Scenario;

use crate::bundle::ClockConfig;
use crate::log::ExecutionLog;
use crate::message::NetMsg;
use crate::metrics::ExecMetrics;
use crate::process::{RecoveryPolicy, SensorProcess, StrobePolicy, TraceStampMode};
use crate::root::{ActuationRule, NoActuation, RootProcess};

/// Full configuration of one execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// The message-delay model (Δ).
    pub delay: DelayModel,
    /// The message-loss model.
    pub loss: LossModel,
    /// FIFO channels?
    pub fifo: bool,
    /// Clock hardware parameters (ε, offsets, drift).
    pub clocks: ClockConfig,
    /// Strobe policy.
    pub strobes: StrobePolicy,
    /// Overlay topology L over the n sensors + root (node `n`). `None`
    /// (default) uses a full mesh. For sparse overlays enable
    /// [`StrobePolicy::flood`] so System-wide_Broadcast still covers P.
    pub topology: Option<Topology>,
    /// Master seed (drives delays, losses, and clock imperfections — the
    /// world timeline has its own seed at generation time).
    pub seed: u64,
    /// Record the full network-plane trace (sent/delivered/lost messages
    /// plus causally stamped sense/send/receive/actuate process events)
    /// into [`ExecutionTrace::sim`]. Off by default (memory).
    pub record_sim_trace: bool,
    /// Which logical stamp to attach to structured trace records when
    /// `record_sim_trace` is on (vector by default; ignored otherwise).
    pub trace_stamp: TraceStampMode,
    /// Hard stop for the simulation. `None` runs to quiescence — which is
    /// correct for purely event-driven runs but would never terminate with
    /// heartbeat strobes; when heartbeats are enabled and no end time is
    /// given, the run stops 30 s (sim time) after the last world event.
    pub end_time: Option<SimTime>,
    /// Fault script to install into the engine's fault plane (crashes,
    /// partitions, channel faults, clock faults). `None` (default) leaves
    /// the fault plane uninstalled — the hot path is untouched and the run
    /// is bit-identical to a faults-unaware build.
    pub faults: Option<psn_sim::fault::FaultScript>,
    /// How sensors come back from a crash (log replay, clock re-priming,
    /// ε-resync). Only consulted when `faults` crash-recovers a process.
    pub recovery: RecoveryPolicy,
    /// Number of engine shards to run on (see [`psn_sim::engine::Engine::run_sharded`]).
    /// `1` (default) runs the sequential loop. More shards execute the run
    /// in parallel but **bit-identically**: the result is the same for
    /// every shard count. Requires a delay model with a nonzero minimum
    /// (lookahead); zero-lookahead models fall back to sequential.
    pub shards: usize,
    /// Override the engine's dense-FIFO actor limit
    /// ([`psn_sim::engine::DENSE_ACTOR_LIMIT`]). `None` (default) keeps the
    /// built-in threshold: runs with more actors use the sparse channel
    /// store, smaller runs the dense matrix. `Some(0)` forces the sparse
    /// path — the dense-vs-sparse cross-validation tests run the same cell
    /// both ways and require bit-identical results.
    pub fifo_dense_limit: Option<usize>,
    /// How actors are partitioned across shards when `shards > 1`. `None`
    /// (default) means [`ShardPlanKind::Contiguous`]. Any plan produces a
    /// bit-identical run — this is a throughput knob only. (`Option` so
    /// configs serialized before this field existed still deserialize:
    /// the vendored serde shim maps an absent field to `None`.)
    pub shard_plan: Option<ShardPlanKind>,
    /// Window discipline for sharded runs: conservative lookahead windows
    /// or optimistic (Time Warp) speculation with rollback. `None`
    /// (default) means [`SpeculationMode::Conservative`]. Bit-identical
    /// either way; `Option` for snapshot back-compat as above.
    pub speculation: Option<SpeculationMode>,
}

/// How [`run_execution_full`] partitions the `n + 1` actors (sensors plus
/// the root) into engine shards — see [`psn_sim::engine::ShardPlan`]. Every
/// kind yields a bit-identical run; they differ only in load balance and
/// cross-shard traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPlanKind {
    /// Contiguous id ranges (the historical `run_sharded` layout).
    Contiguous,
    /// Round-robin by actor id.
    Interleaved,
    /// Seeded hash of the actor id.
    Hash,
    /// Traffic-aware ([`psn_sim::engine::ShardPlan::by_affinity`]):
    /// co-locate chatty pairs using a static estimate of per-sensor report
    /// volume — each sensor's edge to the root is weighted by the number
    /// of world events it will observe, so the heaviest reporters share
    /// the root's shard and their report traffic never crosses a shard
    /// boundary.
    Affinity,
}

/// Window discipline for sharded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeculationMode {
    /// Lookahead-bounded windows only (the default): lanes never execute
    /// past the horizon that cross-shard messages could still reach.
    Conservative,
    /// Optimistic (Time Warp): lanes run several windows ahead from a
    /// checkpoint and roll back when a straggler cross-shard message
    /// arrives below the speculated horizon. Requires every actor to be
    /// forkable ([`psn_sim::engine::Actor::fork`]) — the sensor and root
    /// processes are, provided the actuation rule implements
    /// [`ActuationRule::fork`]; otherwise the engine silently falls back
    /// to conservative windows. Bit-identical to conservative mode.
    Optimistic,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            delay: DelayModel::delta(psn_sim::time::SimDuration::from_millis(100)),
            loss: LossModel::None,
            fifo: true,
            clocks: ClockConfig::default(),
            strobes: StrobePolicy::default(),
            topology: None,
            seed: 0,
            record_sim_trace: false,
            trace_stamp: TraceStampMode::default(),
            end_time: None,
            faults: None,
            recovery: RecoveryPolicy::default(),
            shards: 1,
            fifo_dense_limit: None,
            shard_plan: None,
            speculation: None,
        }
    }
}

impl ExecutionConfig {
    /// The effective shard plan kind (`None` → [`ShardPlanKind::Contiguous`]).
    pub fn shard_plan_kind(&self) -> ShardPlanKind {
        self.shard_plan.unwrap_or(ShardPlanKind::Contiguous)
    }

    /// The effective window discipline (`None` → [`SpeculationMode::Conservative`]).
    pub fn speculation_mode(&self) -> SpeculationMode {
        self.speculation.unwrap_or(SpeculationMode::Conservative)
    }
}

/// The observable outcome of one execution.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Number of sensor processes (the root has id `n`).
    pub n: usize,
    /// The complete log: process events, reports at the root, actuations.
    pub log: ExecutionLog,
    /// Network counters.
    pub net: NetStats,
    /// The network-plane trace (empty unless
    /// [`ExecutionConfig::record_sim_trace`] was set).
    pub sim: psn_sim::trace::Trace,
    /// Ground-truth end time of the run.
    pub ended_at: SimTime,
    /// Fault-plane counters (`None` when [`ExecutionConfig::faults`] was
    /// `None`, i.e. no plane was installed).
    pub faults: Option<psn_sim::fault::FaultStats>,
    /// Speculative windows rolled back during the run. Always `0` unless
    /// [`ExecutionConfig::speculation`] asked for
    /// [`SpeculationMode::Optimistic`] on a sharded run. Rollbacks are a
    /// throughput signal only — the trace is bit-identical regardless.
    pub rollbacks: u64,
}

impl ExecutionTrace {
    /// The root's process id.
    pub fn root_id(&self) -> usize {
        self.n
    }
}

/// Run `scenario` under `cfg` with no actuation rule.
pub fn run_execution(scenario: &Scenario, cfg: &ExecutionConfig) -> ExecutionTrace {
    run_execution_with_rule(scenario, cfg, Box::new(NoActuation))
}

/// Run `scenario` under `cfg` with a custom actuation rule at the root.
pub fn run_execution_with_rule(
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    rule: Box<dyn ActuationRule>,
) -> ExecutionTrace {
    run_execution_full(scenario, cfg, rule, &psn_sim::metrics::Metrics::disabled())
}

/// Run `scenario` under `cfg`, recording engine and execution metrics
/// (events, delivered/dropped messages, semantic event counts, strobe wire
/// bytes by clock discipline) into `metrics`. The returned trace is
/// bit-identical to an uninstrumented [`run_execution`] of the same inputs.
pub fn run_execution_instrumented(
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    metrics: &psn_sim::metrics::Metrics,
) -> ExecutionTrace {
    run_execution_full(scenario, cfg, Box::new(NoActuation), metrics)
}

/// The world timeline as an injection sequence: each world event becomes an
/// [`ExternalEvent`] addressed to its watching sensor process at its
/// ground-truth time (events nobody watches are dropped, exactly as batch
/// injection drops them). This is the [`TimelineProvider`] source for both
/// the batch path and timeline-fed live sessions.
pub fn world_events(scenario: &Scenario) -> Vec<ExternalEvent<NetMsg>> {
    let mut out = Vec::with_capacity(scenario.timeline.events.len());
    for e in &scenario.timeline.events {
        if let Some(p) = scenario.sensing.process_for(e.key) {
            out.push(ExternalEvent {
                at: e.at,
                to: p,
                from: p,
                msg: NetMsg::WorldSense { key: e.key, value: e.value, world_event: e.id },
            });
        }
    }
    out
}

/// Coordinator-side rollback of the psn-core state that lives *outside*
/// the engine's lanes: the shared [`ExecutionLog`] and the [`ExecMetrics`]
/// semantic counters, both of which actors append to mid-window through
/// shared handles that a lane checkpoint cannot capture. The engine calls
/// [`checkpoint`](psn_sim::engine::SpeculationHooks::checkpoint) at a
/// quiescent barrier (no lane running), so length marks and counter
/// snapshots describe exactly the committed prefix; a rollback truncates /
/// restores to them and the deterministic redo re-produces whatever the
/// discarded speculation had appended below the redo bound.
struct LogHooks {
    log: Arc<Mutex<ExecutionLog>>,
    exec: ExecMetrics,
    /// `(events, reports, actuations)` lengths at the checkpoint.
    log_mark: (usize, usize, usize),
    /// [`ExecMetrics::handles`] values at the checkpoint, in handle order.
    exec_mark: [u64; 8],
}

impl LogHooks {
    fn new(log: Arc<Mutex<ExecutionLog>>, exec: ExecMetrics) -> Self {
        LogHooks { log, exec, log_mark: (0, 0, 0), exec_mark: [0; 8] }
    }
}

impl psn_sim::engine::SpeculationHooks for LogHooks {
    fn checkpoint(&mut self) {
        {
            let log = self.log.lock();
            self.log_mark = (log.events.len(), log.reports.len(), log.actuations.len());
        }
        for (slot, c) in self.exec_mark.iter_mut().zip(self.exec.handles()) {
            *slot = c.get();
        }
    }

    fn commit(&mut self) {}

    fn rollback(&mut self) {
        {
            let mut log = self.log.lock();
            log.events.truncate(self.log_mark.0);
            log.reports.truncate(self.log_mark.1);
            log.actuations.truncate(self.log_mark.2);
        }
        for (mark, c) in self.exec_mark.iter().zip(self.exec.handles()) {
            c.reset_to(*mark);
        }
    }
}

/// Build the engine for an `n`-sensor execution: network plane, metrics,
/// tracing, end-time policy, the n [`SensorProcess`] actors plus the root,
/// and the fault plane. Shared by the batch runner and
/// [`LiveExecution`](crate::live::LiveExecution) so both paths wire the
/// actors identically — the precondition for batch/live bit-identity.
/// `heartbeat_horizon` bounds heartbeat-driven runs that set no explicit
/// end time (batch derives it from the scenario; live passes `None` and
/// paces the run itself).
pub(crate) fn build_engine(
    n: usize,
    cfg: &ExecutionConfig,
    rule: Box<dyn ActuationRule>,
    metrics: &psn_sim::metrics::Metrics,
    log: &Arc<Mutex<ExecutionLog>>,
    heartbeat_horizon: Option<SimTime>,
) -> Engine<NetMsg> {
    assert!(n > 0, "execution needs at least one sensor process");
    let topology = match &cfg.topology {
        Some(t) => {
            assert_eq!(t.len(), n + 1, "topology must cover n sensors + the root");
            t.clone()
        }
        None => Topology::FullMesh { n: n + 1 },
    };
    let net = NetworkConfig {
        topology,
        delay: cfg.delay.clone(),
        loss: cfg.loss.clone(),
        fifo: cfg.fifo,
    };
    let mut engine: Engine<NetMsg> = Engine::new(net, cfg.seed);
    if let Some(limit) = cfg.fifo_dense_limit {
        engine.set_fifo_dense_limit(limit);
    }
    engine.set_metrics(metrics);
    let exec_metrics = ExecMetrics::attach(metrics, n);
    if cfg.record_sim_trace {
        engine.enable_trace();
    }
    match (cfg.end_time, cfg.strobes.heartbeat) {
        (Some(end), _) => engine.set_end_time(end),
        (None, Some(_)) => {
            // Recurring heartbeat timers never drain the queue on their
            // own; bound the run past the last world event.
            if let Some(horizon) = heartbeat_horizon {
                engine.set_end_time(horizon);
            }
        }
        (None, None) => {}
    }
    for id in 0..n {
        engine.add_actor(Box::new(
            SensorProcess::new(
                id,
                n,
                n, // root actor id
                cfg.clocks.clone(),
                cfg.strobes,
                Arc::clone(log),
            )
            .with_metrics(exec_metrics.clone())
            .with_trace_stamp(cfg.trace_stamp)
            .with_recovery(cfg.recovery.clone()),
        ));
    }
    engine.add_actor(Box::new(
        RootProcess::new(n, n, cfg.clocks.clone(), rule, Arc::clone(log))
            .with_flood(cfg.strobes.flood)
            .with_quarantine(cfg.strobes.quarantine)
            .with_metrics(exec_metrics.clone())
            .with_trace_stamp(cfg.trace_stamp),
    ));
    if let Some(script) = &cfg.faults {
        engine.install_faults(script);
    }
    if cfg.speculation_mode() == SpeculationMode::Optimistic {
        engine.set_optimistic(true);
        engine.set_speculation_hooks(Box::new(LogHooks::new(Arc::clone(log), exec_metrics)));
    }
    engine
}

/// The [`psn_sim::engine::ShardPlan`] `cfg` asks for, over the `n + 1`
/// actors (n sensors plus the root). [`ShardPlanKind::Affinity`] weights
/// each sensor↔root edge by the number of world events the sensor will
/// observe — a static, pre-run estimate of its report traffic (the same
/// quantity [`psn_sim::trace_analysis::TraceAnalysis::affinity_edges`]
/// measures after the fact) — so the heaviest reporters land on the root's
/// shard and their traffic never crosses a shard boundary.
fn shard_plan_for(
    scenario: &Scenario,
    n: usize,
    cfg: &ExecutionConfig,
) -> psn_sim::engine::ShardPlan {
    use psn_sim::engine::ShardPlan;
    let actors = n + 1;
    match cfg.shard_plan_kind() {
        ShardPlanKind::Contiguous => ShardPlan::contiguous(actors, cfg.shards),
        ShardPlanKind::Interleaved => ShardPlan::interleaved(actors, cfg.shards),
        ShardPlanKind::Hash => ShardPlan::by_hash(actors, cfg.shards),
        ShardPlanKind::Affinity => {
            let mut weight = vec![0u64; n];
            for e in &scenario.timeline.events {
                if let Some(p) = scenario.sensing.process_for(e.key) {
                    if p < n {
                        weight[p] += 1;
                    }
                }
            }
            let edges: Vec<(usize, usize, u64)> =
                (0..n).filter(|&p| weight[p] > 0).map(|p| (p, n, weight[p])).collect();
            ShardPlan::by_affinity(actors, cfg.shards, &edges)
        }
    }
}

/// The general entry point: custom actuation rule plus metrics registry.
pub fn run_execution_full(
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    rule: Box<dyn ActuationRule>,
    metrics: &psn_sim::metrics::Metrics,
) -> ExecutionTrace {
    run_execution_inner(scenario, cfg, rule, metrics, &psn_sim::telemetry::Telemetry::disabled())
}

/// Run `scenario` with both a metrics registry and a phase-scoped
/// wall-clock [`psn_sim::telemetry::Telemetry`] registry attached. The
/// telemetry plane records where the host machine's time goes (per-shard
/// busy / barrier-wait / ring-exchange, coordinator drain / rollback /
/// redo) and is strictly observational: the returned trace is bit-identical
/// to an unprofiled [`run_execution`] of the same inputs.
pub fn run_execution_profiled(
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    metrics: &psn_sim::metrics::Metrics,
    telemetry: &psn_sim::telemetry::Telemetry,
) -> ExecutionTrace {
    run_execution_inner(scenario, cfg, Box::new(NoActuation), metrics, telemetry)
}

fn run_execution_inner(
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    rule: Box<dyn ActuationRule>,
    metrics: &psn_sim::metrics::Metrics,
    telemetry: &psn_sim::telemetry::Telemetry,
) -> ExecutionTrace {
    let n = scenario.num_processes();
    assert!(n > 0, "scenario must have at least one sensor process");
    let log = ExecutionLog::shared();
    let horizon = scenario.timeline.duration() + psn_sim::time::SimDuration::from_secs(30);
    let mut engine = build_engine(n, cfg, rule, metrics, &log, Some(horizon));
    engine.set_telemetry(telemetry);

    // Inject the world timeline through the provider abstraction: a single
    // `poll(MAX)` surrenders the pre-built list in list order, so the
    // injection sequence — and with it every inject id and delivery
    // tie-break — is bit-identical to the historical direct loop. Sensing
    // itself is immediate; only the network plane has delays.
    engine.reserve_events(scenario.timeline.events.len());
    let mut provider = TimelineProvider::new(world_events(scenario));
    let mut batch = Vec::new();
    provider.poll(SimTime::MAX, &mut batch);
    for ev in batch {
        engine.inject(ev.at, ev.to, ev.from, ev.msg);
    }

    let ended_at = if cfg.shards > 1 {
        engine.run_with_plan(&shard_plan_for(scenario, n, cfg))
    } else {
        engine.run()
    };
    let rollbacks = engine.rollbacks();
    let fault_stats = engine.fault_stats();
    let mut log =
        Arc::try_unwrap(log).map(Mutex::into_inner).unwrap_or_else(|shared| shared.lock().clone());
    // Canonicalise the merged event stream: shard lanes append to the
    // shared log in nondeterministic lock order, and the sequential engine
    // appends in dispatch order. `(at, process, seq)` is a total key over
    // the identical event *set* both modes produce, so sorting makes the
    // log bit-identical for every shard count. Reports and actuations are
    // appended only by the root (one lane) and are already canonical.
    log.events.sort_by_key(|e| (e.at, e.process, e.seq));
    ExecutionTrace {
        n,
        log,
        net: engine.stats().clone(),
        sim: engine.trace().clone(),
        ended_at,
        faults: fault_stats,
        rollbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::time::{SimDuration, SimTime};
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};

    fn tiny_scenario() -> Scenario {
        exhibition::generate(
            &ExhibitionParams {
                doors: 3,
                arrival_rate_hz: 1.0,
                mean_stay: SimDuration::from_secs(20),
                duration: SimTime::from_secs(120),
                capacity: 10,
            },
            7,
        )
    }

    #[test]
    fn every_world_event_yields_a_sense_and_a_report() {
        let s = tiny_scenario();
        let t = run_execution(&s, &ExecutionConfig::default());
        let senses = t.log.sense_events().len();
        assert_eq!(senses, s.timeline.len(), "each world event sensed once");
        assert_eq!(t.log.reports.len(), senses, "each sense reported (lossless)");
    }

    #[test]
    fn executions_are_deterministic() {
        let s = tiny_scenario();
        let cfg = ExecutionConfig::default();
        let a = run_execution(&s, &cfg);
        let b = run_execution(&s, &cfg);
        assert_eq!(a.log.events, b.log.events);
        assert_eq!(a.log.reports, b.log.reports);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn instrumented_run_is_identical_and_counts_semantics() {
        let s = tiny_scenario();
        let cfg = ExecutionConfig::default();
        let plain = run_execution(&s, &cfg);
        let m = psn_sim::metrics::Metrics::new();
        let inst = run_execution_instrumented(&s, &cfg, &m);
        assert_eq!(plain.log.events, inst.log.events, "metrics must not perturb the run");
        assert_eq!(plain.log.reports, inst.log.reports);
        assert_eq!(plain.net, inst.net);

        let snap = m.snapshot();
        let n = inst.n as u64;
        assert_eq!(snap.counter("exec.senses"), Some(inst.log.sense_events().len() as u64));
        assert_eq!(snap.counter("exec.receives"), Some(inst.log.reports.len() as u64));
        assert_eq!(snap.counter("exec.strobes_broadcast"), Some(inst.net.broadcasts));
        // Byte accounting reproduces the E7 analytic model exactly.
        assert_eq!(snap.counter("exec.strobe_scalar_bytes"), Some(inst.net.broadcasts * n * 8));
        assert_eq!(
            snap.counter("exec.strobe_vector_bytes"),
            Some(inst.net.broadcasts * n * 8 * (n + 1))
        );
        assert_eq!(snap.counter("engine.messages_delivered"), Some(inst.net.messages_delivered));
    }

    #[test]
    fn sim_trace_carries_stamped_process_events() {
        let s = tiny_scenario();
        let plain = run_execution(&s, &ExecutionConfig::default());
        let cfg = ExecutionConfig { record_sim_trace: true, ..Default::default() };
        let traced = run_execution(&s, &cfg);
        // Tracing is observational: the run itself is bit-identical.
        assert_eq!(plain.log.events, traced.log.events);
        assert_eq!(plain.log.reports, traced.log.reports);
        assert_eq!(plain.net, traced.net);
        assert!(plain.sim.is_empty() && !traced.sim.is_empty());

        use psn_sim::trace::{ProcessEventKind, TraceKind};
        let count = |k: ProcessEventKind| {
            traced
                .sim
                .records()
                .iter()
                .filter(|r| matches!(&r.kind, TraceKind::Process { kind, .. } if *kind == k))
                .count()
        };
        let senses = plain.log.sense_events().len();
        assert_eq!(count(ProcessEventKind::Sense), senses);
        assert_eq!(count(ProcessEventKind::Send), senses, "one report send per sense");
        assert_eq!(count(ProcessEventKind::Receive), plain.log.reports.len());
        // Default mode stamps with the full vector clock, and every sense's
        // stamp has the sensing process's own component set.
        for r in traced.sim.records() {
            if let TraceKind::Process { actor, kind: ProcessEventKind::Sense, stamp, .. } = &r.kind
            {
                let v = stamp.as_vector().expect("vector mode is the default");
                assert!(v[*actor] >= 1, "own component ticked at the sense event");
            }
        }
    }

    #[test]
    fn scalar_trace_stamp_mode_records_lamport_values() {
        let s = tiny_scenario();
        let cfg = ExecutionConfig {
            record_sim_trace: true,
            trace_stamp: crate::process::TraceStampMode::Scalar,
            ..Default::default()
        };
        let traced = run_execution(&s, &cfg);
        use psn_sim::trace::{ClockStamp, TraceKind};
        let mut saw = 0usize;
        for r in traced.sim.records() {
            if let TraceKind::Process { stamp, .. } = &r.kind {
                assert!(matches!(stamp, ClockStamp::Scalar(v) if *v >= 1));
                saw += 1;
            }
        }
        assert!(saw > 0);
    }

    #[test]
    fn different_seed_changes_arrival_order_or_stamps() {
        let s = tiny_scenario();
        let a = run_execution(&s, &ExecutionConfig { seed: 1, ..Default::default() });
        let b = run_execution(&s, &ExecutionConfig { seed: 2, ..Default::default() });
        assert_ne!(a.log.reports, b.log.reports, "delays and clock noise differ");
    }

    #[test]
    fn strobe_throttling_reduces_broadcasts() {
        let s = tiny_scenario();
        let every1 = run_execution(
            &s,
            &ExecutionConfig {
                strobes: StrobePolicy { every: 1, ..Default::default() },
                ..Default::default()
            },
        );
        let every4 = run_execution(
            &s,
            &ExecutionConfig {
                strobes: StrobePolicy { every: 4, ..Default::default() },
                ..Default::default()
            },
        );
        assert!(every4.net.broadcasts < every1.net.broadcasts);
        assert!(every4.net.broadcasts >= every1.net.broadcasts / 5);
    }

    #[test]
    fn loss_drops_reports() {
        let s = tiny_scenario();
        let lossy = run_execution(
            &s,
            &ExecutionConfig { loss: LossModel::Bernoulli { p: 0.5 }, ..Default::default() },
        );
        assert!(lossy.net.messages_lost > 0);
        assert!(lossy.log.reports.len() < s.timeline.len(), "some reports were lost");
    }

    #[test]
    fn synchronous_delay_means_everything_arrives_instantly() {
        let s = tiny_scenario();
        let t = run_execution(
            &s,
            &ExecutionConfig { delay: DelayModel::Synchronous, ..Default::default() },
        );
        for r in &t.log.reports {
            assert_eq!(r.arrived_at, r.report.stamps.truth, "Δ=0: report arrives at sense time");
        }
    }

    #[test]
    fn faults_none_and_empty_script_agree() {
        let s = tiny_scenario();
        let off = run_execution(&s, &ExecutionConfig::default());
        let empty = run_execution(
            &s,
            &ExecutionConfig {
                faults: Some(psn_sim::fault::FaultScript::new()),
                ..Default::default()
            },
        );
        assert_eq!(off.log.events, empty.log.events, "an empty plane is observational");
        assert_eq!(off.log.reports, empty.log.reports);
        assert_eq!(off.net, empty.net);
        assert!(off.faults.is_none());
        assert_eq!(empty.faults, Some(psn_sim::fault::FaultStats::default()));
    }

    #[test]
    fn crash_recover_replays_log_and_rejoins() {
        use psn_sim::fault::{FaultScript, FaultSpec};
        let s = tiny_scenario();
        let crash_at = SimTime::from_secs(30);
        let back_at = SimTime::from_secs(60);
        let cfg = ExecutionConfig {
            faults: Some(FaultScript::new().with(
                crash_at,
                FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_secs(30)) },
            )),
            ..Default::default()
        };
        let t = run_execution(&s, &cfg);
        let stats = t.faults.as_ref().expect("plane installed");
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);

        let p0: Vec<_> = t.log.events_of(0).into_iter().filter(|e| e.kind.tag() == 'n').collect();
        assert!(p0.iter().any(|e| e.at < crash_at), "sensed before the crash");
        assert!(
            !p0.iter().any(|e| e.at >= crash_at && e.at < back_at),
            "no sense events while down"
        );
        assert!(p0.iter().any(|e| e.at >= back_at), "resumed sensing after recovery");

        // Log replay re-primed the counters: event seqs stay strictly
        // monotone across the crash instead of restarting from zero.
        let all0 = t.log.events_of(0);
        for w in all0.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq restarted: {} then {}", w[0].seq, w[1].seq);
        }
        // ... and the vector clock kept its pre-crash knowledge.
        let last = all0.last().unwrap();
        assert!(last.stamps.vector[0] as usize >= p0.len());

        // Deterministic: the same script replays byte-for-byte.
        let again = run_execution(&s, &cfg);
        assert_eq!(t.log.events, again.log.events);
        assert_eq!(t.faults, again.faults);
    }

    #[test]
    fn quarantine_confines_corrupted_strobes() {
        use psn_sim::fault::{ChannelEffect, ChannelFaultRule, FaultScript, FaultSpec};
        let s = tiny_scenario();
        let script = FaultScript::new().with(
            SimTime::ZERO,
            FaultSpec::Channel(ChannelFaultRule {
                from: Some(0),
                to: None,
                prob: 1.0,
                effect: ChannelEffect::Corrupt,
                duration: None,
            }),
        );
        let max_strobe = |t: &ExecutionTrace| {
            t.log.events.iter().map(|e| e.stamps.strobe_scalar.value).max().unwrap_or(0)
        };
        let open = run_execution(
            &s,
            &ExecutionConfig { faults: Some(script.clone()), ..Default::default() },
        );
        assert!(open.faults.as_ref().unwrap().corrupted > 0);
        assert!(
            max_strobe(&open) >= 1_000,
            "without quarantine the garbled stamp infects receivers"
        );
        let guarded = run_execution(
            &s,
            &ExecutionConfig {
                faults: Some(script),
                strobes: StrobePolicy { quarantine: true, ..Default::default() },
                ..Default::default()
            },
        );
        assert!(guarded.faults.as_ref().unwrap().corrupted > 0);
        assert!(max_strobe(&guarded) < 1_000, "quarantine drops garbled strobes at ingest");
    }

    /// A delay model with a nonzero floor: the sharded engine needs
    /// lookahead (`delta()` has `min = 0` and falls back to sequential).
    fn floored_delay() -> DelayModel {
        DelayModel::DeltaBounded {
            min: SimDuration::from_millis(40),
            max: SimDuration::from_millis(240),
        }
    }

    #[test]
    fn every_shard_plan_kind_replays_bit_identically() {
        let s = tiny_scenario();
        let base =
            run_execution(&s, &ExecutionConfig { delay: floored_delay(), ..Default::default() });
        let kinds = [
            ShardPlanKind::Contiguous,
            ShardPlanKind::Interleaved,
            ShardPlanKind::Hash,
            ShardPlanKind::Affinity,
        ];
        for kind in kinds {
            for shards in [2, 4] {
                let cfg = ExecutionConfig {
                    delay: floored_delay(),
                    shards,
                    shard_plan: Some(kind),
                    ..Default::default()
                };
                let t = run_execution(&s, &cfg);
                assert_eq!(base.log.events, t.log.events, "{kind:?} × {shards} shards");
                assert_eq!(base.log.reports, t.log.reports, "{kind:?} × {shards} shards");
                assert_eq!(base.net, t.net, "{kind:?} × {shards} shards");
            }
        }
    }

    #[test]
    fn optimistic_mode_is_bit_identical_and_rolls_back() {
        let s = tiny_scenario();
        let base =
            run_execution(&s, &ExecutionConfig { delay: floored_delay(), ..Default::default() });
        assert_eq!(base.rollbacks, 0, "sequential runs never speculate");
        let cfg = ExecutionConfig {
            delay: floored_delay(),
            shards: 4,
            shard_plan: Some(ShardPlanKind::Affinity),
            speculation: Some(SpeculationMode::Optimistic),
            ..Default::default()
        };
        let t = run_execution(&s, &cfg);
        assert_eq!(base.log.events, t.log.events);
        assert_eq!(base.log.reports, t.log.reports);
        assert_eq!(base.log.actuations, t.log.actuations);
        assert_eq!(base.net, t.net);
        assert!(t.rollbacks > 0, "this workload must trigger real rollbacks");
    }

    #[test]
    fn optimistic_actuation_loop_matches_sequential() {
        use crate::message::Report;
        use psn_clocks::ProcessId;
        use psn_world::{AttrKey, AttrValue};

        // A stateful rule (running count) that opts into speculation.
        struct EveryOther {
            count: u64,
        }
        impl ActuationRule for EveryOther {
            fn on_report(
                &mut self,
                report: &Report,
                _: &ExecutionLog,
            ) -> Vec<(ProcessId, AttrKey, AttrValue)> {
                self.count += 1;
                if self.count.is_multiple_of(2) {
                    vec![(report.process, report.key, AttrValue::Bool(true))]
                } else {
                    Vec::new()
                }
            }
            fn fork(&self) -> Option<Box<dyn ActuationRule>> {
                Some(Box::new(EveryOther { count: self.count }))
            }
        }

        let s = tiny_scenario();
        let seq = run_execution_with_rule(
            &s,
            &ExecutionConfig { delay: floored_delay(), ..Default::default() },
            Box::new(EveryOther { count: 0 }),
        );
        assert!(!seq.log.actuations.is_empty(), "the rule must actually actuate");
        let cfg = ExecutionConfig {
            delay: floored_delay(),
            shards: 4,
            speculation: Some(SpeculationMode::Optimistic),
            ..Default::default()
        };
        let opt = run_execution_with_rule(&s, &cfg, Box::new(EveryOther { count: 0 }));
        assert!(opt.rollbacks > 0, "rollbacks must cover actuation state too");
        assert_eq!(seq.log.events, opt.log.events);
        assert_eq!(seq.log.reports, opt.log.reports);
        assert_eq!(seq.log.actuations, opt.log.actuations);
        assert_eq!(seq.net, opt.net);
    }

    #[test]
    fn optimistic_instrumented_counts_survive_rollbacks() {
        let s = tiny_scenario();
        let m_seq = psn_sim::metrics::Metrics::new();
        let seq = run_execution_instrumented(
            &s,
            &ExecutionConfig { delay: floored_delay(), ..Default::default() },
            &m_seq,
        );
        let m_opt = psn_sim::metrics::Metrics::new();
        let cfg = ExecutionConfig {
            delay: floored_delay(),
            shards: 4,
            speculation: Some(SpeculationMode::Optimistic),
            ..Default::default()
        };
        let opt = run_execution_instrumented(&s, &cfg, &m_opt);
        assert_eq!(seq.log.events, opt.log.events);
        assert!(opt.rollbacks > 0, "need real rollbacks to exercise the counter restore");
        let a = m_seq.snapshot();
        let b = m_opt.snapshot();
        for name in [
            "exec.senses",
            "exec.sends",
            "exec.receives",
            "exec.actuates",
            "exec.strobes_broadcast",
            "exec.strobe_scalar_bytes",
            "exec.strobe_vector_bytes",
            "exec.causal_piggyback_bytes",
            "engine.messages_delivered",
        ] {
            assert_eq!(a.counter(name), b.counter(name), "{name} drifted across rollbacks");
        }
        assert_eq!(b.counter("engine.rollbacks"), Some(opt.rollbacks));
    }

    #[test]
    fn report_vector_stamps_grow_per_process() {
        let s = tiny_scenario();
        let t = run_execution(&s, &ExecutionConfig::default());
        for p in 0..t.n {
            let reports = t.log.reports_of(p);
            for w in reports.windows(2) {
                assert!(
                    w[0].report.stamps.vector.lt(&w[1].report.stamps.vector),
                    "a process's own sense events are totally ordered"
                );
                assert!(w[0].report.sense_seq < w[1].report.sense_seq);
            }
        }
    }
}
