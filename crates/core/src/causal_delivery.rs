//! Causal message delivery (Appendix A, vector-time use 2.d).
//!
//! Among the classical middleware applications of vector time the paper's
//! Appendix A surveys — "causal memory, maintaining consistency of
//! replicated files, …" — causally ordered broadcast is the canonical one:
//! deliver each message only after every message that causally precedes it
//! (Birman–Schiper–Stephenson). This buffer implements the receiver side
//! for broadcast traffic stamped with *delivery* vector clocks, where
//! component k counts messages **broadcast by** process k.
//!
//! Delivery condition at process i for a message m from j with stamp V:
//!
//! ```text
//! V[j] == delivered[j] + 1            (next from j, no gaps)
//! V[k] <= delivered[k]  for k ≠ j     (all causal predecessors delivered)
//! ```

use std::collections::VecDeque;

use psn_clocks::{ProcessId, VectorStamp};

/// A message held with its broadcast stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalMsg<T> {
    /// The broadcasting process.
    pub from: ProcessId,
    /// The sender's broadcast vector stamp (component k = broadcasts by k
    /// observed by the sender, including this one for k = sender).
    pub stamp: VectorStamp,
    /// The payload.
    pub payload: T,
}

/// Sender-side counter: stamps outgoing broadcasts.
#[derive(Debug, Clone)]
pub struct CausalSender {
    id: ProcessId,
    sent: VectorStamp,
}

impl CausalSender {
    /// A sender for process `id` among `n`.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "id out of range");
        CausalSender { id, sent: VectorStamp::zero(n) }
    }

    /// Stamp a new broadcast.
    pub fn stamp<T>(&mut self, payload: T) -> CausalMsg<T> {
        self.sent.tick(self.id);
        CausalMsg { from: self.id, stamp: self.sent.clone(), payload }
    }

    /// Record a delivered message (its broadcasts become our causal past).
    pub fn on_deliver(&mut self, msg_stamp: &VectorStamp) {
        self.sent.merge_from(msg_stamp);
        // Own component stays our own send count: merge_from can only have
        // raised others' components (our own is always ≥ anything received,
        // since nobody sees our k-th broadcast before we send it).
    }
}

/// Receiver-side causal delivery buffer.
#[derive(Debug, Clone)]
pub struct CausalBuffer<T> {
    delivered: VectorStamp,
    pending: VecDeque<CausalMsg<T>>,
}

impl<T> CausalBuffer<T> {
    /// A buffer for an `n`-process system.
    pub fn new(n: usize) -> Self {
        CausalBuffer { delivered: VectorStamp::zero(n), pending: VecDeque::new() }
    }

    /// How many messages are waiting for causal predecessors.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The per-origin delivery counts so far.
    pub fn delivered(&self) -> &VectorStamp {
        &self.delivered
    }

    fn deliverable(&self, m: &CausalMsg<T>) -> bool {
        let v = m.stamp.as_slice();
        if v[m.from] != self.delivered[m.from] + 1 {
            return false;
        }
        v.iter().enumerate().all(|(k, &vk)| k == m.from || vk <= self.delivered[k])
    }

    /// Offer a received message; returns every message that becomes
    /// deliverable (in causal order), possibly including earlier-buffered
    /// ones unblocked by this arrival.
    pub fn offer(&mut self, msg: CausalMsg<T>) -> Vec<CausalMsg<T>> {
        self.pending.push_back(msg);
        let mut out = Vec::new();
        loop {
            let idx = (0..self.pending.len()).find(|&i| self.deliverable(&self.pending[i]));
            match idx {
                Some(i) => {
                    let m = self.pending.remove(i).expect("index valid");
                    self.delivered.tick(m.from);
                    out.push(m);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut tx = CausalSender::new(0, 2);
        let mut rx = CausalBuffer::new(2);
        let m1 = tx.stamp("a");
        let m2 = tx.stamp("b");
        assert_eq!(rx.offer(m1).len(), 1);
        assert_eq!(rx.offer(m2).len(), 1);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn gap_from_same_sender_buffers() {
        let mut tx = CausalSender::new(0, 2);
        let mut rx = CausalBuffer::new(2);
        let m1 = tx.stamp("a");
        let m2 = tx.stamp("b");
        // m2 overtakes m1.
        assert!(rx.offer(m2).is_empty(), "m2 must wait for m1");
        assert_eq!(rx.pending(), 1);
        let delivered = rx.offer(m1);
        assert_eq!(delivered.len(), 2, "m1 unblocks m2");
        assert_eq!(delivered[0].payload, "a");
        assert_eq!(delivered[1].payload, "b");
    }

    #[test]
    fn cross_sender_causality_enforced() {
        // p0 broadcasts a; p1 delivers a then broadcasts b (b causally
        // after a). A receiver that gets b first must hold it until a.
        let mut tx0 = CausalSender::new(0, 3);
        let mut tx1 = CausalSender::new(1, 3);
        let a = tx0.stamp("a");
        tx1.on_deliver(&a.stamp);
        let b = tx1.stamp("b");
        assert!(b.stamp[0] >= 1, "b's stamp records a in its past");

        let mut rx = CausalBuffer::new(3);
        assert!(rx.offer(b.clone()).is_empty(), "b before a: buffered");
        let out = rx.offer(a.clone());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, "a");
        assert_eq!(out[1].payload, "b");
    }

    #[test]
    fn concurrent_messages_deliver_in_any_arrival_order() {
        let mut tx0 = CausalSender::new(0, 2);
        let mut tx1 = CausalSender::new(1, 2);
        let a = tx0.stamp("a");
        let b = tx1.stamp("b"); // concurrent with a
        let mut rx = CausalBuffer::new(2);
        assert_eq!(rx.offer(b.clone()).len(), 1, "no causal constraint");
        assert_eq!(rx.offer(a.clone()).len(), 1);
        // And the other order on a fresh buffer.
        let mut rx2 = CausalBuffer::new(2);
        assert_eq!(rx2.offer(a).len(), 1);
        assert_eq!(rx2.offer(b).len(), 1);
    }

    #[test]
    fn long_chain_unblocks_in_causal_order() {
        // p0 sends m1..m5; they arrive fully reversed.
        let mut tx = CausalSender::new(0, 2);
        let msgs: Vec<_> = (0..5).map(|k| tx.stamp(k)).collect();
        let mut rx = CausalBuffer::new(2);
        for m in msgs.iter().rev().take(4) {
            assert!(rx.offer(m.clone()).is_empty());
        }
        let out = rx.offer(msgs[0].clone());
        assert_eq!(out.iter().map(|m| m.payload).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn delivery_counts_track() {
        let mut tx0 = CausalSender::new(0, 2);
        let mut tx1 = CausalSender::new(1, 2);
        let mut rx = CausalBuffer::new(2);
        rx.offer(tx0.stamp(()));
        rx.offer(tx1.stamp(()));
        rx.offer(tx0.stamp(()));
        assert_eq!(rx.delivered().as_slice(), [2, 1]);
    }
}
