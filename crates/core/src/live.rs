//! Live, incrementally stepped executions with snapshot/restore.
//!
//! The batch pipeline ([`run_execution`](crate::execution::run_execution))
//! injects a complete pre-built timeline and runs to quiescence. A
//! long-running detection service cannot: events arrive over the wire while
//! queries about the causal frontier and predicate status must be answered
//! *now*. [`LiveExecution`] drives the same engine, the same actors, and
//! the same shared [`ExecutionLog`] incrementally:
//!
//! 1. pull due events from an [`EventProvider`] (timeline, generator, or
//!    live channel),
//! 2. inject them through the panic-free
//!    [`Engine::try_inject`](psn_sim::engine::Engine::try_inject) boundary,
//! 3. [`step_until`](psn_sim::engine::Engine::step_until) the watermark.
//!
//! Because the actors are wired by the same builder as the batch path, a
//! timeline-fed live session replays **bit-identically** to the batch run
//! of the same scenario.
//!
//! ## Snapshot / restore
//!
//! Determinism makes state capture trivial and exact: the engine's full
//! state is a pure function of `(n, config, injected events, watermark)`.
//! A [`LiveSnapshot`] therefore stores the durable ingest journal — every
//! event ever injected, in injection order — plus the watermark, and
//! [`LiveSnapshot::restore`] replays it through a fresh engine. The
//! restored session's causal frontier, log, and network counters are
//! byte-for-byte those of the interrupted one: a restarted server loses
//! nothing. Injection *order* matters (inject ids feed delivery
//! tie-breaking), which is why the journal is kept in arrival order rather
//! than time order.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_clocks::VectorStamp;
use psn_sim::engine::{Engine, EngineError};
use psn_sim::network::NetStats;
use psn_sim::provider::{EventProvider, ExternalEvent};
use psn_sim::time::SimTime;

use crate::execution::{build_engine, ExecutionConfig, ExecutionTrace};
use crate::log::ExecutionLog;
use crate::message::NetMsg;
use crate::root::{ActuationRule, NoActuation};

/// One durably journalled ingest event (the serializable twin of
/// [`ExternalEvent`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Delivery time.
    pub at: SimTime,
    /// Destination process.
    pub to: usize,
    /// Conventional source process.
    pub from: usize,
    /// The payload.
    pub msg: NetMsg,
}

/// Current snapshot format version.
pub const LIVE_SNAPSHOT_VERSION: u32 = 1;

/// A restartable capture of a live session: enough to rebuild the engine
/// state bit-exactly by deterministic replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// Format version.
    pub version: u32,
    /// Number of sensor processes.
    pub n: usize,
    /// The execution configuration (delay/loss/clocks/faults/seed…).
    pub config: ExecutionConfig,
    /// How far the session had been stepped.
    pub watermark: SimTime,
    /// Every injected event, in injection order.
    pub events: Vec<LoggedEvent>,
}

/// Why a [`LiveSnapshot`] could not be restored.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot was written by an incompatible format version.
    Version {
        /// The version found in the snapshot.
        found: u32,
    },
    /// Replay hit the engine's injection boundary (a corrupted journal:
    /// out-of-range process or out-of-order times).
    Engine(EngineError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Version { found } => write!(
                f,
                "snapshot format version {found} is not supported (expected {LIVE_SNAPSHOT_VERSION})"
            ),
            RestoreError::Engine(e) => write!(f, "snapshot replay failed: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<EngineError> for RestoreError {
    fn from(e: EngineError) -> Self {
        RestoreError::Engine(e)
    }
}

impl LiveSnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Rebuild a live session from this snapshot by deterministic replay,
    /// then hand future ingest to `provider`. The restored session's
    /// frontier, log, and counters equal the captured session's.
    pub fn restore(
        &self,
        provider: Box<dyn EventProvider<NetMsg>>,
    ) -> Result<LiveExecution, RestoreError> {
        self.restore_full(provider, Box::new(NoActuation), &psn_sim::metrics::Metrics::disabled())
    }

    /// [`restore`](Self::restore) with a custom actuation rule and metrics
    /// registry (mirrors [`LiveExecution::new_full`]).
    pub fn restore_full(
        &self,
        provider: Box<dyn EventProvider<NetMsg>>,
        rule: Box<dyn ActuationRule>,
        metrics: &psn_sim::metrics::Metrics,
    ) -> Result<LiveExecution, RestoreError> {
        if self.version != LIVE_SNAPSHOT_VERSION {
            return Err(RestoreError::Version { found: self.version });
        }
        let mut live =
            LiveExecution::new_full(self.n, self.config.clone(), rule, metrics, provider);
        // Replay the journal directly (not through the provider): events at
        // or past the watermark were journalled but not yet due, and replay
        // must reproduce the original injection order exactly so inject ids
        // — and with them delivery tie-breaks — match.
        for ev in &self.events {
            live.engine.try_inject(ev.at, ev.to, ev.from, ev.msg.clone())?;
            live.journal.push(ev.clone());
        }
        live.engine.step_until(self.watermark)?;
        live.watermark = self.watermark;
        Ok(live)
    }
}

/// A live (incrementally stepped) execution: the batch pipeline's engine
/// and actors, advanced by watermark with events pulled from an
/// [`EventProvider`].
pub struct LiveExecution {
    engine: Engine<NetMsg>,
    log: Arc<Mutex<ExecutionLog>>,
    provider: Box<dyn EventProvider<NetMsg>>,
    n: usize,
    config: ExecutionConfig,
    watermark: SimTime,
    journal: Vec<LoggedEvent>,
    rejected: u64,
    last_rejection: Option<EngineError>,
    scratch: Vec<ExternalEvent<NetMsg>>,
    /// Coordinator-slot handle of the attached telemetry registry (inert
    /// until [`LiveExecution::set_telemetry`]); times the ingest drain.
    tel: psn_sim::telemetry::ShardTelemetry,
}

impl LiveExecution {
    /// Start a live session: `n` sensors plus the root under `cfg`, fed by
    /// `provider`, with no actuation rule and no metrics.
    pub fn new(n: usize, cfg: ExecutionConfig, provider: Box<dyn EventProvider<NetMsg>>) -> Self {
        Self::new_full(
            n,
            cfg,
            Box::new(NoActuation),
            &psn_sim::metrics::Metrics::disabled(),
            provider,
        )
    }

    /// Start a live session with a custom actuation rule and a metrics
    /// registry. The actors are wired by the same builder as the batch
    /// path, so a timeline-fed live session replays batch runs
    /// bit-identically.
    pub fn new_full(
        n: usize,
        cfg: ExecutionConfig,
        rule: Box<dyn ActuationRule>,
        metrics: &psn_sim::metrics::Metrics,
        provider: Box<dyn EventProvider<NetMsg>>,
    ) -> Self {
        let log = ExecutionLog::shared();
        let engine = build_engine(n, &cfg, rule, metrics, &log, None);
        LiveExecution {
            engine,
            log,
            provider,
            n,
            config: cfg,
            watermark: SimTime::ZERO,
            journal: Vec::new(),
            rejected: 0,
            last_rejection: None,
            scratch: Vec::new(),
            tel: psn_sim::telemetry::ShardTelemetry::disabled(),
        }
    }

    /// Attach a phase-scoped wall-clock [`psn_sim::telemetry::Telemetry`]
    /// registry: the engine records its run phases (busy, barrier wait,
    /// ring exchange, …) and [`advance_to`](Self::advance_to) times its
    /// provider poll + inject drain on the coordinator slot. Strictly
    /// observational — the session's results are bit-identical with or
    /// without telemetry attached.
    pub fn set_telemetry(&mut self, t: &psn_sim::telemetry::Telemetry) {
        self.engine.set_telemetry(t);
        self.tel = t.coordinator();
    }

    /// Pull every due event from the provider, inject it, and step the
    /// engine to `t`. Returns the engine clock (`t`, unless the run halted
    /// or hit a configured end time first).
    ///
    /// Individual events the engine's boundary rejects (unknown process,
    /// time behind the watermark) are *counted and skipped* — a live
    /// service must keep running past one bad ingest — and visible via
    /// [`rejected`](Self::rejected) / [`last_rejection`](Self::last_rejection).
    /// Only a regressing watermark fails the whole call.
    pub fn advance_to(&mut self, t: SimTime) -> Result<SimTime, EngineError> {
        if t < self.watermark {
            return Err(EngineError::TimeRegression { at: t, now: self.watermark });
        }
        // The poll + inject drain is coordinator work in the live session:
        // time it on the coordinator slot so serve-side profiles separate
        // ingest cost from engine stepping.
        let d0 = self.tel.start();
        let mut batch = std::mem::take(&mut self.scratch);
        self.provider.poll(t, &mut batch);
        for ev in batch.drain(..) {
            match self.engine.try_inject(ev.at, ev.to, ev.from, ev.msg.clone()) {
                Ok(()) => {
                    self.journal.push(LoggedEvent {
                        at: ev.at,
                        to: ev.to,
                        from: ev.from,
                        msg: ev.msg,
                    });
                }
                Err(e) => {
                    self.rejected += 1;
                    self.last_rejection = Some(e);
                }
            }
        }
        self.scratch = batch;
        self.tel.record(psn_sim::telemetry::Phase::CoordinatorDrain, d0);
        let now = self.engine.step_until(t)?;
        self.watermark = t;
        Ok(now)
    }

    /// Number of sensor processes (the root is process `n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration this session runs under.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// How far the session has been stepped: every event strictly before
    /// the watermark has been processed.
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Events the injection boundary rejected (and skipped) so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The most recent rejection, if any.
    pub fn last_rejection(&self) -> Option<EngineError> {
        self.last_rejection
    }

    /// True once the provider will never yield another event.
    pub fn provider_exhausted(&self) -> bool {
        self.provider.exhausted()
    }

    /// True once an actor halted the run.
    pub fn is_halted(&self) -> bool {
        self.engine.is_halted()
    }

    /// The durable ingest journal: every injected event, in injection
    /// order.
    pub fn journal(&self) -> &[LoggedEvent] {
        &self.journal
    }

    /// The **causal frontier**: the root's vector-clock knowledge after the
    /// latest report it has received — component `p` counts the relevant
    /// events of process `p` the root's state causally reflects. Before any
    /// report arrives the frontier is the zero vector (over n sensors + the
    /// root).
    pub fn frontier(&self) -> VectorStamp {
        let log = self.log.lock();
        match log.reports.last() {
            Some(r) => r.root_vector.clone(),
            None => VectorStamp::zero(self.n + 1),
        }
    }

    /// Run `f` against the shared execution log (briefly locking it).
    pub fn with_log<R>(&self, f: impl FnOnce(&ExecutionLog) -> R) -> R {
        f(&self.log.lock())
    }

    /// Visit every report from index `from` onward, in arrival order,
    /// without cloning (briefly locking the log). Returns how many were
    /// visited. This is the streaming-detector pump: `psn-serve` feeds
    /// fresh reports to its per-predicate detectors through here instead
    /// of materialising a `Vec` per advance.
    pub fn visit_new_reports(
        &self,
        from: usize,
        mut f: impl FnMut(&crate::log::ReceivedReport),
    ) -> usize {
        let log = self.log.lock();
        let from = from.min(log.reports.len());
        for r in &log.reports[from..] {
            f(r);
        }
        log.reports.len() - from
    }

    /// Network counters so far.
    pub fn net_stats(&self) -> NetStats {
        self.engine.stats().clone()
    }

    /// Fault-plane counters (`None` when no script is installed).
    pub fn fault_stats(&self) -> Option<psn_sim::fault::FaultStats> {
        self.engine.fault_stats()
    }

    /// Capture a restartable snapshot of the session as of its watermark.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            version: LIVE_SNAPSHOT_VERSION,
            n: self.n,
            config: self.config.clone(),
            watermark: self.watermark,
            events: self.journal.clone(),
        }
    }

    /// A detector-consumable view of the execution so far. The log is
    /// cloned and canonicalised exactly like the batch trace (sorted by
    /// `(at, process, seq)`); `ended_at` is the current watermark. The
    /// simulator-internal trace is not included (it is still being
    /// written).
    pub fn trace_view(&self) -> ExecutionTrace {
        let mut log = self.log.lock().clone();
        log.events.sort_by_key(|e| (e.at, e.process, e.seq));
        ExecutionTrace {
            n: self.n,
            log,
            net: self.engine.stats().clone(),
            sim: psn_sim::trace::Trace::disabled(),
            ended_at: self.watermark,
            faults: self.engine.fault_stats(),
            rollbacks: self.engine.rollbacks(),
        }
    }

    /// Finish the session: seal the engine trace and return the final
    /// [`ExecutionTrace`] (the batch result shape).
    pub fn finish(mut self) -> ExecutionTrace {
        let ended_at = self.engine.finish();
        let rollbacks = self.engine.rollbacks();
        let fault_stats = self.engine.fault_stats();
        let net = self.engine.stats().clone();
        let sim = self.engine.trace().clone();
        drop(self.engine);
        let mut log = Arc::try_unwrap(self.log)
            .map(Mutex::into_inner)
            .unwrap_or_else(|shared| shared.lock().clone());
        log.events.sort_by_key(|e| (e.at, e.process, e.seq));
        ExecutionTrace { n: self.n, log, net, sim, ended_at, faults: fault_stats, rollbacks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{run_execution, world_events};
    use psn_sim::provider::TimelineProvider;
    use psn_sim::time::SimDuration;
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};
    use psn_world::Scenario;

    fn scenario() -> Scenario {
        exhibition::generate(
            &ExhibitionParams {
                doors: 3,
                arrival_rate_hz: 1.0,
                mean_stay: SimDuration::from_secs(20),
                duration: SimTime::from_secs(90),
                capacity: 10,
            },
            7,
        )
    }

    fn live_from(s: &Scenario, cfg: &ExecutionConfig) -> LiveExecution {
        LiveExecution::new(
            s.num_processes(),
            cfg.clone(),
            Box::new(TimelineProvider::new(world_events(s))),
        )
    }

    /// Step to `end` in fixed chunks, then once more past the settle tail.
    fn drive(live: &mut LiveExecution, end: SimTime, chunk: SimDuration) {
        let mut t = live.watermark();
        while t < end {
            t = t.saturating_add(chunk);
            live.advance_to(t).expect("monotone watermark");
        }
        live.advance_to(end.saturating_add(SimDuration::from_secs(30))).expect("settle");
    }

    #[test]
    fn live_stepping_matches_batch_bit_for_bit() {
        let s = scenario();
        let cfg = ExecutionConfig::default();
        let batch = run_execution(&s, &cfg);
        let mut live = live_from(&s, &cfg);
        drive(&mut live, SimTime::from_secs(90), SimDuration::from_millis(700));
        assert!(live.provider_exhausted());
        let t = live.finish();
        assert_eq!(t.log.events, batch.log.events);
        assert_eq!(t.log.reports, batch.log.reports);
        assert_eq!(t.log.actuations, batch.log.actuations);
        assert_eq!(t.net, batch.net);
    }

    #[test]
    fn live_stepping_matches_batch_under_faults() {
        use psn_sim::fault::{FaultScript, FaultSpec};
        let script = FaultScript::new()
            .with(
                SimTime::from_secs(20),
                FaultSpec::Crash { actor: 1, recover_after: Some(SimDuration::from_secs(15)) },
            )
            .with(
                SimTime::from_secs(40),
                FaultSpec::Partition {
                    group: vec![0, 1],
                    heal_after: SimDuration::from_secs(10),
                    policy: psn_sim::fault::CutPolicy::Drop,
                },
            );
        let s = scenario();
        let cfg = ExecutionConfig { faults: Some(script), ..Default::default() };
        let batch = run_execution(&s, &cfg);
        let mut live = live_from(&s, &cfg);
        drive(&mut live, SimTime::from_secs(90), SimDuration::from_millis(1300));
        let t = live.finish();
        assert_eq!(t.log.events, batch.log.events);
        assert_eq!(t.log.reports, batch.log.reports);
        assert_eq!(t.net, batch.net);
        assert_eq!(t.faults, batch.faults);
    }

    #[test]
    fn frontier_tracks_the_roots_vector_knowledge() {
        let s = scenario();
        let mut live = live_from(&s, &ExecutionConfig::default());
        assert_eq!(live.frontier(), VectorStamp::zero(s.num_processes() + 1));
        live.advance_to(SimTime::from_secs(45)).unwrap();
        let mid = live.frontier();
        live.advance_to(SimTime::from_secs(200)).unwrap();
        let end = live.frontier();
        assert!(mid.lt(&end), "the frontier only grows");
        let reports = live.with_log(|l| l.reports.len());
        assert!(reports > 0);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let s = scenario();
        let cfg = ExecutionConfig::default();
        let cut = SimTime::from_secs(40);

        // Uninterrupted run.
        let mut whole = live_from(&s, &cfg);
        drive(&mut whole, SimTime::from_secs(90), SimDuration::from_millis(900));
        let whole_frontier = whole.frontier();
        let whole_trace = whole.finish();

        // Interrupted at `cut`: snapshot, drop the session, restore, and
        // feed the rest of the timeline.
        let mut first = live_from(&s, &cfg);
        let mut t = SimTime::ZERO;
        while t < cut {
            t = t.saturating_add(SimDuration::from_millis(900));
            first.advance_to(t.min(cut)).unwrap();
        }
        let snap = first.snapshot();
        let json = snap.to_json();
        drop(first);

        let snap = LiveSnapshot::from_json(&json).expect("roundtrip");
        let rest: Vec<_> = world_events(&s).into_iter().filter(|e| e.at >= cut).collect();
        let mut second = snap.restore(Box::new(TimelineProvider::new(rest))).expect("restore");
        assert_eq!(second.watermark(), cut);
        let mut t = cut;
        while t < SimTime::from_secs(90) {
            t = t.saturating_add(SimDuration::from_millis(900));
            second.advance_to(t).unwrap();
        }
        second.advance_to(SimTime::from_secs(120)).unwrap();
        assert_eq!(second.frontier(), whole_frontier, "no causal frontier state lost");
        let trace = second.finish();
        assert_eq!(trace.log.events, whole_trace.log.events);
        assert_eq!(trace.log.reports, whole_trace.log.reports);
        assert_eq!(trace.net, whole_trace.net);
    }

    #[test]
    fn snapshot_mid_window_with_active_faults_restores_exactly() {
        use psn_sim::fault::{FaultScript, FaultSpec};
        // Crash at 20 s recovering at 50 s: the 35 s cut lands *inside* the
        // outage, so restore must reproduce a crashed process mid-script.
        let script = FaultScript::new().with(
            SimTime::from_secs(20),
            FaultSpec::Crash { actor: 0, recover_after: Some(SimDuration::from_secs(30)) },
        );
        let s = scenario();
        let cfg = ExecutionConfig { faults: Some(script), ..Default::default() };
        let cut = SimTime::from_secs(35);

        let mut whole = live_from(&s, &cfg);
        drive(&mut whole, SimTime::from_secs(90), SimDuration::from_millis(1100));
        let whole_trace = whole.finish();

        let mut first = live_from(&s, &cfg);
        first.advance_to(cut).unwrap();
        let snap = first.snapshot();
        drop(first);

        let rest: Vec<_> = world_events(&s).into_iter().filter(|e| e.at >= cut).collect();
        let mut second = snap.restore(Box::new(TimelineProvider::new(rest))).expect("restore");
        drive(&mut second, SimTime::from_secs(90), SimDuration::from_millis(1100));
        let trace = second.finish();
        assert_eq!(trace.log.events, whole_trace.log.events);
        assert_eq!(trace.log.reports, whole_trace.log.reports);
        assert_eq!(trace.faults, whole_trace.faults);
    }

    #[test]
    fn bad_provider_events_are_counted_not_fatal() {
        let s = scenario();
        let mut events = world_events(&s);
        // An event for a process that does not exist.
        events.insert(
            0,
            ExternalEvent {
                at: SimTime::from_secs(1),
                to: 999,
                from: 999,
                msg: events[0].msg.clone(),
            },
        );
        let mut live = LiveExecution::new(
            s.num_processes(),
            ExecutionConfig::default(),
            Box::new(TimelineProvider::new(events)),
        );
        live.advance_to(SimTime::from_secs(120)).unwrap();
        assert_eq!(live.rejected(), 1);
        assert!(matches!(live.last_rejection(), Some(EngineError::UnknownActor { .. })));
        let senses = live.with_log(|l| l.sense_events().len());
        assert_eq!(senses, s.timeline.len(), "the good events all landed");
        assert!(live.advance_to(SimTime::from_secs(1)).is_err(), "watermark cannot regress");
    }

    #[test]
    fn restore_rejects_unknown_versions() {
        let live = live_from(&scenario(), &ExecutionConfig::default());
        let mut snap = live.snapshot();
        snap.version = 99;
        let err = snap
            .restore(Box::new(TimelineProvider::new(Vec::new())))
            .err()
            .expect("version must be checked");
        assert!(matches!(err, RestoreError::Version { found: 99 }));
        assert!(format!("{err}").contains("99"));
    }

    #[test]
    fn trace_view_is_queryable_mid_run() {
        let s = scenario();
        let mut live = live_from(&s, &ExecutionConfig::default());
        live.advance_to(SimTime::from_secs(45)).unwrap();
        let view = live.trace_view();
        assert_eq!(view.ended_at, SimTime::from_secs(45));
        assert!(!view.log.events.is_empty());
        // Canonical order, same as the batch trace.
        for w in view.log.events.windows(2) {
            assert!((w[0].at, w[0].process, w[0].seq) <= (w[1].at, w[1].process, w[1].seq));
        }
    }
}
