//! The shared execution log.
//!
//! Actors append to an [`ExecutionLog`] behind an `Arc<Mutex<…>>`. Under
//! the sequential engine the lock is uncontended; under the sharded engine
//! (`ExecutionConfig::shards > 1`) lanes append concurrently and the
//! append order is not deterministic — `run_execution_full` therefore
//! sorts `events` by `(at, process, seq)` after every run, which is a
//! total key over the event set and makes the log bit-identical across
//! shard counts. After the run, the log *is* the observable history:
//! every process event with its full stamp set, every report in arrival
//! order at P₀, and every actuation command issued.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_clocks::{ProcessId, VectorStamp};
use psn_sim::time::SimTime;
use psn_world::{AttrKey, AttrValue};

use crate::event::ProcEvent;
use crate::message::Report;

/// A report as received at the root, with arrival metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceivedReport {
    /// The report.
    pub report: Report,
    /// Ground-truth arrival time at the root (scoring only).
    pub arrived_at: SimTime,
    /// The root's causal vector clock *after* merging this report — the
    /// root's knowledge frontier at this point of the observation stream.
    pub root_vector: VectorStamp,
}

/// An actuation command issued by the root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuationRecord {
    /// Ground-truth time the command was issued.
    pub at: SimTime,
    /// The process commanded to actuate.
    pub target: ProcessId,
    /// The attribute driven.
    pub key: AttrKey,
    /// The commanded value.
    pub command: AttrValue,
}

/// Everything observable about one execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionLog {
    /// All process events (every process), in recording order (== ground
    /// truth chronological order, since the engine is monotone).
    pub events: Vec<ProcEvent>,
    /// Reports in arrival order at the root.
    pub reports: Vec<ReceivedReport>,
    /// Actuation commands issued.
    pub actuations: Vec<ActuationRecord>,
}

impl ExecutionLog {
    /// A fresh, shared, empty log.
    pub fn shared() -> Arc<Mutex<ExecutionLog>> {
        Arc::new(Mutex::new(ExecutionLog::default()))
    }

    /// Events of one process, in order.
    pub fn events_of(&self, p: ProcessId) -> Vec<&ProcEvent> {
        self.events.iter().filter(|e| e.process == p).collect()
    }

    /// All sense events, in ground-truth order.
    pub fn sense_events(&self) -> Vec<&ProcEvent> {
        self.events.iter().filter(|e| e.kind.is_relevant()).collect()
    }

    /// Reports of one process, in arrival order.
    pub fn reports_of(&self, p: ProcessId) -> Vec<&ReceivedReport> {
        self.reports.iter().filter(|r| r.report.process == p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use psn_clocks::{PhysReading, ScalarStamp};

    fn ev(p: ProcessId, seq: usize, relevant: bool) -> ProcEvent {
        ProcEvent {
            process: p,
            seq,
            at: SimTime::ZERO,
            kind: if relevant {
                EventKind::Sense {
                    key: AttrKey::new(0, 0),
                    value: AttrValue::Int(1),
                    world_event: 0,
                }
            } else {
                EventKind::Compute
            },
            stamps: crate::bundle::StampSet {
                lamport: ScalarStamp { value: 0, process: p },
                vector: VectorStamp::zero(2),
                strobe_scalar: ScalarStamp { value: 0, process: p },
                strobe_vector: VectorStamp::zero(2),
                physical: PhysReading(0),
                synced: PhysReading(0),
                truth: SimTime::ZERO,
            },
        }
    }

    #[test]
    fn filters_by_process_and_kind() {
        let mut log = ExecutionLog::default();
        log.events.push(ev(0, 1, true));
        log.events.push(ev(1, 1, false));
        log.events.push(ev(0, 2, false));
        assert_eq!(log.events_of(0).len(), 2);
        assert_eq!(log.events_of(1).len(), 1);
        assert_eq!(log.sense_events().len(), 1);
    }

    #[test]
    fn shared_log_is_writable() {
        let shared = ExecutionLog::shared();
        shared.lock().events.push(ev(0, 1, true));
        assert_eq!(shared.lock().events.len(), 1);
    }
}
