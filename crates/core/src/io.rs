//! Trace persistence: record an execution once, analyze it offline.
//!
//! Field deployments (and long parameter sweeps) want to separate *running*
//! from *analyzing*: an [`ExecutionTrace`] serializes to JSON so detectors,
//! lattice measurements, and accuracy scoring can be re-run on stored
//! observations without re-simulating. Determinism makes this mostly a
//! convenience — but it is the natural archive format for the "study of
//! real sensornet applications" the paper's §6 calls for, where the trace
//! would come from hardware, not a simulator.

use std::path::Path;

use serde::{Deserialize, Serialize};

use psn_sim::network::NetStats;
use psn_sim::time::SimTime;

use crate::execution::ExecutionTrace;
use crate::log::ExecutionLog;

/// The serializable form of an execution trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFile {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Number of sensor processes.
    pub n: usize,
    /// The complete log.
    pub log: ExecutionLog,
    /// Network counters.
    pub net: NetStats,
    /// Ground-truth end time.
    pub ended_at: SimTime,
}

/// Current format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

impl TraceFile {
    /// Capture a trace (the simulator-internal event trace is not
    /// persisted; re-run with `record_sim_trace` if it is needed).
    pub fn from_trace(trace: &ExecutionTrace) -> Self {
        TraceFile {
            version: TRACE_FORMAT_VERSION,
            n: trace.n,
            log: trace.log.clone(),
            net: trace.net.clone(),
            ended_at: trace.ended_at,
        }
    }

    /// Rehydrate into an [`ExecutionTrace`] detectors can consume.
    pub fn into_trace(self) -> ExecutionTrace {
        ExecutionTrace {
            n: self.n,
            log: self.log,
            net: self.net,
            sim: psn_sim::trace::Trace::disabled(),
            ended_at: self.ended_at,
            faults: None,
            rollbacks: 0,
        }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parse from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let t: TraceFile = serde_json::from_str(s)?;
        Ok(t)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{run_execution, ExecutionConfig};
    use psn_sim::time::{SimDuration, SimTime};
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};

    fn trace() -> ExecutionTrace {
        let s = exhibition::generate(
            &ExhibitionParams {
                doors: 2,
                arrival_rate_hz: 1.0,
                mean_stay: SimDuration::from_secs(20),
                duration: SimTime::from_secs(60),
                capacity: 5,
            },
            3,
        );
        run_execution(&s, &ExecutionConfig::default())
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let t = trace();
        let file = TraceFile::from_trace(&t);
        let json = file.to_json();
        let back = TraceFile::from_json(&json).expect("parse").into_trace();
        assert_eq!(back.n, t.n);
        assert_eq!(back.log.events, t.log.events);
        assert_eq!(back.log.reports, t.log.reports);
        assert_eq!(back.net, t.net);
        assert_eq!(back.ended_at, t.ended_at);
    }

    #[test]
    fn file_roundtrip() {
        let t = trace();
        let dir = std::env::temp_dir().join("psn-core-io-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.json");
        TraceFile::from_trace(&t).save(&path).expect("save");
        let back = TraceFile::load(&path).expect("load");
        assert_eq!(back.version, TRACE_FORMAT_VERSION);
        assert_eq!(back.log.reports.len(), t.log.reports.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(TraceFile::from_json("not json").is_err());
        assert!(TraceFile::from_json("{\"version\": 1}").is_err(), "missing fields");
    }
}
