//! Multi-hop overlays, strobe flooding, and heartbeat strobes.
//!
//! The paper's L is "a dynamically changing graph" — not necessarily a
//! clique — while the strobe rules call for System-wide_Broadcast. These
//! tests pin down the flood relay that reconciles the two, and the
//! time-driven heartbeat strobes ("the strobe by a process can synchronize
//! at any time", §4.2).

use psn_core::{run_execution, ExecutionConfig, StrobePolicy};
use psn_sim::delay::DelayModel;
use psn_sim::network::Topology;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::scenarios::exhibition::{self, ExhibitionParams};

fn scenario(seed: u64) -> psn_world::Scenario {
    exhibition::generate(
        &ExhibitionParams {
            doors: 4,
            arrival_rate_hz: 1.0,
            mean_stay: SimDuration::from_secs(40),
            duration: SimTime::from_secs(300),
            capacity: 25,
        },
        seed,
    )
}

/// Star overlay with the root (node 4) at the hub: sensors cannot reach
/// each other directly.
fn star_with_root_hub() -> Topology {
    let mut adj = vec![vec![false; 5]; 5];
    adj[4][..4].iter_mut().for_each(|e| *e = true);
    for row in adj.iter_mut().take(4) {
        row[4] = true;
    }
    Topology::Graph { adj }
}

#[test]
fn without_flooding_sparse_overlay_starves_strobes() {
    // On the star, a sensor's strobes reach only the root; peers never
    // merge them, so cross-sensor strobe-vector stamps stay concurrent.
    let s = scenario(3);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(50)),
        topology: Some(star_with_root_hub()),
        strobes: StrobePolicy { flood: false, ..Default::default() },
        ..Default::default()
    };
    let trace = run_execution(&s, &cfg);
    let senses = trace.log.sense_events();
    let cross_ordered = senses.iter().enumerate().any(|(i, a)| {
        senses.iter().skip(i + 1).any(|b| {
            a.process != b.process && !a.stamps.strobe_vector.concurrent(&b.stamps.strobe_vector)
        })
    });
    assert!(!cross_ordered, "no relay ⇒ no cross-sensor strobe knowledge");
}

#[test]
fn flooding_restores_system_wide_broadcast() {
    let s = scenario(3);
    let cfg = ExecutionConfig {
        delay: DelayModel::delta(SimDuration::from_millis(50)),
        topology: Some(star_with_root_hub()),
        strobes: StrobePolicy { flood: true, ..Default::default() },
        ..Default::default()
    };
    let trace = run_execution(&s, &cfg);
    let senses = trace.log.sense_events();
    let cross_ordered = senses.iter().enumerate().any(|(i, a)| {
        senses.iter().skip(i + 1).any(|b| {
            a.process != b.process && !a.stamps.strobe_vector.concurrent(&b.stamps.strobe_vector)
        })
    });
    assert!(cross_ordered, "relayed strobes order cross-sensor events");
}

#[test]
fn flood_deduplication_prevents_storms() {
    // On a full mesh with flooding enabled, each strobe is relayed at most
    // once per receiver: total strobe traffic is bounded by
    // origins × receivers × relays, not exponential.
    let s = scenario(5);
    let no_flood = run_execution(
        &s,
        &ExecutionConfig {
            strobes: StrobePolicy { flood: false, ..Default::default() },
            ..Default::default()
        },
    );
    let flood = run_execution(
        &s,
        &ExecutionConfig {
            strobes: StrobePolicy { flood: true, ..Default::default() },
            ..Default::default()
        },
    );
    assert!(flood.net.messages_sent > no_flood.net.messages_sent);
    // Each of the (n+1 =) 5 nodes relays each unseen strobe once to 4
    // peers: ≤ (1 + 4) × 4 per original broadcast of 4.
    assert!(
        flood.net.messages_sent <= no_flood.net.messages_sent * 6,
        "dedup must bound amplification: {} vs {}",
        flood.net.messages_sent,
        no_flood.net.messages_sent
    );
}

#[test]
fn heartbeats_emit_during_quiet_periods() {
    let s = scenario(7);
    let quiet = run_execution(
        &s,
        &ExecutionConfig {
            strobes: StrobePolicy {
                heartbeat: Some(SimDuration::from_secs(5)),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let silent = run_execution(&s, &ExecutionConfig::default());
    // 4 sensors × (300s / 5s) = 240 extra broadcasts.
    let extra = quiet.net.broadcasts - silent.net.broadcasts;
    assert!((200..=300).contains(&extra), "expected ≈240 heartbeat broadcasts, got {extra}");
}

#[test]
fn heartbeats_do_not_tick_clocks() {
    // Heartbeats carry the current value without ticking: the final strobe
    // vector totals must equal the sense-event counts exactly.
    let s = scenario(7);
    let trace = run_execution(
        &s,
        &ExecutionConfig {
            strobes: StrobePolicy {
                heartbeat: Some(SimDuration::from_secs(2)),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for p in 0..trace.n {
        let sense_count = trace.log.sense_events().iter().filter(|e| e.process == p).count() as u64;
        let last = trace.log.events.iter().rfind(|e| e.process == p).expect("events exist");
        assert_eq!(
            last.stamps.strobe_vector.get(p),
            sense_count,
            "own component counts sense events only"
        );
    }
}
