//! Physical (asynchronous) vector clocks (paper §3.2.1.b.ii).
//!
//! "These vectors use the monotonic physical (local) unsynchronized clocks
//! of the processes as the vector components. These seem an overkill to
//! track causality, but are useful when relating the locally observed wall
//! times at different locations, in the application predicate."
//!
//! Component `k` of process `i`'s clock holds the latest reading of
//! process `k`'s *local physical clock* known to `i` (directly for `k = i`,
//! transitively through received stamps otherwise). The comparison rules
//! are the same componentwise ≤ as logical vector clocks; because local
//! physical clocks are monotone, the order is well-defined even though the
//! components are unsynchronized wall times.

use serde::{Deserialize, Serialize};

use crate::physical::PhysReading;
use crate::traits::{Causality, ProcessId, Timestamp};

/// A vector of local physical clock readings, one per process.
/// `i64::MIN` means "no reading known yet".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysVectorStamp(pub Vec<i64>);

impl PhysVectorStamp {
    /// The "nothing known" stamp for `n` processes.
    pub fn unknown(n: usize) -> Self {
        PhysVectorStamp(vec![i64::MIN; n])
    }

    /// Componentwise ≤.
    pub fn le(&self, other: &PhysVectorStamp) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Componentwise max, in place.
    pub fn merge_from(&mut self, other: &PhysVectorStamp) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

impl Timestamp for PhysVectorStamp {
    fn causality(&self, other: &Self) -> Causality {
        if self.0 == other.0 {
            Causality::Equal
        } else if self.le(other) {
            Causality::Before
        } else if other.le(self) {
            Causality::After
        } else {
            Causality::Concurrent
        }
    }

    fn wire_size(&self) -> usize {
        8 * self.0.len()
    }
}

/// A physical vector clock for one process.
///
/// Unlike logical clocks, ticking requires the current **local physical
/// reading**, which the caller obtains from its
/// [`Oscillator`](crate::physical::Oscillator).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysVectorClock {
    id: ProcessId,
    v: PhysVectorStamp,
}

impl PhysVectorClock {
    /// A clock for process `id` among `n`.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n={n}");
        PhysVectorClock { id, v: PhysVectorStamp::unknown(n) }
    }

    /// Record a relevant local event at local physical time `local_now`;
    /// returns the event's stamp. Local physical clocks are monotone, so
    /// `local_now` must not regress (debug-asserted).
    pub fn on_local_event(&mut self, local_now: PhysReading) -> PhysVectorStamp {
        debug_assert!(local_now.0 >= self.v.0[self.id], "local physical clock regressed");
        self.v.0[self.id] = local_now.0;
        self.v.clone()
    }

    /// Record a send at local physical time `local_now`; the returned stamp
    /// is piggybacked on the message.
    pub fn on_send(&mut self, local_now: PhysReading) -> PhysVectorStamp {
        self.on_local_event(local_now)
    }

    /// Merge a received stamp at local physical time `local_now`.
    pub fn on_receive(
        &mut self,
        local_now: PhysReading,
        stamp: &PhysVectorStamp,
    ) -> PhysVectorStamp {
        self.v.merge_from(stamp);
        self.on_local_event(local_now)
    }

    /// The current stamp.
    pub fn current(&self) -> PhysVectorStamp {
        self.v.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_event_records_reading() {
        let mut c = PhysVectorClock::new(0, 2);
        let s = c.on_local_event(PhysReading(100));
        assert_eq!(s.0[0], 100);
        assert_eq!(s.0[1], i64::MIN, "peer unknown");
    }

    #[test]
    fn receive_merges_peer_times() {
        let mut a = PhysVectorClock::new(0, 2);
        let mut b = PhysVectorClock::new(1, 2);
        let m = a.on_send(PhysReading(50));
        let s = b.on_receive(PhysReading(900), &m);
        assert_eq!(s.0, vec![50, 900]);
    }

    #[test]
    fn message_chain_orders_stamps() {
        let mut a = PhysVectorClock::new(0, 2);
        let mut b = PhysVectorClock::new(1, 2);
        let e = a.on_local_event(PhysReading(10));
        let m = a.on_send(PhysReading(20));
        let f = b.on_receive(PhysReading(5), &m); // b's wall clock is behind — fine
        assert_eq!(e.causality(&f), Causality::Before);
    }

    #[test]
    fn unrelated_events_concurrent() {
        let mut a = PhysVectorClock::new(0, 2);
        let mut b = PhysVectorClock::new(1, 2);
        let e = a.on_local_event(PhysReading(10));
        let f = b.on_local_event(PhysReading(10_000));
        assert_eq!(
            e.causality(&f),
            Causality::Concurrent,
            "wall times differ wildly but there is no causal path"
        );
    }

    #[test]
    fn components_expose_remote_wall_times() {
        // The appendix's use case: the stamp tells you the *physical local
        // time* of the latest causally-preceding event at each process.
        let mut a = PhysVectorClock::new(0, 3);
        let mut b = PhysVectorClock::new(1, 3);
        let mut c = PhysVectorClock::new(2, 3);
        let m1 = a.on_send(PhysReading(111));
        b.on_receive(PhysReading(222), &m1);
        let m2 = b.on_send(PhysReading(233));
        let s = c.on_receive(PhysReading(7), &m2);
        assert_eq!(s.0, vec![111, 233, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_in_range() {
        let _ = PhysVectorClock::new(2, 2);
    }
}
