//! Differential (compressed) vector clock transmission
//! (Singhal–Kshemkalyani technique; documented extension).
//!
//! The paper's §4.2.2 emphasizes the O(1)-vs-O(n) wire asymmetry between
//! scalar and vector strobes. The classic middle ground from the
//! distributed-computing literature Appendix A surveys is the
//! Singhal–Kshemkalyani optimization: a sender transmits only the vector
//! components that **changed since its last message to the same
//! destination**. With FIFO channels the receiver reconstructs the full
//! vector by overlaying the diff. For strobe-style broadcast traffic where
//! only the sender's own component ticks between strobes, diffs are O(1)
//! amortized — recovering scalar-like cost while keeping vector-clock
//! semantics (ablation A3 measures this).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::traits::ProcessId;
use crate::vector::VectorStamp;

/// A sparse vector-clock update: the components that changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorDiff(pub Vec<(ProcessId, u64)>);

impl VectorDiff {
    /// Wire size: 12 bytes per entry (4-byte index + 8-byte value).
    pub fn wire_size(&self) -> usize {
        12 * self.0.len()
    }

    /// Number of changed components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Sender-side compressor: remembers the last vector sent to each
/// destination and emits only the delta. Requires FIFO channels (the
/// receiver applies diffs in order).
#[derive(Debug, Clone, Default)]
pub struct DiffSender {
    last_sent: HashMap<ProcessId, VectorStamp>,
}

impl DiffSender {
    /// A fresh compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compress `current` for transmission to `dest`.
    pub fn diff_for(&mut self, dest: ProcessId, current: &VectorStamp) -> VectorDiff {
        let diff = match self.last_sent.get(&dest) {
            None => VectorDiff(
                current.iter().enumerate().filter(|(_, &v)| v != 0).map(|(i, &v)| (i, v)).collect(),
            ),
            Some(prev) => VectorDiff(
                current
                    .iter()
                    .zip(prev.iter())
                    .enumerate()
                    .filter(|(_, (cur, prev))| cur != prev)
                    .map(|(i, (&cur, _))| (i, cur))
                    .collect(),
            ),
        };
        self.last_sent.insert(dest, current.clone());
        diff
    }
}

/// Receiver-side reconstructor: tracks each sender's full vector.
#[derive(Debug, Clone)]
pub struct DiffReceiver {
    n: usize,
    per_sender: HashMap<ProcessId, VectorStamp>,
}

impl DiffReceiver {
    /// A reconstructor for `n`-component vectors.
    pub fn new(n: usize) -> Self {
        DiffReceiver { n, per_sender: HashMap::new() }
    }

    /// Apply a diff from `sender`, returning the sender's reconstructed
    /// full vector.
    pub fn apply(&mut self, sender: ProcessId, diff: &VectorDiff) -> &VectorStamp {
        let entry = self.per_sender.entry(sender).or_insert_with(|| VectorStamp::zero(self.n));
        for &(i, v) in &diff.0 {
            entry[i] = v;
        }
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::LogicalClock;
    use crate::vector::VectorClock;

    #[test]
    fn roundtrip_reconstructs_exactly() {
        let mut tx = DiffSender::new();
        let mut rx = DiffReceiver::new(3);
        let vectors = [
            VectorStamp::from(vec![1, 0, 0]),
            VectorStamp::from(vec![2, 0, 0]),
            VectorStamp::from(vec![2, 5, 1]),
            VectorStamp::from(vec![3, 5, 1]),
        ];
        for v in &vectors {
            let d = tx.diff_for(9, v);
            let got = rx.apply(0, &d);
            assert_eq!(got, v);
        }
    }

    #[test]
    fn steady_state_diffs_are_small() {
        // Strobe pattern: only the own component ticks between sends.
        let mut tx = DiffSender::new();
        let mut clock = VectorClock::new(0, 64);
        let first = clock.on_local_event();
        let d0 = tx.diff_for(1, &first);
        assert_eq!(d0.len(), 1, "initial diff carries the nonzero components");
        for _ in 0..10 {
            let v = clock.on_local_event();
            let d = tx.diff_for(1, &v);
            assert_eq!(d.len(), 1, "only own component changed");
            assert_eq!(d.wire_size(), 12, "O(1) on the wire vs 512 for the full vector");
        }
    }

    #[test]
    fn merge_bursts_cost_proportional_to_changes() {
        let mut tx = DiffSender::new();
        let mut clock = VectorClock::new(0, 8);
        let v1 = clock.on_local_event();
        let _ = tx.diff_for(1, &v1);
        // A receive merges 3 remote components at once.
        clock.on_receive(&VectorStamp::from(vec![0, 7, 7, 7, 0, 0, 0, 0]));
        let v2 = clock.current();
        let d = tx.diff_for(1, &v2);
        assert_eq!(d.len(), 4, "3 merged + own tick");
    }

    #[test]
    fn per_destination_state_is_independent() {
        let mut tx = DiffSender::new();
        let v1 = VectorStamp::from(vec![1, 0]);
        let v2 = VectorStamp::from(vec![2, 0]);
        let _ = tx.diff_for(1, &v1);
        // First message to dest 2 must carry the full (nonzero) state even
        // though dest 1 already knows v1.
        let d_to_2 = tx.diff_for(2, &v2);
        assert_eq!(d_to_2.0, vec![(0, 2)]);
        let d_to_1 = tx.diff_for(1, &v2);
        assert_eq!(d_to_1.0, vec![(0, 2)]);
    }

    #[test]
    fn empty_diff_when_unchanged() {
        let mut tx = DiffSender::new();
        let v = VectorStamp::from(vec![1, 2]);
        let _ = tx.diff_for(1, &v);
        let d = tx.diff_for(1, &v);
        assert!(d.is_empty());
        assert_eq!(d.wire_size(), 0);
    }

    #[test]
    fn multiple_senders_do_not_interfere() {
        let mut rx = DiffReceiver::new(2);
        rx.apply(0, &VectorDiff(vec![(0, 5)]));
        rx.apply(1, &VectorDiff(vec![(1, 9)]));
        assert_eq!(rx.apply(0, &VectorDiff(vec![])).as_slice(), [5, 0]);
        assert_eq!(rx.apply(1, &VectorDiff(vec![])).as_slice(), [0, 9]);
    }
}
