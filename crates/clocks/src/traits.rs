//! Common vocabulary for all clocks.
//!
//! The paper's implementation design space (§3.2) contains two families:
//!
//! - **causality-based clocks** (Lamport SC1–SC3, Mattern/Fidge VC1–VC3)
//!   that tick on *in-network* send/receive events and capture the partial
//!   order of the network-plane execution, and
//! - **strobe clocks** (SSC1–SSC2, SVC1–SVC2) that tick only on *relevant
//!   (sensed) events* and synchronize by broadcasting their value — the
//!   receiver merges but does **not** tick.
//!
//! Both produce timestamps that can be compared; vector timestamps form a
//! genuine partial order, scalar timestamps a total preorder.

use serde::{Deserialize, Serialize};

/// The identity of a process in the network plane P. Processes are numbered
/// densely `0..n`, matching the simulator's actor ids.
pub type ProcessId = usize;

/// The outcome of comparing two timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Causality {
    /// The first timestamp (strictly) happened-before the second.
    Before,
    /// The second timestamp (strictly) happened-before the first.
    After,
    /// Neither ordered before the other: concurrent.
    Concurrent,
    /// Identical timestamps.
    Equal,
}

impl Causality {
    /// The relation with the arguments swapped.
    pub fn flip(self) -> Causality {
        match self {
            Causality::Before => Causality::After,
            Causality::After => Causality::Before,
            other => other,
        }
    }

    /// True for `Before` or `Equal` — i.e. `a ≤ b`.
    pub fn is_before_or_equal(self) -> bool {
        matches!(self, Causality::Before | Causality::Equal)
    }
}

/// A timestamp produced by some clock.
pub trait Timestamp: Clone {
    /// Compare two timestamps of the same clock family.
    fn causality(&self, other: &Self) -> Causality;

    /// The wire size of this timestamp in bytes — O(1) for scalars, O(n)
    /// for vectors. Feeds the message-overhead accounting (experiment E7).
    fn wire_size(&self) -> usize;
}

/// A logical clock owned by one process.
///
/// `Stamp` is the timestamp type it assigns to events and piggybacks on (or
/// broadcasts as) messages. The method names mirror the paper's rules; a
/// clock that has "no occasion" to use a rule (e.g. strobe clocks never
/// piggyback on computation messages) simply inherits the default panic —
/// calling it is a protocol bug, not a recoverable condition.
pub trait LogicalClock {
    /// The timestamp type.
    type Stamp: Timestamp;

    /// Rule for a relevant internal event (SC1 / VC1 / SSC1 / SVC1): tick
    /// the local component and return the event's timestamp.
    fn on_local_event(&mut self) -> Self::Stamp;

    /// Rule for an in-network send (SC2 / VC2): tick and return the stamp
    /// to piggyback. Strobe clocks do not implement this.
    fn on_send(&mut self) -> Self::Stamp {
        unimplemented!("this clock does not piggyback on computation messages")
    }

    /// Rule for an in-network receive (SC3 / VC3): merge the piggybacked
    /// stamp and tick. Strobe clocks do not implement this.
    fn on_receive(&mut self, _stamp: &Self::Stamp) -> Self::Stamp {
        unimplemented!("this clock does not receive computation messages")
    }

    /// Rule for receiving a strobe (SSC2 / SVC2): merge **without ticking**.
    /// Causality-based clocks do not implement this.
    fn on_strobe(&mut self, _stamp: &Self::Stamp) {
        unimplemented!("this clock does not process strobes")
    }

    /// The current reading, without ticking.
    fn current(&self) -> Self::Stamp;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_swaps_direction() {
        assert_eq!(Causality::Before.flip(), Causality::After);
        assert_eq!(Causality::After.flip(), Causality::Before);
        assert_eq!(Causality::Concurrent.flip(), Causality::Concurrent);
        assert_eq!(Causality::Equal.flip(), Causality::Equal);
    }

    #[test]
    fn before_or_equal() {
        assert!(Causality::Before.is_before_or_equal());
        assert!(Causality::Equal.is_before_or_equal());
        assert!(!Causality::After.is_before_or_equal());
        assert!(!Causality::Concurrent.is_before_or_equal());
    }
}
