//! Hybrid logical clocks (documented extension).
//!
//! Not in the paper, but a natural completion of its design space: the
//! paper contrasts *physical* implementations of the single time axis
//! (§3.2.1.a.i–ii) with *logical* ones (§3.2.1.a.iii–iv). The hybrid
//! logical clock (Kulkarni et al., 2014) combines both — it stays within a
//! bounded distance of the local physical clock while preserving the
//! Lamport property (e → f ⇒ hlc(e) < hlc(f)). The ablation bench compares
//! it against strobe clocks as an alternative "software clock" (paper
//! §3.3, limitation 4 notes that software clocks can replace over-accurate
//! physical sync for slow-moving environments).
//!
//! Rules (l = physical part, c = logical part, pt = local physical reading):
//!
//! ```text
//! local/send:  l' = max(l, pt);  c' = (l' == l) ? c+1 : 0
//! receive(m):  l' = max(l, m.l, pt)
//!              c' = c+1   if l' == l == m.l
//!                   m.c+1 if l' == m.l ≠ l
//!                   c+1   if l' == l  ≠ m.l
//!                   0     otherwise
//! ```

use serde::{Deserialize, Serialize};

use crate::physical::PhysReading;
use crate::traits::{Causality, ProcessId, Timestamp};

/// A hybrid logical timestamp: physical part, logical part, tie-break id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HlcStamp {
    /// Physical component: max physical reading seen (ns).
    pub l: i64,
    /// Logical component: disambiguates events within one physical tick.
    pub c: u32,
    /// Assigning process, for a total order.
    pub process: ProcessId,
}

impl Timestamp for HlcStamp {
    fn causality(&self, other: &Self) -> Causality {
        match (self.l, self.c, self.process).cmp(&(other.l, other.c, other.process)) {
            core::cmp::Ordering::Less => Causality::Before,
            core::cmp::Ordering::Greater => Causality::After,
            core::cmp::Ordering::Equal => Causality::Equal,
        }
    }

    fn wire_size(&self) -> usize {
        12 // 8-byte l + 4-byte c
    }
}

/// A hybrid logical clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridClock {
    id: ProcessId,
    l: i64,
    c: u32,
}

impl HybridClock {
    /// A clock for process `id`.
    pub fn new(id: ProcessId) -> Self {
        HybridClock { id, l: i64::MIN, c: 0 }
    }

    /// Tick for a local or send event at local physical reading `pt`.
    pub fn tick(&mut self, pt: PhysReading) -> HlcStamp {
        let l_old = self.l;
        self.l = self.l.max(pt.0);
        if self.l == l_old {
            self.c += 1;
        } else {
            self.c = 0;
        }
        self.current()
    }

    /// Merge a received stamp at local physical reading `pt`.
    pub fn receive(&mut self, m: &HlcStamp, pt: PhysReading) -> HlcStamp {
        let l_old = self.l;
        self.l = self.l.max(m.l).max(pt.0);
        self.c = if self.l == l_old && self.l == m.l {
            self.c.max(m.c) + 1
        } else if self.l == m.l {
            m.c + 1
        } else if self.l == l_old {
            self.c + 1
        } else {
            0
        };
        self.current()
    }

    /// The current stamp, without ticking.
    pub fn current(&self) -> HlcStamp {
        HlcStamp { l: self.l, c: self.c, process: self.id }
    }

    /// Distance between the logical-physical part and a physical reading —
    /// the quantity the HLC theorem bounds.
    pub fn drift_from(&self, pt: PhysReading) -> i64 {
        self.l - pt.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_follows_physical_time() {
        let mut h = HybridClock::new(0);
        let s = h.tick(PhysReading(100));
        assert_eq!((s.l, s.c), (100, 0));
        let s = h.tick(PhysReading(200));
        assert_eq!((s.l, s.c), (200, 0));
    }

    #[test]
    fn stalled_physical_clock_increments_c() {
        let mut h = HybridClock::new(0);
        h.tick(PhysReading(100));
        let s = h.tick(PhysReading(100));
        assert_eq!((s.l, s.c), (100, 1));
        let s = h.tick(PhysReading(90)); // physical clock behind l
        assert_eq!((s.l, s.c), (100, 2));
    }

    #[test]
    fn receive_takes_max_of_three() {
        let mut h = HybridClock::new(1);
        h.tick(PhysReading(50));
        let m = HlcStamp { l: 120, c: 3, process: 0 };
        let s = h.receive(&m, PhysReading(70));
        assert_eq!((s.l, s.c), (120, 4), "follows the message's l, c+1");
        // Now a receive where local physical wins: c resets.
        let m2 = HlcStamp { l: 110, c: 9, process: 0 };
        let s = h.receive(&m2, PhysReading(500));
        assert_eq!((s.l, s.c), (500, 0));
    }

    #[test]
    fn lamport_property_holds() {
        // e → f via message ⇒ stamp(e) < stamp(f), even with skewed clocks.
        let mut a = HybridClock::new(0);
        let mut b = HybridClock::new(1);
        let e = a.tick(PhysReading(1000)); // a's clock is ahead
        let f = b.receive(&e, PhysReading(10)); // b's clock is behind
        assert_eq!(e.causality(&f), Causality::Before);
    }

    #[test]
    fn l_never_exceeds_max_physical_seen() {
        // HLC theorem: l is always the max physical reading on some
        // causal path — it never invents time.
        let mut a = HybridClock::new(0);
        let mut b = HybridClock::new(1);
        let pts = [100, 250, 260, 400];
        let mut max_pt = i64::MIN;
        for (k, &pt) in pts.iter().enumerate() {
            max_pt = max_pt.max(pt);
            let s = if k % 2 == 0 {
                a.tick(PhysReading(pt))
            } else {
                b.receive(&a.current(), PhysReading(pt))
            };
            assert!(s.l <= max_pt, "l {0} exceeds max physical {max_pt}", s.l);
        }
    }

    #[test]
    fn equal_stamps_same_process_only() {
        let a = HlcStamp { l: 5, c: 0, process: 0 };
        let b = HlcStamp { l: 5, c: 0, process: 1 };
        assert_eq!(a.causality(&b), Causality::Before, "process id breaks ties");
    }
}
