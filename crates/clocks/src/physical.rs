//! Physical clock hardware models.
//!
//! The paper's implementation design space (§3.2.1.a) starts from physical
//! clocks: perfectly synchronized (ideal, impractical), or imperfectly
//! synchronized with skew ε achieved by a synchronization protocol. This
//! module models the *hardware*: a local oscillator with an initial offset,
//! a constant drift rate (ppm), and a read granularity. The `psn-sync`
//! crate runs RBS/TPSN-style protocols over these oscillators; experiment
//! E1 uses the post-synchronization ε-bounded view.
//!
//! Readings are signed nanoseconds: a badly-offset clock can read "before
//! the epoch".

use serde::{Deserialize, Serialize};

use psn_sim::rng::RngStream;
use psn_sim::time::{SimDuration, SimTime};

use crate::traits::{Causality, Timestamp};

/// A physical clock reading, in signed nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysReading(pub i64);

impl PhysReading {
    /// The reading in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Absolute difference between two readings.
    pub fn abs_diff(self, other: PhysReading) -> SimDuration {
        SimDuration::from_nanos(self.0.abs_diff(other.0))
    }
}

impl Timestamp for PhysReading {
    fn causality(&self, other: &Self) -> Causality {
        match self.0.cmp(&other.0) {
            core::cmp::Ordering::Less => Causality::Before,
            core::cmp::Ordering::Greater => Causality::After,
            core::cmp::Ordering::Equal => Causality::Equal,
        }
    }

    fn wire_size(&self) -> usize {
        8
    }
}

/// A free-running local oscillator.
///
/// Reading at ground-truth time `t` yields
/// `round((t + offset) * (1 + drift_ppm·10⁻⁶))`, quantized to the
/// granularity. `offset` models the phase error at t = 0; `drift_ppm` the
/// frequency error (crystal oscillators in sensor nodes are typically
/// 10–100 ppm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Oscillator {
    /// Phase offset at ground-truth time zero, in nanoseconds.
    pub offset_ns: i64,
    /// Frequency error, parts per million. Positive runs fast.
    pub drift_ppm: f64,
    /// Read quantization, in nanoseconds (1 = exact).
    pub granularity_ns: u64,
}

impl Oscillator {
    /// A perfect oscillator: zero offset, zero drift, exact reads.
    pub fn perfect() -> Self {
        Oscillator { offset_ns: 0, drift_ppm: 0.0, granularity_ns: 1 }
    }

    /// A randomly imperfect oscillator: offset uniform in
    /// `[-max_offset, +max_offset]`, drift uniform in
    /// `[-max_drift_ppm, +max_drift_ppm]`.
    pub fn random(
        rng: &mut RngStream,
        max_offset: SimDuration,
        max_drift_ppm: f64,
        granularity_ns: u64,
    ) -> Self {
        let span = max_offset.as_nanos() as i64;
        let offset_ns =
            if span == 0 { 0 } else { rng.uniform_u64(0, 2 * span as u64) as i64 - span };
        Oscillator {
            offset_ns,
            drift_ppm: rng.uniform_f64(-max_drift_ppm, max_drift_ppm),
            granularity_ns: granularity_ns.max(1),
        }
    }

    /// Read the clock at ground-truth time `t`.
    pub fn read(&self, t: SimTime) -> PhysReading {
        let base = t.as_nanos() as i64 + self.offset_ns;
        let drifted = base as f64 * (1.0 + self.drift_ppm * 1e-6);
        let g = self.granularity_ns as i64;
        let q = (drifted.round() as i64) / g * g;
        PhysReading(q)
    }

    /// Apply a phase correction (what a sync protocol does on resync).
    pub fn adjust_offset(&mut self, delta_ns: i64) {
        self.offset_ns += delta_ns;
    }

    /// The absolute reading error at ground-truth time `t`.
    pub fn error_at(&self, t: SimTime) -> SimDuration {
        self.read(t).abs_diff(PhysReading(t.as_nanos() as i64))
    }
}

/// The idealized *post-synchronization* view of a physical clock service
/// with skew bound ε (paper §3.3): each process's reading error is a fixed
/// (per-run) offset drawn uniformly from `[-ε/2, +ε/2]`, so any two
/// processes disagree by at most ε. This is the clock model Mayo–Kearns /
/// Stoller predicate detection assumes, and the one experiment E1 sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncedClock {
    osc: Oscillator,
    epsilon: SimDuration,
}

impl SyncedClock {
    /// A synchronized clock with skew bound `epsilon`, its residual error
    /// drawn from `rng`.
    pub fn new(rng: &mut RngStream, epsilon: SimDuration) -> Self {
        let half = (epsilon.as_nanos() / 2) as i64;
        let offset_ns =
            if half == 0 { 0 } else { rng.uniform_u64(0, 2 * half as u64) as i64 - half };
        SyncedClock { osc: Oscillator { offset_ns, drift_ppm: 0.0, granularity_ns: 1 }, epsilon }
    }

    /// The skew bound ε.
    pub fn epsilon(&self) -> SimDuration {
        self.epsilon
    }

    /// Read the clock at ground-truth time `t`.
    pub fn read(&self, t: SimTime) -> PhysReading {
        self.osc.read(t)
    }

    /// Break the ε guarantee: redraw the residual offset uniformly from
    /// `[-max_offset, +max_offset]`, as after a crash, reboot or clock
    /// fault, before the sync protocol has run again. Until [`Self::resync`]
    /// the reading error may exceed ε and ε-based predicate windows are
    /// unsound for this process.
    pub fn desync(&mut self, rng: &mut RngStream, max_offset: SimDuration) {
        let span = max_offset.as_nanos() as i64;
        self.osc.offset_ns =
            if span == 0 { 0 } else { rng.uniform_u64(0, 2 * span as u64) as i64 - span };
    }

    /// Restore the ε guarantee: redraw the residual offset from
    /// `[-ε/2, +ε/2]` — the same recipe as [`SyncedClock::new`], modelling a
    /// completed resynchronization round.
    pub fn resync(&mut self, rng: &mut RngStream) {
        let half = (self.epsilon.as_nanos() / 2) as i64;
        self.osc.offset_ns =
            if half == 0 { 0 } else { rng.uniform_u64(0, 2 * half as u64) as i64 - half };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::rng::RngFactory;

    #[test]
    fn perfect_oscillator_reads_truth() {
        let o = Oscillator::perfect();
        assert_eq!(o.read(SimTime::from_secs(5)), PhysReading(5_000_000_000));
        assert_eq!(o.error_at(SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn offset_shifts_reading() {
        let o = Oscillator { offset_ns: -1_000_000, drift_ppm: 0.0, granularity_ns: 1 };
        assert_eq!(o.read(SimTime::from_millis(10)), PhysReading(9_000_000));
    }

    #[test]
    fn drift_accumulates_linearly() {
        let o = Oscillator { offset_ns: 0, drift_ppm: 100.0, granularity_ns: 1 };
        // 100 ppm over 10 s = 1 ms fast.
        let r = o.read(SimTime::from_secs(10));
        assert_eq!(r, PhysReading(10_001_000_000));
        assert_eq!(o.error_at(SimTime::from_secs(10)), SimDuration::from_millis(1));
    }

    #[test]
    fn granularity_quantizes() {
        let o = Oscillator { offset_ns: 0, drift_ppm: 0.0, granularity_ns: 1000 };
        assert_eq!(o.read(SimTime::from_nanos(1234)), PhysReading(1000));
        assert_eq!(o.read(SimTime::from_nanos(999)), PhysReading(0));
    }

    #[test]
    fn adjust_offset_corrects() {
        let mut o = Oscillator { offset_ns: 500, drift_ppm: 0.0, granularity_ns: 1 };
        o.adjust_offset(-500);
        assert_eq!(o.read(SimTime::from_nanos(42)), PhysReading(42));
    }

    #[test]
    fn random_oscillator_within_bounds() {
        let mut rng = RngFactory::new(1).stream(0);
        for _ in 0..200 {
            let o = Oscillator::random(&mut rng, SimDuration::from_millis(5), 50.0, 1);
            assert!(o.offset_ns.abs() <= 5_000_000);
            assert!(o.drift_ppm.abs() <= 50.0);
        }
    }

    #[test]
    fn synced_clock_error_bounded_by_half_epsilon() {
        let mut rng = RngFactory::new(7).stream(0);
        let eps = SimDuration::from_millis(2);
        for _ in 0..200 {
            let c = SyncedClock::new(&mut rng, eps);
            let t = SimTime::from_secs(100);
            let err = c.read(t).abs_diff(PhysReading(t.as_nanos() as i64));
            assert!(err.as_nanos() <= eps.as_nanos() / 2, "err {err} > eps/2");
        }
    }

    #[test]
    fn two_synced_clocks_disagree_by_at_most_epsilon() {
        let mut rng = RngFactory::new(9).stream(0);
        let eps = SimDuration::from_millis(1);
        let t = SimTime::from_secs(3);
        for _ in 0..200 {
            let a = SyncedClock::new(&mut rng, eps);
            let b = SyncedClock::new(&mut rng, eps);
            assert!(a.read(t).abs_diff(b.read(t)) <= eps);
        }
    }

    #[test]
    fn readings_order_totally() {
        let a = PhysReading(5);
        let b = PhysReading(9);
        assert_eq!(a.causality(&b), Causality::Before);
        assert_eq!(b.causality(&a), Causality::After);
        assert_eq!(a.causality(&a), Causality::Equal);
    }

    #[test]
    fn desync_breaks_and_resync_restores_the_bound() {
        let mut rng = RngFactory::new(11).stream(0);
        let eps = SimDuration::from_micros(10);
        let t = SimTime::from_secs(1);
        let truth = PhysReading(t.as_nanos() as i64);
        let mut c = SyncedClock::new(&mut rng, eps);
        let mut saw_violation = false;
        for _ in 0..100 {
            c.desync(&mut rng, SimDuration::from_millis(50));
            saw_violation |= c.read(t).abs_diff(truth).as_nanos() > eps.as_nanos() / 2;
        }
        assert!(saw_violation, "a 50 ms offset span must exceed ε/2 = 5 µs sometimes");
        for _ in 0..100 {
            c.resync(&mut rng);
            assert!(c.read(t).abs_diff(truth).as_nanos() <= eps.as_nanos() / 2);
        }
    }

    #[test]
    fn zero_epsilon_is_perfect() {
        let mut rng = RngFactory::new(3).stream(0);
        let c = SyncedClock::new(&mut rng, SimDuration::ZERO);
        let t = SimTime::from_millis(123);
        assert_eq!(c.read(t), PhysReading(123_000_000));
    }
}
