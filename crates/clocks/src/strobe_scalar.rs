//! Strobe scalar clocks (paper §4.2.2, rules SSC1–SSC2).
//!
//! ```text
//! SSC1. When process i executes (senses) a relevant event:
//!         Cᵢ = Cᵢ + 1;  System-wide_Broadcast(Cᵢ)
//! SSC2. When process i receives a strobe T:
//!         Cᵢ = max(Cᵢ, T)
//! ```
//!
//! Unlike a Lamport clock, the receiver **does not tick** on a strobe: the
//! strobe is a pure synchronization ("catch up") message, not a causal
//! event. The strobe is O(1) on the wire — lightweight, but weaker than the
//! strobe vector clock: in the presence of races it can produce both false
//! negatives *and* false positives in predicate detection (paper §3.3).

use serde::{Deserialize, Serialize};

use crate::lamport::ScalarStamp;
use crate::traits::{LogicalClock, ProcessId};

/// A strobe scalar clock.
///
/// Timestamps are [`ScalarStamp`]s — the same representation as Lamport
/// stamps, but produced under the strobe rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrobeScalarClock {
    id: ProcessId,
    value: u64,
}

impl StrobeScalarClock {
    /// A clock for process `id`, starting at 0.
    pub fn new(id: ProcessId) -> Self {
        StrobeScalarClock { id, value: 0 }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The raw scalar value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl LogicalClock for StrobeScalarClock {
    type Stamp = ScalarStamp;

    /// SSC1: tick; the caller must then broadcast [`Self::current`] to all
    /// other processes (the protocol's `System-wide_Broadcast(Cᵢ)`).
    fn on_local_event(&mut self) -> ScalarStamp {
        self.value += 1;
        self.current()
    }

    /// SSC2: catch up to the strobe **without ticking**.
    fn on_strobe(&mut self, stamp: &ScalarStamp) {
        self.value = self.value.max(stamp.value);
    }

    fn current(&self) -> ScalarStamp {
        ScalarStamp { value: self.value, process: self.id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Causality;
    use crate::traits::Timestamp;

    #[test]
    fn ssc1_ticks() {
        let mut c = StrobeScalarClock::new(0);
        assert_eq!(c.on_local_event().value, 1);
        assert_eq!(c.on_local_event().value, 2);
    }

    #[test]
    fn ssc2_catches_up_without_tick() {
        let mut c = StrobeScalarClock::new(1);
        c.on_local_event(); // 1
        c.on_strobe(&ScalarStamp { value: 7, process: 0 });
        assert_eq!(c.value(), 7, "max, no +1 — unlike Lamport SC3");
        c.on_strobe(&ScalarStamp { value: 3, process: 0 });
        assert_eq!(c.value(), 7, "stale strobes are ignored");
    }

    #[test]
    fn strobes_synchronize_two_processes() {
        let mut a = StrobeScalarClock::new(0);
        let mut b = StrobeScalarClock::new(1);
        let s = a.on_local_event(); // a=1, broadcast
        b.on_strobe(&s); // b catches up to 1
        let t = b.on_local_event(); // b=2, broadcast
        a.on_strobe(&t); // a catches up to 2
        assert_eq!(a.value(), 2);
        assert_eq!(b.value(), 2);
    }

    #[test]
    fn drift_without_strobes() {
        // In the absence of strobes, local clocks simply tick asynchronously
        // and drift apart — the behaviour the paper describes in §4.2.
        let mut a = StrobeScalarClock::new(0);
        let mut b = StrobeScalarClock::new(1);
        for _ in 0..10 {
            a.on_local_event();
        }
        b.on_local_event();
        assert_eq!(a.value(), 10);
        assert_eq!(b.value(), 1);
        // One strobe re-synchronizes.
        let s = a.current();
        b.on_strobe(&s);
        assert_eq!(b.value(), 10);
    }

    #[test]
    fn monotonicity_under_any_strobe_sequence() {
        // The strobe clock must guarantee monotonicity of logical time
        // (paper §4.2): no strobe may move the clock backwards.
        let mut c = StrobeScalarClock::new(0);
        let mut last = 0;
        let strobes = [5u64, 2, 9, 1, 9, 12, 0];
        for (k, &v) in strobes.iter().enumerate() {
            if k % 2 == 0 {
                c.on_local_event();
            }
            c.on_strobe(&ScalarStamp { value: v, process: 1 });
            assert!(c.value() >= last, "clock went backwards");
            last = c.value();
        }
    }

    #[test]
    fn stamps_order_as_scalars() {
        let mut a = StrobeScalarClock::new(0);
        let mut b = StrobeScalarClock::new(1);
        let e = a.on_local_event();
        b.on_strobe(&e);
        let f = b.on_local_event();
        assert_eq!(e.causality(&f), Causality::Before);
    }
}
