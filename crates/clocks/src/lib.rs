//! # psn-clocks — the paper's clock zoo
//!
//! Every clock in the implementation design space of *Execution and Time
//! Models for Pervasive Sensor Networks* (§3.2), plus two documented
//! extensions:
//!
//! | Module | Clock | Paper rules | Ticks on receive? | Wire size |
//! |---|---|---|---|---|
//! | [`lamport`] | Lamport scalar | SC1–SC3 | yes | O(1) |
//! | [`vector`] | Mattern/Fidge vector | VC1–VC3 | yes | O(n) |
//! | [`strobe_scalar`] | Strobe scalar | SSC1–SSC2 | **no** | O(1) |
//! | [`strobe_vector`] | Strobe vector | SVC1–SVC2 | **no** | O(n) |
//! | [`physical`] | Drifting oscillator / ε-synced clock | §3.2.1.a.i–ii | – | O(1) |
//! | [`physical_vector`] | Physical vector | §3.2.1.b.ii | yes | O(n) |
//! | [`hlc`] | Hybrid logical (extension) | – | yes | O(1) |
//! | [`matrix`] | Matrix clock (extension) | – | yes | O(n²) |
//!
//! The key structural distinction (paper §4.2.3): **causality-based**
//! clocks tick on in-network receives and piggyback stamps on computation
//! messages; **strobe** clocks tick only on relevant (sensed) events,
//! broadcast their value as a control message, and merge without ticking.

#![warn(missing_docs)]

pub mod compressed;
pub mod hlc;
pub mod lamport;
pub mod matrix;
pub mod physical;
pub mod physical_vector;
pub mod strobe_scalar;
pub mod strobe_vector;
pub mod traits;
pub mod vector;

pub use compressed::{DiffReceiver, DiffSender, VectorDiff};
pub use hlc::{HlcStamp, HybridClock};
pub use lamport::{LamportClock, ScalarStamp};
pub use matrix::MatrixClock;
pub use physical::{Oscillator, PhysReading, SyncedClock};
pub use physical_vector::{PhysVectorClock, PhysVectorStamp};
pub use strobe_scalar::StrobeScalarClock;
pub use strobe_vector::StrobeVectorClock;
pub use traits::{Causality, LogicalClock, ProcessId, Timestamp};
pub use vector::{VectorClock, VectorStamp};
