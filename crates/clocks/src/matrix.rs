//! Matrix clocks (documented extension).
//!
//! Appendix A of the paper lists the classical middleware uses of vector
//! time — garbage collection, checkpointing, causal memory. Matrix clocks
//! are the standard tool for the garbage-collection use: process `i`
//! maintains `m[k][l]` = `i`'s knowledge of `k`'s knowledge of `l`'s local
//! clock. The column minimum `min_k m[k][i]` lower-bounds what *everyone*
//! knows about `i`, so any log entry of `i` older than that bound can be
//! discarded. We include them to cross-check the vector clock (row `i` of
//! the matrix clock must evolve exactly like a vector clock) and to
//! exercise the Appendix-A use case in tests.

use serde::{Deserialize, Serialize};

use crate::traits::ProcessId;
use crate::vector::VectorStamp;

/// A matrix clock for one process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixClock {
    id: ProcessId,
    /// `m[k]` is this process's view of process k's vector clock.
    m: Vec<VectorStamp>,
}

impl MatrixClock {
    /// A clock for process `id` among `n`.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n={n}");
        MatrixClock { id, m: vec![VectorStamp::zero(n); n] }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// This process's own vector-clock row.
    pub fn own_row(&self) -> &VectorStamp {
        &self.m[self.id]
    }

    /// Full matrix access (row k = view of process k).
    pub fn row(&self, k: ProcessId) -> &VectorStamp {
        &self.m[k]
    }

    /// Tick for a relevant local event.
    pub fn on_local_event(&mut self) -> VectorStamp {
        self.m[self.id].tick(self.id);
        self.m[self.id].clone()
    }

    /// Tick for a send; the whole matrix is piggybacked.
    pub fn on_send(&mut self) -> Vec<VectorStamp> {
        self.m[self.id].tick(self.id);
        self.m.clone()
    }

    /// Merge a received matrix from process `from`, then tick.
    pub fn on_receive(&mut self, from: ProcessId, matrix: &[VectorStamp]) {
        // Own row merges with the sender's row (the vector-clock rule)…
        let sender_row = matrix[from].clone();
        self.m[self.id].merge_from(&sender_row);
        // …and every view row merges with the corresponding received row.
        for (k, row) in matrix.iter().enumerate() {
            self.m[k].merge_from(row);
        }
        self.m[self.id].tick(self.id);
    }

    /// `min_k m[k][target]`: every process is known to have seen at least
    /// this many events of `target` — the garbage-collection bound.
    pub fn gc_bound(&self, target: ProcessId) -> u64 {
        self.m.iter().map(|row| row[target]).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::LogicalClock;
    use crate::vector::VectorClock;

    #[test]
    fn own_row_matches_vector_clock() {
        // Drive a matrix clock and a plain vector clock through the same
        // event sequence; the matrix's own row must match exactly.
        let mut mc0 = MatrixClock::new(0, 2);
        let mut mc1 = MatrixClock::new(1, 2);
        let mut vc0 = VectorClock::new(0, 2);
        let mut vc1 = VectorClock::new(1, 2);

        mc0.on_local_event();
        vc0.on_local_event();
        let m = mc0.on_send();
        let v = vc0.on_send();
        mc1.on_receive(0, &m);
        vc1.on_receive(&v);
        mc1.on_local_event();
        vc1.on_local_event();

        assert_eq!(*mc0.own_row(), vc0.current());
        assert_eq!(*mc1.own_row(), vc1.current());
    }

    #[test]
    fn gc_bound_rises_with_dissemination() {
        let mut a = MatrixClock::new(0, 2);
        let mut b = MatrixClock::new(1, 2);
        a.on_local_event(); // a has 1 event nobody else knows about
        assert_eq!(a.gc_bound(0), 0, "b hasn't seen it");
        let m = a.on_send();
        b.on_receive(0, &m);
        let back = b.on_send();
        a.on_receive(1, &back);
        // Now a knows that b knows about a's first 2 events (event + send).
        assert_eq!(a.gc_bound(0), 2);
    }

    #[test]
    fn gc_bound_is_min_across_views() {
        let mut a = MatrixClock::new(0, 3);
        let b = MatrixClock::new(1, 3);
        // Only a has events; views of b and c are all-zero.
        a.on_local_event();
        assert_eq!(a.gc_bound(0), 0);
        drop(b);
    }

    #[test]
    fn receive_updates_third_party_views() {
        // a -> b -> c: c learns b's view of a.
        let mut a = MatrixClock::new(0, 3);
        let mut b = MatrixClock::new(1, 3);
        let mut c = MatrixClock::new(2, 3);
        a.on_local_event();
        let m_ab = a.on_send();
        b.on_receive(0, &m_ab);
        let m_bc = b.on_send();
        c.on_receive(1, &m_bc);
        // c's view of a's row reflects a's 2 events.
        assert_eq!(c.row(0)[0], 2);
        // and c's view of b's row reflects b's receive-tick.
        assert!(c.row(1)[1] >= 1);
    }
}
