//! Lamport's logical scalar clock (paper §4.2.2, rules SC1–SC3).
//!
//! ```text
//! SC1. When process i executes (senses) a relevant event:
//!        Cᵢ = Cᵢ + 1
//! SC2. When process i executes a send event to send message M:
//!        Cᵢ = Cᵢ + 1;  Send M(Cᵢ)
//! SC3. When process i receives a scalar timestamp T piggybacked on a message:
//!        Cᵢ = max(Cᵢ, T);  Cᵢ = Cᵢ + 1
//! ```
//!
//! Scalar time is *consistent* (e → f ⇒ C(e) < C(f)) but not *strongly
//! consistent*: C(e) < C(f) does not imply e → f, so concurrency cannot be
//! detected — the reason Mattern/Fidge clocks remain strictly more powerful
//! even at Δ = 0 (paper §4.2.3, item 5).

use serde::{Deserialize, Serialize};

use crate::traits::{Causality, LogicalClock, ProcessId, Timestamp};

/// A Lamport scalar timestamp. The process id is carried alongside so that
/// distinct events never compare `Equal` unless they are the same event;
/// this gives the classic total order `(c, i)` used for tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalarStamp {
    /// The scalar clock value.
    pub value: u64,
    /// The process that assigned the stamp (total-order tie-break).
    pub process: ProcessId,
}

impl Timestamp for ScalarStamp {
    fn causality(&self, other: &Self) -> Causality {
        // Scalars define a total order, not causality: we report the order
        // of the (value, process) pairs. The caller must remember that
        // `Before` here means "ordered before in scalar time", which only
        // *upper-bounds* true causality.
        match (self.value, self.process).cmp(&(other.value, other.process)) {
            core::cmp::Ordering::Less => Causality::Before,
            core::cmp::Ordering::Greater => Causality::After,
            core::cmp::Ordering::Equal => Causality::Equal,
        }
    }

    fn wire_size(&self) -> usize {
        8 // one u64 on the wire; the process id rides in the message header
    }
}

/// Lamport's scalar clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    id: ProcessId,
    value: u64,
}

impl LamportClock {
    /// A clock for process `id`, starting at 0.
    pub fn new(id: ProcessId) -> Self {
        LamportClock { id, value: 0 }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The raw scalar value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Jump the clock forward to at least `to` without ticking — the
    /// crash-recovery re-prime path: a restarted process replays its durable
    /// log and fast-forwards to the largest value it had assigned, so new
    /// stamps never reuse pre-crash values.
    pub fn fast_forward(&mut self, to: u64) {
        self.value = self.value.max(to);
    }
}

impl LogicalClock for LamportClock {
    type Stamp = ScalarStamp;

    /// SC1.
    fn on_local_event(&mut self) -> ScalarStamp {
        self.value += 1;
        self.current()
    }

    /// SC2.
    fn on_send(&mut self) -> ScalarStamp {
        self.value += 1;
        self.current()
    }

    /// SC3.
    fn on_receive(&mut self, stamp: &ScalarStamp) -> ScalarStamp {
        self.value = self.value.max(stamp.value);
        self.value += 1;
        self.current()
    }

    fn current(&self) -> ScalarStamp {
        ScalarStamp { value: self.value, process: self.id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc1_ticks_by_one() {
        let mut c = LamportClock::new(0);
        assert_eq!(c.on_local_event().value, 1);
        assert_eq!(c.on_local_event().value, 2);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn sc2_ticks_before_send() {
        let mut c = LamportClock::new(1);
        c.on_local_event();
        let sent = c.on_send();
        assert_eq!(sent.value, 2);
        assert_eq!(sent.process, 1);
    }

    #[test]
    fn sc3_max_then_tick() {
        let mut c = LamportClock::new(2);
        c.on_local_event(); // 1
        let incoming = ScalarStamp { value: 10, process: 0 };
        let after = c.on_receive(&incoming);
        assert_eq!(after.value, 11, "max(1,10)+1");
        // Receiving an old stamp still ticks.
        let old = ScalarStamp { value: 3, process: 0 };
        assert_eq!(c.on_receive(&old).value, 12);
    }

    #[test]
    fn consistency_send_receive_orders() {
        // e (send at P0) → f (receive at P1): C(e) < C(f).
        let mut p0 = LamportClock::new(0);
        let mut p1 = LamportClock::new(1);
        for _ in 0..5 {
            p1.on_local_event();
        }
        let e = p0.on_send();
        let f = p1.on_receive(&e);
        assert!(e.value < f.value);
        assert_eq!(e.causality(&f), Causality::Before);
    }

    #[test]
    fn total_order_tie_breaks_on_process() {
        let a = ScalarStamp { value: 4, process: 0 };
        let b = ScalarStamp { value: 4, process: 1 };
        assert_eq!(a.causality(&b), Causality::Before);
        assert_eq!(b.causality(&a), Causality::After);
        assert_eq!(a.causality(&a), Causality::Equal);
    }

    #[test]
    fn scalar_cannot_detect_concurrency() {
        // Two causally unrelated events get *ordered* stamps anyway: the
        // scalar order is a superset of causality (the paper's reason for
        // preferring vectors when concurrency matters).
        let mut p0 = LamportClock::new(0);
        let mut p1 = LamportClock::new(1);
        let e = p0.on_local_event();
        let f = p1.on_local_event();
        let f2 = p1.on_local_event();
        assert_ne!(e.causality(&f), Causality::Concurrent);
        assert_eq!(e.causality(&f2), Causality::Before, "ordered though concurrent");
    }

    #[test]
    fn fast_forward_never_goes_backwards() {
        let mut c = LamportClock::new(0);
        c.fast_forward(10);
        assert_eq!(c.value(), 10);
        c.fast_forward(3);
        assert_eq!(c.value(), 10, "fast-forward is max, not assignment");
        assert_eq!(c.on_local_event().value, 11, "next event stamps past the replayed value");
    }

    #[test]
    fn wire_size_is_constant() {
        let s = ScalarStamp { value: u64::MAX, process: 1000 };
        assert_eq!(s.wire_size(), 8);
    }
}
