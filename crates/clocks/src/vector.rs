//! Mattern/Fidge causality-based vector clocks (paper §4.2.1, rules VC1–VC3).
//!
//! ```text
//! VC1. When process i executes (senses) a relevant internal event:
//!        Cᵢ[i] = Cᵢ[i] + 1
//! VC2. When process i executes a send event to send message M:
//!        Cᵢ[i] = Cᵢ[i] + 1;  Send M(Cᵢ)
//! VC3. When process i receives a vector T piggybacked on a message:
//!        ∀k: Cᵢ[k] = max(Cᵢ[k], T[k]);  Cᵢ[i] = Cᵢ[i] + 1
//! ```
//!
//! Vector time is *strongly consistent*: the partial order on timestamps is
//! isomorphic to the causality partial order on events, which is what makes
//! consistent-cut tests and `Possibly`/`Definitely` detection exact.

use std::hash::{Hash, Hasher};
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Error, Serialize, Value};

use crate::traits::{Causality, LogicalClock, ProcessId, Timestamp};

/// Stamps with at most this many components are stored in-struct; larger
/// stamps spill to the heap. Small deployments (the paper's n = 4..16
/// sensor cells) stay allocation-free on every clone/merge; E7/A3's n = 64
/// strobe vectors take the heap path.
pub const INLINE_COMPONENTS: usize = 8;

/// Storage for a vector timestamp: inline array up to
/// [`INLINE_COMPONENTS`], heap vector above.
#[derive(Debug, Clone)]
enum Repr {
    Inline { len: u8, buf: [u64; INLINE_COMPONENTS] },
    Spilled(Vec<u64>),
}

/// A vector timestamp over `n` processes.
///
/// Internally a small-vector: components live in-struct for `n ≤ 8` (no
/// heap allocation on construction, clone, or merge) and in a `Vec` above.
/// All observable behaviour — comparison, hashing, serialization — depends
/// only on the component slice, never on which representation holds it.
#[derive(Debug, Clone)]
pub struct VectorStamp(Repr);

impl VectorStamp {
    /// The all-zero stamp for `n` processes.
    pub fn zero(n: usize) -> Self {
        if n <= INLINE_COMPONENTS {
            VectorStamp(Repr::Inline { len: n as u8, buf: [0; INLINE_COMPONENTS] })
        } else {
            VectorStamp(Repr::Spilled(vec![0; n]))
        }
    }

    /// A stamp with the given components.
    pub fn from_slice(v: &[u64]) -> Self {
        if v.len() <= INLINE_COMPONENTS {
            let mut buf = [0; INLINE_COMPONENTS];
            buf[..v.len()].copy_from_slice(v);
            VectorStamp(Repr::Inline { len: v.len() as u8, buf })
        } else {
            VectorStamp(Repr::Spilled(v.to_vec()))
        }
    }

    /// A stamp that is forced onto the heap regardless of arity. Exists so
    /// tests can check that inline and spilled storage of the same
    /// components are observationally identical; not useful otherwise.
    #[doc(hidden)]
    pub fn spilled(v: Vec<u64>) -> Self {
        VectorStamp(Repr::Spilled(v))
    }

    /// True if the components are stored in-struct (n ≤ 8 and not
    /// explicitly spilled).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spilled(v) => v.len(),
        }
    }

    /// True if the stamp has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// The components as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Iterate over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.as_slice().iter()
    }

    /// Copy the components into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.as_slice().to_vec()
    }

    /// Component access.
    pub fn get(&self, k: ProcessId) -> u64 {
        self.as_slice()[k]
    }

    /// Increment component `k` (the VC1/VC2/SVC1 own-component tick).
    #[inline]
    pub fn tick(&mut self, k: ProcessId) {
        self.as_mut_slice()[k] += 1;
    }

    /// Componentwise `self[k] ≤ other[k]` for all k.
    #[inline]
    pub fn le(&self, other: &VectorStamp) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    /// Strict happened-before: `self ≤ other` and `self ≠ other`.
    ///
    /// Single fused pass: tracks strictness while testing ≤, instead of a ≤
    /// sweep followed by an equality sweep.
    #[inline]
    pub fn lt(&self, other: &VectorStamp) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        debug_assert_eq!(a.len(), b.len());
        let mut strict = false;
        for (x, y) in a.iter().zip(b) {
            if x > y {
                return false;
            }
            strict |= x < y;
        }
        strict
    }

    /// Neither `self ≤ other` nor `other ≤ self`.
    ///
    /// Single fused pass over both directions, short-circuiting as soon as
    /// a strict disagreement is seen both ways.
    #[inline]
    pub fn concurrent(&self, other: &VectorStamp) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        debug_assert_eq!(a.len(), b.len());
        let mut a_gt = false;
        let mut b_gt = false;
        for (x, y) in a.iter().zip(b) {
            a_gt |= x > y;
            b_gt |= y > x;
            if a_gt && b_gt {
                return true;
            }
        }
        false
    }

    /// Componentwise maximum, in place.
    #[inline]
    pub fn merge_from(&mut self, other: &VectorStamp) {
        let b = other.as_slice();
        let a = self.as_mut_slice();
        assert_eq!(a.len(), b.len(), "vector stamps must have equal arity");
        #[cfg(target_arch = "x86_64")]
        if a.len() >= 8 {
            if std::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support was just verified at runtime.
                unsafe { merge_max_avx512(a, b) };
                return;
            }
            if std::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { merge_max_avx2(a, b) };
                return;
            }
        }
        for i in 0..a.len() {
            if b[i] > a[i] {
                a[i] = b[i];
            }
        }
    }

    /// The componentwise maximum of two stamps.
    pub fn join(&self, other: &VectorStamp) -> VectorStamp {
        let mut out = self.clone();
        out.merge_from(other);
        out
    }
}

/// Componentwise unsigned max over 8-lane `u64` vectors, using the native
/// unsigned max AVX-512F provides (`vpmaxuq`). Exactly the scalar loop's
/// result, so runs stay bit-identical across CPUs.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX-512F; slices may
/// have any (equal) length and alignment.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn merge_max_avx512(a: &mut [u64], b: &[u64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut i = 0;
    while i + 8 <= n {
        let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
        let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
        _mm512_storeu_si512(a.as_mut_ptr().add(i) as *mut _, _mm512_max_epu64(va, vb));
        i += 8;
    }
    while i < n {
        if b[i] > a[i] {
            a[i] = b[i];
        }
        i += 1;
    }
}

/// Componentwise unsigned max over 4-lane `u64` vectors. AVX2 has no
/// unsigned 64-bit compare, so both operands are sign-biased and compared
/// signed — a standard identity (`x >u y  ⇔  x ^ MIN >s y ^ MIN`). The
/// result is exactly the scalar loop's, so representations and runs stay
/// bit-identical whether or not the CPU has AVX2.
///
/// # Safety
/// The caller must ensure the running CPU supports AVX2; slices may have
/// any (equal) length and alignment.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn merge_max_avx2(a: &mut [u64], b: &[u64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let sign = _mm256_set1_epi64x(i64::MIN);
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vb, sign), _mm256_xor_si256(va, sign));
        let merged = _mm256_blendv_epi8(va, vb, gt);
        _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, merged);
        i += 4;
    }
    while i < n {
        if b[i] > a[i] {
            a[i] = b[i];
        }
        i += 1;
    }
}

impl From<Vec<u64>> for VectorStamp {
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= INLINE_COMPONENTS {
            VectorStamp::from_slice(&v)
        } else {
            VectorStamp(Repr::Spilled(v))
        }
    }
}

impl Index<usize> for VectorStamp {
    type Output = u64;
    #[inline]
    fn index(&self, k: usize) -> &u64 {
        &self.as_slice()[k]
    }
}

impl IndexMut<usize> for VectorStamp {
    #[inline]
    fn index_mut(&mut self, k: usize) -> &mut u64 {
        &mut self.as_mut_slice()[k]
    }
}

impl<'a> IntoIterator for &'a VectorStamp {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Equality, hashing, and serialization go through the component slice, so
// an inline stamp and a spilled stamp with the same components are fully
// interchangeable (same Eq, same Hash, same JSON).
impl PartialEq for VectorStamp {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for VectorStamp {}

impl Hash for VectorStamp {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Serialize for VectorStamp {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for VectorStamp {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<u64>::from_value(v).map(VectorStamp::from)
    }
}

impl Timestamp for VectorStamp {
    /// Fused single-pass classification: computes both direction flags in
    /// one sweep (short-circuiting to `Concurrent`) instead of an equality
    /// pass plus up to two ≤ passes.
    fn causality(&self, other: &Self) -> Causality {
        let (a, b) = (self.as_slice(), other.as_slice());
        debug_assert_eq!(a.len(), b.len());
        let mut a_gt = false;
        let mut b_gt = false;
        for (x, y) in a.iter().zip(b) {
            a_gt |= x > y;
            b_gt |= y > x;
            if a_gt && b_gt {
                return Causality::Concurrent;
            }
        }
        match (a_gt, b_gt) {
            (false, false) => Causality::Equal,
            (false, true) => Causality::Before,
            (true, false) => Causality::After,
            (true, true) => unreachable!("short-circuited above"),
        }
    }

    fn wire_size(&self) -> usize {
        8 * self.len() // n u64 components
    }
}

/// A Mattern/Fidge vector clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    id: ProcessId,
    v: VectorStamp,
}

impl VectorClock {
    /// A clock for process `id` in a system of `n` processes.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n={n}");
        VectorClock { id, v: VectorStamp::zero(n) }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Merge `stamp` into the clock **without ticking** — the
    /// crash-recovery re-prime path (vector merge-catch-up): a restarted
    /// process replays its durable log and absorbs the last stamp it had
    /// assigned, so post-recovery events stay causally after pre-crash ones.
    pub fn prime(&mut self, stamp: &VectorStamp) {
        self.v.merge_from(stamp);
    }
}

impl LogicalClock for VectorClock {
    type Stamp = VectorStamp;

    /// VC1.
    fn on_local_event(&mut self) -> VectorStamp {
        self.v.tick(self.id);
        self.v.clone()
    }

    /// VC2.
    fn on_send(&mut self) -> VectorStamp {
        self.v.tick(self.id);
        self.v.clone()
    }

    /// VC3.
    fn on_receive(&mut self, stamp: &VectorStamp) -> VectorStamp {
        self.v.merge_from(stamp);
        self.v.tick(self.id);
        self.v.clone()
    }

    fn current(&self) -> VectorStamp {
        self.v.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc1_ticks_own_component_only() {
        let mut c = VectorClock::new(1, 3);
        let s = c.on_local_event();
        assert_eq!(s.as_slice(), [0, 1, 0]);
        let s = c.on_local_event();
        assert_eq!(s.as_slice(), [0, 2, 0]);
    }

    #[test]
    fn vc3_merges_and_ticks() {
        let mut c = VectorClock::new(2, 3);
        c.on_local_event(); // [0,0,1]
        let incoming = VectorStamp::from_slice(&[5, 2, 0]);
        let s = c.on_receive(&incoming);
        assert_eq!(s.as_slice(), [5, 2, 2], "max componentwise, then own +1");
    }

    #[test]
    fn prime_merges_without_ticking() {
        let mut c = VectorClock::new(1, 3);
        c.prime(&VectorStamp::from_slice(&[4, 7, 2]));
        assert_eq!(c.current().as_slice(), [4, 7, 2], "no tick on prime");
        let s = c.on_local_event();
        assert_eq!(s.as_slice(), [4, 8, 2], "next event is causally after the replayed stamp");
    }

    #[test]
    fn message_chain_creates_happened_before() {
        let mut p0 = VectorClock::new(0, 2);
        let mut p1 = VectorClock::new(1, 2);
        let e = p0.on_send();
        let f = p1.on_receive(&e);
        assert_eq!(e.causality(&f), Causality::Before);
        assert_eq!(f.causality(&e), Causality::After);
    }

    #[test]
    fn independent_events_are_concurrent() {
        let mut p0 = VectorClock::new(0, 2);
        let mut p1 = VectorClock::new(1, 2);
        let e = p0.on_local_event();
        let f = p1.on_local_event();
        assert_eq!(e.causality(&f), Causality::Concurrent);
        assert!(e.concurrent(&f));
    }

    #[test]
    fn strong_consistency_through_three_processes() {
        // P0 --m1--> P1 --m2--> P2: P0's event precedes P2's receive.
        let mut p0 = VectorClock::new(0, 3);
        let mut p1 = VectorClock::new(1, 3);
        let mut p2 = VectorClock::new(2, 3);
        let e0 = p0.on_local_event();
        let m1 = p0.on_send();
        p1.on_receive(&m1);
        let m2 = p1.on_send();
        let f = p2.on_receive(&m2);
        assert_eq!(e0.causality(&f), Causality::Before, "transitive causality");
        // An isolated P2 event before the receive is concurrent with e0.
        let mut p2b = VectorClock::new(2, 3);
        let g = p2b.on_local_event();
        assert_eq!(e0.causality(&g), Causality::Concurrent);
    }

    #[test]
    fn join_is_lub() {
        let a = VectorStamp::from_slice(&[3, 0, 5]);
        let b = VectorStamp::from_slice(&[1, 4, 5]);
        let j = a.join(&b);
        assert_eq!(j.as_slice(), [3, 4, 5]);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn equal_stamps_compare_equal() {
        let a = VectorStamp::from_slice(&[1, 2]);
        let b = VectorStamp::from_slice(&[1, 2]);
        assert_eq!(a.causality(&b), Causality::Equal);
        assert!(!a.lt(&b));
        assert!(a.le(&b));
    }

    #[test]
    fn wire_size_scales_with_n() {
        assert_eq!(VectorStamp::zero(4).wire_size(), 32);
        assert_eq!(VectorStamp::zero(64).wire_size(), 512);
    }

    #[test]
    fn small_stamps_are_inline_and_large_spill() {
        assert!(VectorStamp::zero(INLINE_COMPONENTS).is_inline());
        assert!(!VectorStamp::zero(INLINE_COMPONENTS + 1).is_inline());
        assert!(VectorStamp::from_slice(&[1, 2, 3]).is_inline());
        assert!(VectorStamp::from(vec![0; 64]).len() == 64);
    }

    #[test]
    fn inline_and_spilled_are_observationally_equal() {
        let inline = VectorStamp::from_slice(&[1, 2, 3]);
        let spilled = VectorStamp::spilled(vec![1, 2, 3]);
        assert!(inline.is_inline() && !spilled.is_inline());
        assert_eq!(inline, spilled);
        assert_eq!(inline.causality(&spilled), Causality::Equal);
        let hash = |s: &VectorStamp| {
            use std::hash::{DefaultHasher, Hasher as _};
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&inline), hash(&spilled));
    }

    #[test]
    fn serde_round_trip_preserves_components() {
        for stamp in [
            VectorStamp::from_slice(&[1, 0, 9]),
            VectorStamp::from(vec![3; 17]),
            VectorStamp::spilled(vec![4, 5]),
        ] {
            let v = stamp.to_value();
            let back = VectorStamp::from_value(&v).expect("round trip");
            assert_eq!(stamp, back);
            assert_eq!(back.is_inline(), back.len() <= INLINE_COMPONENTS, "repr renormalizes");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_must_be_in_range() {
        let _ = VectorClock::new(3, 3);
    }
}
