//! Mattern/Fidge causality-based vector clocks (paper §4.2.1, rules VC1–VC3).
//!
//! ```text
//! VC1. When process i executes (senses) a relevant internal event:
//!        Cᵢ[i] = Cᵢ[i] + 1
//! VC2. When process i executes a send event to send message M:
//!        Cᵢ[i] = Cᵢ[i] + 1;  Send M(Cᵢ)
//! VC3. When process i receives a vector T piggybacked on a message:
//!        ∀k: Cᵢ[k] = max(Cᵢ[k], T[k]);  Cᵢ[i] = Cᵢ[i] + 1
//! ```
//!
//! Vector time is *strongly consistent*: the partial order on timestamps is
//! isomorphic to the causality partial order on events, which is what makes
//! consistent-cut tests and `Possibly`/`Definitely` detection exact.

use serde::{Deserialize, Serialize};

use crate::traits::{Causality, LogicalClock, ProcessId, Timestamp};

/// A vector timestamp over `n` processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorStamp(pub Vec<u64>);

impl VectorStamp {
    /// The all-zero stamp for `n` processes.
    pub fn zero(n: usize) -> Self {
        VectorStamp(vec![0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the stamp has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component access.
    pub fn get(&self, k: ProcessId) -> u64 {
        self.0[k]
    }

    /// Componentwise `self[k] ≤ other[k]` for all k.
    pub fn le(&self, other: &VectorStamp) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strict happened-before: `self ≤ other` and `self ≠ other`.
    pub fn lt(&self, other: &VectorStamp) -> bool {
        self.le(other) && self.0 != other.0
    }

    /// Neither `self ≤ other` nor `other ≤ self`.
    pub fn concurrent(&self, other: &VectorStamp) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Componentwise maximum, in place.
    pub fn merge_from(&mut self, other: &VectorStamp) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// The componentwise maximum of two stamps.
    pub fn join(&self, other: &VectorStamp) -> VectorStamp {
        let mut out = self.clone();
        out.merge_from(other);
        out
    }
}

impl Timestamp for VectorStamp {
    fn causality(&self, other: &Self) -> Causality {
        if self.0 == other.0 {
            Causality::Equal
        } else if self.le(other) {
            Causality::Before
        } else if other.le(self) {
            Causality::After
        } else {
            Causality::Concurrent
        }
    }

    fn wire_size(&self) -> usize {
        8 * self.len() // n u64 components
    }
}

/// A Mattern/Fidge vector clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    id: ProcessId,
    v: VectorStamp,
}

impl VectorClock {
    /// A clock for process `id` in a system of `n` processes.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n={n}");
        VectorClock { id, v: VectorStamp::zero(n) }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }
}

impl LogicalClock for VectorClock {
    type Stamp = VectorStamp;

    /// VC1.
    fn on_local_event(&mut self) -> VectorStamp {
        self.v.0[self.id] += 1;
        self.v.clone()
    }

    /// VC2.
    fn on_send(&mut self) -> VectorStamp {
        self.v.0[self.id] += 1;
        self.v.clone()
    }

    /// VC3.
    fn on_receive(&mut self, stamp: &VectorStamp) -> VectorStamp {
        self.v.merge_from(stamp);
        self.v.0[self.id] += 1;
        self.v.clone()
    }

    fn current(&self) -> VectorStamp {
        self.v.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc1_ticks_own_component_only() {
        let mut c = VectorClock::new(1, 3);
        let s = c.on_local_event();
        assert_eq!(s.0, vec![0, 1, 0]);
        let s = c.on_local_event();
        assert_eq!(s.0, vec![0, 2, 0]);
    }

    #[test]
    fn vc3_merges_and_ticks() {
        let mut c = VectorClock::new(2, 3);
        c.on_local_event(); // [0,0,1]
        let incoming = VectorStamp(vec![5, 2, 0]);
        let s = c.on_receive(&incoming);
        assert_eq!(s.0, vec![5, 2, 2], "max componentwise, then own +1");
    }

    #[test]
    fn message_chain_creates_happened_before() {
        let mut p0 = VectorClock::new(0, 2);
        let mut p1 = VectorClock::new(1, 2);
        let e = p0.on_send();
        let f = p1.on_receive(&e);
        assert_eq!(e.causality(&f), Causality::Before);
        assert_eq!(f.causality(&e), Causality::After);
    }

    #[test]
    fn independent_events_are_concurrent() {
        let mut p0 = VectorClock::new(0, 2);
        let mut p1 = VectorClock::new(1, 2);
        let e = p0.on_local_event();
        let f = p1.on_local_event();
        assert_eq!(e.causality(&f), Causality::Concurrent);
        assert!(e.concurrent(&f));
    }

    #[test]
    fn strong_consistency_through_three_processes() {
        // P0 --m1--> P1 --m2--> P2: P0's event precedes P2's receive.
        let mut p0 = VectorClock::new(0, 3);
        let mut p1 = VectorClock::new(1, 3);
        let mut p2 = VectorClock::new(2, 3);
        let e0 = p0.on_local_event();
        let m1 = p0.on_send();
        p1.on_receive(&m1);
        let m2 = p1.on_send();
        let f = p2.on_receive(&m2);
        assert_eq!(e0.causality(&f), Causality::Before, "transitive causality");
        // An isolated P2 event before the receive is concurrent with e0.
        let mut p2b = VectorClock::new(2, 3);
        let g = p2b.on_local_event();
        assert_eq!(e0.causality(&g), Causality::Concurrent);
    }

    #[test]
    fn join_is_lub() {
        let a = VectorStamp(vec![3, 0, 5]);
        let b = VectorStamp(vec![1, 4, 5]);
        let j = a.join(&b);
        assert_eq!(j.0, vec![3, 4, 5]);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn equal_stamps_compare_equal() {
        let a = VectorStamp(vec![1, 2]);
        let b = VectorStamp(vec![1, 2]);
        assert_eq!(a.causality(&b), Causality::Equal);
        assert!(!a.lt(&b));
        assert!(a.le(&b));
    }

    #[test]
    fn wire_size_scales_with_n() {
        assert_eq!(VectorStamp::zero(4).wire_size(), 32);
        assert_eq!(VectorStamp::zero(64).wire_size(), 512);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_must_be_in_range() {
        let _ = VectorClock::new(3, 3);
    }
}
