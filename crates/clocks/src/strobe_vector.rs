//! Strobe vector clocks (paper §4.2.1, rules SVC1–SVC2).
//!
//! ```text
//! SVC1. When process i executes (senses) a relevant event:
//!         Cᵢ[i] = Cᵢ[i] + 1;  System-wide_Broadcast(Cᵢ)
//! SVC2. When process i receives a strobe T:
//!         ∀k: Cᵢ[k] = max(Cᵢ[k], T[k])
//! ```
//!
//! Differences from the Mattern/Fidge vector clock (paper §4.2.3):
//!
//! 1. strobes do not track message-induced causality — they synchronize the
//!    drifting local counters ("catch up");
//! 2. the receiver merges but does **not** tick;
//! 3. all strobes are control messages (broadcast), not piggybacks;
//! 4. strobes are sent no more frequently than at each relevant event;
//! 5. at Δ = 0, strobe vectors can be replaced by strobe scalars without
//!    losing accuracy (experiment E6 verifies this) — unlike the causal
//!    clocks, where vectors remain strictly more powerful.
//!
//! The induced partial order is *artificial* (run-time determined), but
//! useful: it prunes the O(pⁿ) state lattice down to the near-linear "slim
//! lattice" of states whose intervals actually overlapped (§4.2.4).

use serde::{Deserialize, Serialize};

use crate::traits::{LogicalClock, ProcessId};
use crate::vector::VectorStamp;

/// A strobe vector clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrobeVectorClock {
    id: ProcessId,
    v: VectorStamp,
}

impl StrobeVectorClock {
    /// A clock for process `id` in a system of `n` processes.
    pub fn new(id: ProcessId, n: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n={n}");
        StrobeVectorClock { id, v: VectorStamp::zero(n) }
    }

    /// The owner process.
    pub fn id(&self) -> ProcessId {
        self.id
    }
}

impl LogicalClock for StrobeVectorClock {
    type Stamp = VectorStamp;

    /// SVC1: tick the own component; the caller must then broadcast
    /// [`Self::current`] system-wide.
    fn on_local_event(&mut self) -> VectorStamp {
        self.v.tick(self.id);
        self.v.clone()
    }

    /// SVC2: componentwise max, **no local tick** (contrast VC3).
    fn on_strobe(&mut self, stamp: &VectorStamp) {
        self.v.merge_from(stamp);
    }

    fn current(&self) -> VectorStamp {
        self.v.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Causality, Timestamp};
    use crate::vector::VectorClock;

    #[test]
    fn svc1_ticks_own_component() {
        let mut c = StrobeVectorClock::new(2, 4);
        assert_eq!(c.on_local_event().as_slice(), [0, 0, 1, 0]);
        assert_eq!(c.on_local_event().as_slice(), [0, 0, 2, 0]);
    }

    #[test]
    fn svc2_merges_without_tick() {
        let mut c = StrobeVectorClock::new(0, 3);
        c.on_local_event(); // [1,0,0]
        c.on_strobe(&VectorStamp::from(vec![0, 4, 2]));
        assert_eq!(c.current().as_slice(), [1, 4, 2], "merge only — no own tick");
    }

    #[test]
    fn receiver_tick_is_the_vc3_difference() {
        // Same sequence under both clocks; the causal clock ticks on
        // receive, the strobe clock does not (paper §4.2.3 item 2).
        let incoming = VectorStamp::from(vec![3, 0]);
        let mut causal = VectorClock::new(1, 2);
        let mut strobe = StrobeVectorClock::new(1, 2);
        causal.on_receive(&incoming);
        strobe.on_strobe(&incoming);
        assert_eq!(causal.current().as_slice(), [3, 1]);
        assert_eq!(strobe.current().as_slice(), [3, 0]);
    }

    #[test]
    fn strobes_keep_processes_in_sync() {
        let mut a = StrobeVectorClock::new(0, 2);
        let mut b = StrobeVectorClock::new(1, 2);
        let s = a.on_local_event();
        b.on_strobe(&s);
        let t = b.on_local_event();
        a.on_strobe(&t);
        assert_eq!(a.current().as_slice(), [1, 1]);
        assert_eq!(b.current().as_slice(), [1, 1]);
        assert_eq!(a.current().causality(&b.current()), Causality::Equal);
    }

    #[test]
    fn monotonicity_componentwise() {
        let mut c = StrobeVectorClock::new(0, 3);
        let mut prev = c.current();
        let strobes = [
            VectorStamp::from(vec![0, 5, 1]),
            VectorStamp::from(vec![0, 2, 8]),
            VectorStamp::from(vec![0, 0, 0]),
        ];
        for s in &strobes {
            c.on_local_event();
            c.on_strobe(s);
            let cur = c.current();
            assert!(prev.le(&cur), "clock must be monotone: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn delayed_strobes_leave_stamps_concurrent() {
        // If strobes have not yet arrived (Δ > 0 in flight), two events'
        // stamps are concurrent — exactly the race window in which the
        // paper says detection errors can occur.
        let mut a = StrobeVectorClock::new(0, 2);
        let mut b = StrobeVectorClock::new(1, 2);
        let e = a.on_local_event(); // strobe in flight…
        let f = b.on_local_event(); // …not yet delivered
        assert_eq!(e.causality(&f), Causality::Concurrent);
        // Once delivered, subsequent events are ordered after both.
        b.on_strobe(&e);
        let g = b.on_local_event();
        assert_eq!(e.causality(&g), Causality::Before);
        assert_eq!(f.causality(&g), Causality::Before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_must_be_in_range() {
        let _ = StrobeVectorClock::new(5, 2);
    }
}
