//! Property-based tests for the clock zoo.
//!
//! The central property is the one the paper's whole argument rests on:
//! Mattern/Fidge vector time is **isomorphic** to the causality partial
//! order of the execution (e → f ⇔ V(e) < V(f)), while Lamport scalar time
//! is only *consistent* (e → f ⇒ C(e) < C(f)). We generate random
//! message-passing executions, compute ground-truth happened-before from
//! the execution graph, and check both directions.

use proptest::prelude::*;

use psn_clocks::{
    Causality, HybridClock, LamportClock, LogicalClock, PhysReading, StrobeScalarClock,
    StrobeVectorClock, Timestamp, VectorClock, VectorStamp,
};

// ---------------------------------------------------------------------------
// Random execution generation
// ---------------------------------------------------------------------------

/// One step of a generated execution script.
#[derive(Debug, Clone)]
enum Op {
    /// A relevant local event at process p.
    Local(usize),
    /// p sends a message (delivered later by a matching `Recv`).
    Send(usize),
    /// Deliver the oldest undelivered message to process p (skipped if the
    /// only available messages were sent by p itself or none exist).
    Recv(usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![(0..n).prop_map(Op::Local), (0..n).prop_map(Op::Send), (0..n).prop_map(Op::Recv),]
}

/// A recorded event with its ground-truth causal predecessors.
struct EventRec {
    proc: usize,
    /// Indices (into the event list) of direct predecessors: the previous
    /// event at the same process, and for a receive the matching send.
    preds: Vec<usize>,
    vstamp: VectorStamp,
    lstamp: u64,
}

/// Replay a script against real clocks, recording ground-truth causality.
fn replay(n: usize, script: &[Op]) -> Vec<EventRec> {
    let mut vclocks: Vec<VectorClock> = (0..n).map(|i| VectorClock::new(i, n)).collect();
    let mut lclocks: Vec<LamportClock> = (0..n).map(LamportClock::new).collect();
    let mut last_event_at: Vec<Option<usize>> = vec![None; n];
    // In-flight messages: (send_event_idx, sender, vstamp, lstamp)
    let mut mailbox: Vec<(usize, usize, VectorStamp, u64)> = Vec::new();
    let mut events: Vec<EventRec> = Vec::new();

    let push_event = |events: &mut Vec<EventRec>,
                      last_event_at: &mut Vec<Option<usize>>,
                      proc: usize,
                      extra_pred: Option<usize>,
                      vstamp: VectorStamp,
                      lstamp: u64| {
        let mut preds = Vec::new();
        if let Some(p) = last_event_at[proc] {
            preds.push(p);
        }
        if let Some(e) = extra_pred {
            preds.push(e);
        }
        let idx = events.len();
        events.push(EventRec { proc, preds, vstamp, lstamp });
        last_event_at[proc] = Some(idx);
        idx
    };

    for op in script {
        match *op {
            Op::Local(p) => {
                let v = vclocks[p].on_local_event();
                let l = lclocks[p].on_local_event().value;
                push_event(&mut events, &mut last_event_at, p, None, v, l);
            }
            Op::Send(p) => {
                let v = vclocks[p].on_send();
                let l = lclocks[p].on_send().value;
                let idx = push_event(&mut events, &mut last_event_at, p, None, v.clone(), l);
                mailbox.push((idx, p, v, l));
            }
            Op::Recv(p) => {
                // Find the oldest message not sent by p.
                if let Some(pos) = mailbox.iter().position(|&(_, s, _, _)| s != p) {
                    let (send_idx, _, v, l) = mailbox.remove(pos);
                    let v2 = vclocks[p].on_receive(&v);
                    let l2 = lclocks[p]
                        .on_receive(&psn_clocks::ScalarStamp { value: l, process: 0 })
                        .value;
                    push_event(&mut events, &mut last_event_at, p, Some(send_idx), v2, l2);
                }
            }
        }
    }
    events
}

/// Ground-truth happened-before by transitive closure over predecessors.
fn happened_before(events: &[EventRec]) -> Vec<Vec<bool>> {
    let n = events.len();
    let mut hb = vec![vec![false; n]; n];
    for (j, e) in events.iter().enumerate() {
        for &p in &e.preds {
            hb[p][j] = true;
        }
    }
    // Floyd–Warshall-style closure (events are in topological order since
    // predecessors always have smaller indices).
    for j in 0..n {
        for i in 0..j {
            if hb[i][j] {
                let (left, right) = hb.split_at_mut(j);
                // everything that precedes i also precedes j
                let row_j_src: Vec<usize> = (0..i).filter(|&k| left[k][j] || left[k][i]).collect();
                let _ = right;
                for k in row_j_src {
                    hb[k][j] = true;
                }
            }
        }
    }
    hb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// e → f  ⇔  V(e) < V(f): the isomorphism theorem for vector time.
    #[test]
    fn vector_time_isomorphic_to_causality(
        script in proptest::collection::vec(op_strategy(4), 1..40)
    ) {
        let events = replay(4, &script);
        let hb = happened_before(&events);
        for i in 0..events.len() {
            for j in 0..events.len() {
                if i == j { continue; }
                let vlt = events[i].vstamp.lt(&events[j].vstamp);
                prop_assert_eq!(
                    hb[i][j], vlt,
                    "event {} -> event {}: hb={} but V<V'={} ({:?} vs {:?})",
                    i, j, hb[i][j], vlt, events[i].vstamp, events[j].vstamp
                );
            }
        }
    }

    /// e → f  ⇒  C(e) < C(f): Lamport consistency (one direction only).
    #[test]
    fn lamport_time_consistent_with_causality(
        script in proptest::collection::vec(op_strategy(5), 1..40)
    ) {
        let events = replay(5, &script);
        let hb = happened_before(&events);
        for i in 0..events.len() {
            for j in 0..events.len() {
                if hb[i][j] {
                    prop_assert!(
                        events[i].lstamp < events[j].lstamp,
                        "hb but C(e)={} >= C(f)={}", events[i].lstamp, events[j].lstamp
                    );
                }
            }
        }
    }

    /// Vector stamps within one process are totally ordered.
    #[test]
    fn same_process_stamps_totally_ordered(
        script in proptest::collection::vec(op_strategy(3), 1..40)
    ) {
        let events = replay(3, &script);
        for i in 0..events.len() {
            for j in (i+1)..events.len() {
                if events[i].proc == events[j].proc {
                    prop_assert!(events[i].vstamp.lt(&events[j].vstamp));
                }
            }
        }
    }

    /// causality() is antisymmetric under flip.
    #[test]
    fn causality_flip_symmetry(
        a in proptest::collection::vec(0u64..10, 4),
        b in proptest::collection::vec(0u64..10, 4),
    ) {
        let sa = VectorStamp::from(a);
        let sb = VectorStamp::from(b);
        prop_assert_eq!(sa.causality(&sb), sb.causality(&sa).flip());
    }

    /// join() is the least upper bound of two stamps.
    #[test]
    fn join_is_least_upper_bound(
        a in proptest::collection::vec(0u64..100, 5),
        b in proptest::collection::vec(0u64..100, 5),
    ) {
        let sa = VectorStamp::from(a.clone());
        let sb = VectorStamp::from(b.clone());
        let j = sa.join(&sb);
        prop_assert!(sa.le(&j) && sb.le(&j));
        // any other upper bound dominates the join
        let ub = VectorStamp::from(a.iter().zip(&b).map(|(x, y)| x.max(y) + 1).collect::<Vec<_>>());
        prop_assert!(j.le(&ub));
    }

    /// Strobe clocks are monotone under arbitrary interleavings of local
    /// events and strobes (the paper's monotonicity guarantee, §4.2).
    #[test]
    fn strobe_vector_monotone(
        ops in proptest::collection::vec((0usize..3, proptest::collection::vec(0u64..50, 3)), 1..60)
    ) {
        let mut c = StrobeVectorClock::new(0, 3);
        let mut prev = c.current();
        for (kind, strobe) in ops {
            match kind {
                0 => { c.on_local_event(); }
                _ => { c.on_strobe(&VectorStamp::from(strobe)); }
            }
            let cur = c.current();
            prop_assert!(prev.le(&cur), "regressed: {:?} -> {:?}", prev, cur);
            prev = cur;
        }
    }

    /// Strobe scalar clocks are monotone too.
    #[test]
    fn strobe_scalar_monotone(
        ops in proptest::collection::vec((0usize..3, 0u64..1000), 1..60)
    ) {
        let mut c = StrobeScalarClock::new(1);
        let mut prev = 0;
        for (kind, v) in ops {
            match kind {
                0 => { c.on_local_event(); }
                _ => c.on_strobe(&psn_clocks::ScalarStamp { value: v, process: 0 }),
            }
            prop_assert!(c.value() >= prev);
            prev = c.value();
        }
    }

    /// HLC: the physical part never exceeds the max physical reading that
    /// has appeared anywhere in the execution (it never invents time), and
    /// ticking is monotone.
    #[test]
    fn hlc_bounded_and_monotone(
        pts in proptest::collection::vec(0i64..1_000_000, 1..50)
    ) {
        let mut h = HybridClock::new(0);
        let mut max_pt = i64::MIN;
        let mut prev = (i64::MIN, 0u32);
        for &pt in &pts {
            max_pt = max_pt.max(pt);
            let s = h.tick(PhysReading(pt));
            prop_assert!(s.l <= max_pt);
            prop_assert!((s.l, s.c) > prev, "HLC must strictly advance");
            prev = (s.l, s.c);
        }
    }

    /// Vector causality is transitive: a<b and b<c imply a<c (partial-order
    /// sanity independent of any execution).
    #[test]
    fn vector_lt_transitive(
        a in proptest::collection::vec(0u64..6, 3),
        d1 in proptest::collection::vec(0u64..6, 3),
        d2 in proptest::collection::vec(0u64..6, 3),
    ) {
        let sa = VectorStamp::from(a.clone());
        let sb = VectorStamp::from(a.iter().zip(&d1).map(|(x, y)| x + y).collect::<Vec<_>>());
        let sc = VectorStamp::from(sb.iter().zip(&d2).map(|(x, y)| x + y).collect::<Vec<_>>());
        if sa.lt(&sb) && sb.lt(&sc) {
            prop_assert!(sa.lt(&sc));
        }
        prop_assert!(!sa.lt(&sa), "irreflexive");
    }

    /// Inline (≤8 components) and spilled (heap) `VectorStamp` storage are
    /// observationally identical: `le`, `concurrent`, `merge_from`, `Eq` and
    /// `Hash` may not depend on which representation holds the components.
    /// Lengths straddle the 8-component boundary so both regimes — and the
    /// boundary itself — are exercised.
    #[test]
    fn inline_and_spilled_representations_agree(
        len in 1usize..=12,
        seed_a in proptest::collection::vec(0u64..50, 12),
        seed_b in proptest::collection::vec(0u64..50, 12),
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a: Vec<u64> = seed_a[..len].to_vec();
        let b: Vec<u64> = seed_b[..len].to_vec();
        let ia = VectorStamp::from(a.clone());
        let ib = VectorStamp::from(b.clone());
        let sa = VectorStamp::spilled(a.clone());
        let sb = VectorStamp::spilled(b.clone());
        // Representation is as expected on each side of the boundary.
        prop_assert_eq!(ia.is_inline(), len <= 8);
        prop_assert!(!sa.is_inline());
        // Cross-representation observational equality.
        prop_assert_eq!(&ia, &sa);
        prop_assert_eq!(ia.le(&ib), sa.le(&sb));
        prop_assert_eq!(ia.le(&sb), sa.le(&ib));
        prop_assert_eq!(ia.concurrent(&ib), sa.concurrent(&sb));
        prop_assert_eq!(ia.causality(&ib), sa.causality(&sb));
        let hash = |s: &VectorStamp| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&ia), hash(&sa), "Hash must ignore representation");
        // merge_from produces identical components whichever side spilled.
        let mut m1 = ia.clone();
        m1.merge_from(&sb);
        let mut m2 = sa.clone();
        m2.merge_from(&ib);
        prop_assert_eq!(m1.as_slice(), m2.as_slice());
        prop_assert_eq!(
            m1.as_slice().to_vec(),
            a.iter().zip(&b).map(|(x, y)| *x.max(y)).collect::<Vec<_>>()
        );
    }

    /// Scalar stamps form a total order: exactly one of <, >, = holds.
    #[test]
    fn scalar_total_order(v1 in 0u64..100, p1 in 0usize..8, v2 in 0u64..100, p2 in 0usize..8) {
        let a = psn_clocks::ScalarStamp { value: v1, process: p1 };
        let b = psn_clocks::ScalarStamp { value: v2, process: p2 };
        let c = a.causality(&b);
        prop_assert_ne!(c, Causality::Concurrent, "scalars are never concurrent");
        if (v1, p1) == (v2, p2) {
            prop_assert_eq!(c, Causality::Equal);
        }
    }
}
