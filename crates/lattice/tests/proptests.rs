//! Property-based tests for lattices and interval relations.

use proptest::prelude::*;

use psn_clocks::{LogicalClock, StrobeVectorClock, VectorStamp};
use psn_lattice::{allen_relation, enumerate_lattice, History, RelationCode, StampedInterval};
use psn_sim::time::SimTime;

/// Generate a random but *valid* strobe execution: events round-robin with
/// random strobe delivery lags, yielding per-process monotone stamp
/// sequences.
fn strobed_history(n: usize, per_proc: usize, lags: &[usize]) -> History {
    let mut clocks: Vec<StrobeVectorClock> = (0..n).map(|i| StrobeVectorClock::new(i, n)).collect();
    let mut stamps: Vec<Vec<VectorStamp>> = vec![Vec::new(); n];
    let mut in_flight: Vec<(usize, usize, VectorStamp)> = Vec::new();
    let mut counter = 0usize;
    let mut lag_idx = 0usize;
    for _ in 0..per_proc {
        for p in 0..n {
            let due: Vec<_> =
                in_flight.iter().filter(|&&(at, _, _)| at <= counter).cloned().collect();
            in_flight.retain(|&(at, _, _)| at > counter);
            for (_, from, s) in due {
                for (q, c) in clocks.iter_mut().enumerate() {
                    if q != from {
                        c.on_strobe(&s);
                    }
                }
            }
            let s = clocks[p].on_local_event();
            stamps[p].push(s.clone());
            let lag = lags[lag_idx % lags.len()];
            lag_idx += 1;
            in_flight.push((counter + lag, p, s));
            counter += 1;
        }
    }
    History::new(stamps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lattice size always lies between the chain bound and the
    /// unconstrained bound.
    #[test]
    fn lattice_size_is_bracketed(
        n in 2usize..4,
        per_proc in 1usize..4,
        lags in proptest::collection::vec(0usize..12, 1..8),
    ) {
        let h = strobed_history(n, per_proc, &lags);
        let stats = enumerate_lattice(&h, 10_000_000);
        prop_assert!(!stats.truncated);
        prop_assert!(stats.states >= h.chain_cuts(), "below chain bound");
        prop_assert!(stats.states as f64 <= h.unconstrained_cuts() + 0.5, "above O(p^n)");
        prop_assert_eq!(stats.levels.iter().sum::<u64>(), stats.states);
    }

    /// The empty cut and the full cut are always consistent.
    #[test]
    fn extreme_cuts_consistent(
        n in 2usize..4,
        per_proc in 1usize..4,
        lags in proptest::collection::vec(0usize..12, 1..8),
    ) {
        let h = strobed_history(n, per_proc, &lags);
        let empty = vec![0; n];
        let full: Vec<usize> = (0..n).map(|p| h.len_of(p)).collect();
        prop_assert!(h.is_consistent(&empty));
        prop_assert!(h.is_consistent(&full));
    }

    /// can_advance from a consistent cut always produces a consistent cut.
    #[test]
    fn advancement_preserves_consistency(
        n in 2usize..4,
        per_proc in 1usize..4,
        lags in proptest::collection::vec(0usize..12, 1..8),
        steps in proptest::collection::vec(0usize..4, 0..12),
    ) {
        let h = strobed_history(n, per_proc, &lags);
        let mut cut = vec![0usize; n];
        for &s in &steps {
            let p = s % n;
            if h.can_advance(&cut, p) {
                cut[p] += 1;
                prop_assert!(h.is_consistent(&cut), "advance broke consistency at {cut:?}");
            }
        }
    }

    /// Allen relations partition: exactly one relation holds per pair, and
    /// swapping arguments yields the inverse.
    #[test]
    fn allen_partition_and_inverse(
        a0 in 0u64..50, alen in 1u64..50,
        b0 in 0u64..50, blen in 1u64..50,
    ) {
        let a = (SimTime::from_millis(a0), SimTime::from_millis(a0 + alen));
        let b = (SimTime::from_millis(b0), SimTime::from_millis(b0 + blen));
        let r = allen_relation(a, b);
        prop_assert_eq!(allen_relation(b, a), r.inverse());
        // intersects() must match raw arithmetic on half-open intervals.
        let raw = a.0 < b.1 && b.0 < a.1;
        prop_assert_eq!(r.intersects(), raw);
    }

    /// Fine-grained relation codes from real stamp pairs are always
    /// internally consistent, and their projections match the interval
    /// tests.
    #[test]
    fn relation_codes_consistent_on_generated_intervals(
        n in 2usize..4,
        per_proc in 2usize..5,
        lags in proptest::collection::vec(0usize..10, 1..8),
    ) {
        let h = strobed_history(n, per_proc, &lags);
        // Build intervals from consecutive stamp pairs at each process.
        let mut intervals: Vec<StampedInterval> = Vec::new();
        for p in 0..n {
            for w in 0..h.len_of(p).saturating_sub(1) {
                intervals.push(StampedInterval {
                    lo: h.stamps[p][w].clone(),
                    hi: h.stamps[p][w + 1].clone(),
                });
            }
        }
        for x in &intervals {
            for y in &intervals {
                let c = RelationCode::classify(x, y);
                prop_assert!(c.is_consistent(), "inconsistent code {}", c.as_str());
                prop_assert_eq!(c.surely_precedes(), x.surely_precedes(y));
                prop_assert_eq!(c.possibly_overlaps(), x.possibly_overlaps(y));
                prop_assert_eq!(c.definitely_overlaps(), x.definitely_overlaps(y));
                prop_assert_eq!(c.inverse(), RelationCode::classify(y, x));
            }
        }
    }

    /// Immediate strobe delivery (lag 0 everywhere) gives the chain.
    #[test]
    fn zero_lag_gives_chain(n in 2usize..5, per_proc in 1usize..5) {
        let h = strobed_history(n, per_proc, &[0]);
        let stats = enumerate_lattice(&h, 1_000_000);
        prop_assert_eq!(stats.states, h.chain_cuts());
        prop_assert_eq!(stats.levels.iter().copied().max().unwrap_or(0), 1);
    }
}
