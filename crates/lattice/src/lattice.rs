//! Enumerating the lattice of consistent global states.
//!
//! The consistent cuts of an execution, ordered by componentwise ≤, form a
//! distributive lattice (Mattern). Its size is the number of global states
//! a passive observer must consider: O(pⁿ) in the worst case, collapsing to
//! a chain of n·p + 1 states when the order is total. The paper's "slim
//! lattice postulate" (§4.2.4) is that strobe traffic keeps this lattice
//! lean; experiment E4 measures exactly that with this module.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::history::History;

/// Summary of an enumerated lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeStats {
    /// Number of consistent global states (cuts), including the empty and
    /// full cuts. Capped at the enumeration limit.
    pub states: u64,
    /// `levels[k]` = number of consistent cuts containing exactly k events.
    /// The maximum over k is the lattice's width (its largest antichain of
    /// the level structure).
    pub levels: Vec<u64>,
    /// True if enumeration stopped at the cap (states is a lower bound).
    ///
    /// The cap is checked only after a *whole* BFS level has been counted,
    /// so `states` may overshoot the cap by up to one full level. This
    /// slack is intentional: every recorded `levels[k]` is exact (never a
    /// partially enumerated level), which keeps width and slimness
    /// comparable across runs with different caps.
    pub truncated: bool,
}

impl LatticeStats {
    /// The widest level — how "fat" the lattice is at its widest point.
    pub fn width(&self) -> u64 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Slimness: states as a fraction of the unconstrained Πᵢ(pᵢ+1) bound
    /// (1.0 = nothing pruned; → 0 = heavily pruned).
    pub fn slimness(&self, history: &History) -> f64 {
        self.states as f64 / history.unconstrained_cuts()
    }
}

/// Enumerate all consistent cuts of `history` (BFS by total event count),
/// stopping early once more than `cap` states are found. The cap is only
/// checked between levels, so `states` may exceed `cap` by up to one full
/// level (see [`LatticeStats::truncated`]).
///
/// When every process's event count fits a packed bit field summing to at
/// most 64 bits (true for every E4 cell), cuts are encoded as single `u64`
/// keys and each BFS level is deduplicated by sort + dedup over a flat
/// vector — no hashing, no per-cut allocation, and the level buffers are
/// reused across levels. Larger histories fall back to the `HashSet`
/// frontier.
pub fn enumerate_lattice(history: &History, cap: u64) -> LatticeStats {
    let n = history.num_processes();
    let total = history.total_events();
    let mut levels = vec![0u64; total + 1];

    // Per-process field widths: bits to hold 0..=len. A process with no
    // events occupies zero bits (its component is always 0).
    let mut offsets = Vec::with_capacity(n);
    let mut total_bits = 0u32;
    for p in 0..n {
        offsets.push(total_bits);
        total_bits += u64::BITS - (history.len_of(p) as u64).leading_zeros();
    }

    let mut states: u64 = 0;
    let mut truncated = false;
    if total_bits <= u64::BITS && total < u32::MAX as usize {
        // Packed path: one u64 per cut. All stamp comparisons are hoisted
        // into a per-event threshold table so the BFS inner loop is pure
        // integer arithmetic: event k of process i can join a cut iff
        // cut[j] ≥ thr[(base[i]+k)·n + j] for every j. The threshold is the
        // length of the prefix of j's history that happens-before the event
        // (well-defined because local histories are stamp-monotone, so
        // "strictly precedes e" is downward closed along each process).
        let lens: Vec<u32> = (0..n).map(|p| history.len_of(p) as u32).collect();
        let mut base = vec![0usize; n];
        let mut acc = 0usize;
        for (p, b) in base.iter_mut().enumerate() {
            *b = acc;
            acc += history.len_of(p);
        }
        let mut thr = vec![0u32; total * n];
        for i in 0..n {
            for (k, e) in history.stamps[i].iter().enumerate() {
                let row = &mut thr[(base[i] + k) * n..][..n];
                for (j, t) in row.iter_mut().enumerate() {
                    if j != i {
                        *t = history.stamps[j].partition_point(|s| s.lt(e)) as u32;
                    }
                }
            }
        }

        let mut frontier: Vec<u64> = vec![0];
        let mut next: Vec<u64> = Vec::new();
        let mut cut = vec![0u32; n];
        for slot in &mut levels {
            if frontier.is_empty() {
                break;
            }
            *slot = frontier.len() as u64;
            states += frontier.len() as u64;
            if states > cap {
                truncated = true;
                break;
            }
            next.clear();
            for &key in &frontier {
                unpack_cut(key, &offsets, total_bits, &mut cut);
                for (i, &off) in offsets.iter().enumerate() {
                    let ci = cut[i];
                    if ci >= lens[i] {
                        continue;
                    }
                    let row = &thr[(base[i] + ci as usize) * n..][..n];
                    let mut ok = true;
                    for (j, &t) in row.iter().enumerate() {
                        ok &= cut[j] >= t;
                    }
                    if ok {
                        next.push(key + (1u64 << off));
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            std::mem::swap(&mut frontier, &mut next);
        }
    } else {
        // Fallback: explicit cut vectors in hash sets, sets reused across
        // levels.
        let mut frontier: HashSet<Vec<usize>> = HashSet::new();
        let mut next: HashSet<Vec<usize>> = HashSet::new();
        frontier.insert(vec![0; n]);
        for slot in &mut levels {
            if frontier.is_empty() {
                break;
            }
            *slot = frontier.len() as u64;
            states += frontier.len() as u64;
            if states > cap {
                truncated = true;
                break;
            }
            next.clear();
            for cut in &frontier {
                for i in 0..n {
                    if history.can_advance(cut, i) {
                        let mut succ = cut.clone();
                        succ[i] += 1;
                        next.insert(succ);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
    }

    LatticeStats { states, levels, truncated }
}

/// Decode a packed cut key into per-process event counts.
#[inline]
fn unpack_cut(key: u64, offsets: &[u32], total_bits: u32, out: &mut [u32]) {
    for (p, &off) in offsets.iter().enumerate() {
        let end = offsets.get(p + 1).copied().unwrap_or(total_bits);
        let width = end - off;
        let field = if width == 0 { 0 } else { (key >> off) & (u64::MAX >> (u64::BITS - width)) };
        out[p] = field as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_clocks::VectorStamp;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }

    #[test]
    fn independent_events_give_full_grid() {
        // 2 processes × 2 events each, no communication: 3×3 = 9 cuts.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[2, 0])], vec![vs(&[0, 1]), vs(&[0, 2])]]);
        let s = enumerate_lattice(&h, 1_000);
        assert_eq!(s.states, 9);
        assert_eq!(s.levels, vec![1, 2, 3, 2, 1]);
        assert_eq!(s.width(), 3);
        assert!(!s.truncated);
        assert!((s.slimness(&h) - 1.0).abs() < 1e-12, "nothing pruned");
    }

    #[test]
    fn totally_ordered_events_give_chain() {
        // 2 processes, each event ordered after everything before it
        // (e.g. strobes with Δ=0): a chain of total+1 cuts.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[3, 2])], vec![vs(&[1, 1]), vs(&[1, 2])]]);
        // Order: p0e0 [1,0] < p1e0 [1,1] < p1e1 [1,2] < p0e1 [3,2].
        let s = enumerate_lattice(&h, 1_000);
        assert_eq!(s.states, h.chain_cuts(), "linear order of np states");
        assert_eq!(s.width(), 1);
    }

    #[test]
    fn message_prunes_lattice() {
        // One message halves the grid corner: 3x3 grid minus cuts where the
        // receive is in but the send is out.
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 0])],
            vec![vs(&[0, 1]), vs(&[2, 2])], // second event receives p0's 2nd
        ]);
        let s = enumerate_lattice(&h, 1_000);
        // Excluded: cuts with c1=2 and c0<2: (0,2),(1,2) → 9-2=7.
        assert_eq!(s.states, 7);
        assert!(s.slimness(&h) < 1.0);
    }

    #[test]
    fn cap_truncates() {
        // 3 processes × 4 independent events = 5^3 = 125 cuts; cap at 20.
        let h = History::new(
            (0..3)
                .map(|p| {
                    (1..=4u64)
                        .map(|k| {
                            let mut v = vec![0; 3];
                            v[p] = k;
                            VectorStamp::from(v)
                        })
                        .collect()
                })
                .collect(),
        );
        let s = enumerate_lattice(&h, 20);
        assert!(s.truncated);
        assert!(s.states > 20);
        let full = enumerate_lattice(&h, 1_000_000);
        assert_eq!(full.states, 125);
        assert!(!full.truncated);
    }

    #[test]
    fn cap_overshoot_is_exactly_one_whole_level() {
        // Regression pin for the documented cap slack: the cap check runs
        // only between levels, so enumeration stops after the first level
        // that pushes the cumulative count past the cap — never mid-level.
        // 3 processes × 4 independent events: level sizes 1,3,6,10,15,…
        // cumulative 1,4,10,20,35. With cap = 20 the k=3 level lands
        // exactly on the cap (not over), so k=4 is still enumerated and
        // counted in full: states = 35, an overshoot of 15 = |level 4|.
        let h = History::new(
            (0..3)
                .map(|p| {
                    (1..=4u64)
                        .map(|k| {
                            let mut v = vec![0; 3];
                            v[p] = k;
                            VectorStamp::from(v)
                        })
                        .collect()
                })
                .collect(),
        );
        let s = enumerate_lattice(&h, 20);
        assert!(s.truncated);
        assert_eq!(s.states, 35, "whole k=4 level counted before stopping");
        assert_eq!(&s.levels[..5], &[1, 3, 6, 10, 15], "every recorded level is exact");
        assert!(s.levels[5..].iter().all(|&c| c == 0), "nothing past the stop level");
    }

    #[test]
    fn packed_and_fallback_paths_agree() {
        // A history big enough to exceed 64 packed bits takes the HashSet
        // fallback; the same causal structure shrunk under 64 bits takes
        // the packed path. Cross-check the packed path against the
        // fallback on a history where both could apply by comparing with
        // per-level expectations computed independently.
        // 13 processes × 2 events each needs 13·2 = 26 bits (packed);
        // 20 processes × 1 event needs 20 bits (packed, 1-bit fields);
        // 22 processes × 7 events needs 22·3 = 66 bits (fallback).
        let grid = |n: usize, p: u64| {
            History::new(
                (0..n)
                    .map(|proc| {
                        (1..=p)
                            .map(|k| {
                                let mut v = vec![0; n];
                                v[proc] = k;
                                VectorStamp::from(v)
                            })
                            .collect()
                    })
                    .collect(),
            )
        };
        // Fallback history: total cuts 8^22 is astronomical — cap tightly
        // and compare level prefixes against the binomial-convolution
        // ground truth instead of full enumeration.
        let fb = enumerate_lattice(&grid(22, 7), 500);
        assert!(fb.truncated);
        // Unconstrained grid levels: level 1 = n, level 2 = n + C(n,2).
        assert_eq!(&fb.levels[..3], &[1, 22, 22 + 21 * 22 / 2]);
        // Packed history, same structural checks plus exact totals.
        let pk = enumerate_lattice(&grid(13, 2), u64::MAX);
        assert!(!pk.truncated);
        assert_eq!(pk.states, 3u64.pow(13), "independent 2-event grid: 3^13 cuts");
        assert_eq!(&pk.levels[..3], &[1, 13, 13 + 12 * 13 / 2]);
        let pk1 = enumerate_lattice(&grid(20, 1), u64::MAX);
        assert_eq!(pk1.states, 2u64.pow(20), "independent 1-event grid: 2^20 cuts");
    }

    #[test]
    fn empty_history_has_one_state() {
        let h = History::new(vec![vec![], vec![]]);
        let s = enumerate_lattice(&h, 10);
        assert_eq!(s.states, 1);
        assert_eq!(s.levels, vec![1]);
    }

    #[test]
    fn levels_sum_to_states() {
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 1])],
            vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[2, 3])],
        ]);
        let s = enumerate_lattice(&h, 10_000);
        assert_eq!(s.levels.iter().sum::<u64>(), s.states);
    }
}
