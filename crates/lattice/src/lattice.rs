//! Enumerating the lattice of consistent global states.
//!
//! The consistent cuts of an execution, ordered by componentwise ≤, form a
//! distributive lattice (Mattern). Its size is the number of global states
//! a passive observer must consider: O(pⁿ) in the worst case, collapsing to
//! a chain of n·p + 1 states when the order is total. The paper's "slim
//! lattice postulate" (§4.2.4) is that strobe traffic keeps this lattice
//! lean; experiment E4 measures exactly that with this module.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::history::History;

/// Summary of an enumerated lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeStats {
    /// Number of consistent global states (cuts), including the empty and
    /// full cuts. Capped at the enumeration limit.
    pub states: u64,
    /// `levels[k]` = number of consistent cuts containing exactly k events.
    /// The maximum over k is the lattice's width (its largest antichain of
    /// the level structure).
    pub levels: Vec<u64>,
    /// True if enumeration stopped at the cap (states is a lower bound).
    pub truncated: bool,
}

impl LatticeStats {
    /// The widest level — how "fat" the lattice is at its widest point.
    pub fn width(&self) -> u64 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Slimness: states as a fraction of the unconstrained Πᵢ(pᵢ+1) bound
    /// (1.0 = nothing pruned; → 0 = heavily pruned).
    pub fn slimness(&self, history: &History) -> f64 {
        self.states as f64 / history.unconstrained_cuts()
    }
}

/// Enumerate all consistent cuts of `history` (BFS by total event count),
/// stopping early if more than `cap` states are found.
pub fn enumerate_lattice(history: &History, cap: u64) -> LatticeStats {
    let n = history.num_processes();
    let total = history.total_events();
    let mut levels = vec![0u64; total + 1];
    let mut states: u64 = 0;
    let mut truncated = false;

    let mut frontier: HashSet<Vec<usize>> = HashSet::new();
    frontier.insert(vec![0; n]);

    for slot in &mut levels {
        if frontier.is_empty() {
            break;
        }
        *slot = frontier.len() as u64;
        states += frontier.len() as u64;
        if states > cap {
            truncated = true;
            break;
        }
        let mut next: HashSet<Vec<usize>> = HashSet::new();
        for cut in &frontier {
            for i in 0..n {
                if history.can_advance(cut, i) {
                    let mut succ = cut.clone();
                    succ[i] += 1;
                    next.insert(succ);
                }
            }
        }
        frontier = next;
    }

    LatticeStats { states, levels, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_clocks::VectorStamp;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp(v.to_vec())
    }

    #[test]
    fn independent_events_give_full_grid() {
        // 2 processes × 2 events each, no communication: 3×3 = 9 cuts.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[2, 0])], vec![vs(&[0, 1]), vs(&[0, 2])]]);
        let s = enumerate_lattice(&h, 1_000);
        assert_eq!(s.states, 9);
        assert_eq!(s.levels, vec![1, 2, 3, 2, 1]);
        assert_eq!(s.width(), 3);
        assert!(!s.truncated);
        assert!((s.slimness(&h) - 1.0).abs() < 1e-12, "nothing pruned");
    }

    #[test]
    fn totally_ordered_events_give_chain() {
        // 2 processes, each event ordered after everything before it
        // (e.g. strobes with Δ=0): a chain of total+1 cuts.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[3, 2])], vec![vs(&[1, 1]), vs(&[1, 2])]]);
        // Order: p0e0 [1,0] < p1e0 [1,1] < p1e1 [1,2] < p0e1 [3,2].
        let s = enumerate_lattice(&h, 1_000);
        assert_eq!(s.states, h.chain_cuts(), "linear order of np states");
        assert_eq!(s.width(), 1);
    }

    #[test]
    fn message_prunes_lattice() {
        // One message halves the grid corner: 3x3 grid minus cuts where the
        // receive is in but the send is out.
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 0])],
            vec![vs(&[0, 1]), vs(&[2, 2])], // second event receives p0's 2nd
        ]);
        let s = enumerate_lattice(&h, 1_000);
        // Excluded: cuts with c1=2 and c0<2: (0,2),(1,2) → 9-2=7.
        assert_eq!(s.states, 7);
        assert!(s.slimness(&h) < 1.0);
    }

    #[test]
    fn cap_truncates() {
        // 3 processes × 4 independent events = 5^3 = 125 cuts; cap at 20.
        let h = History::new(
            (0..3)
                .map(|p| {
                    (1..=4u64)
                        .map(|k| {
                            let mut v = vec![0; 3];
                            v[p] = k;
                            VectorStamp(v)
                        })
                        .collect()
                })
                .collect(),
        );
        let s = enumerate_lattice(&h, 20);
        assert!(s.truncated);
        assert!(s.states > 20);
        let full = enumerate_lattice(&h, 1_000_000);
        assert_eq!(full.states, 125);
        assert!(!full.truncated);
    }

    #[test]
    fn empty_history_has_one_state() {
        let h = History::new(vec![vec![], vec![]]);
        let s = enumerate_lattice(&h, 10);
        assert_eq!(s.states, 1);
        assert_eq!(s.levels, vec![1]);
    }

    #[test]
    fn levels_sum_to_states() {
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 1])],
            vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[2, 3])],
        ]);
        let s = enumerate_lattice(&h, 10_000);
        assert_eq!(s.levels.iter().sum::<u64>(), s.states);
    }
}
