//! Fine-grained causality-based interval relations (paper §3.1.1.b.i).
//!
//! "Refining these further, a complete suite of 40 orthogonal
//! relationships among time intervals at two different physical locations
//! (see [7, 8, 20, 21]) was used to specify causality-based relationships
//! among the local values that held during the local time intervals."
//!
//! Kshemkalyani's interval theory classifies a pair of intervals
//! (X at location i, Y at location j) by the causality relations between
//! their four bounding-event pairs: lo(X)↔lo(Y), lo(X)↔hi(Y),
//! hi(X)↔lo(Y), hi(X)↔hi(Y). Each pair is `Before` (→), `After` (←) or
//! `Concurrent` (‖) under the vector-stamp partial order, giving a
//! **relation code** of four trits. Monotonicity of local histories
//! (lo ≤ hi at both ends) makes only a subset of the 3⁴ = 81 codes
//! *achievable* — the dense classification the paper's citation counts 40
//! orthogonal relations in (our code space collapses a few of their
//! distinctions that need message-chain information beyond stamp order).
//! The coarse `Possibly`/`Definitely` overlap tests used by the detectors
//! are projections of this code ([`RelationCode::possibly_overlaps`],
//! [`RelationCode::definitely_overlaps`]).

use serde::{Deserialize, Serialize};

use crate::intervals::StampedInterval;
use psn_clocks::{Causality, Timestamp, VectorStamp};

/// The causality relation of one bounding-event pair, collapsed to three
/// values (Equal counts as Concurrent: neither strictly precedes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trit {
    /// The X-side event strictly precedes the Y-side event.
    Before,
    /// The Y-side event strictly precedes the X-side event.
    After,
    /// Neither precedes (concurrent or equal stamps).
    Concurrent,
}

fn trit(a: &VectorStamp, b: &VectorStamp) -> Trit {
    match a.causality(b) {
        Causality::Before => Trit::Before,
        Causality::After => Trit::After,
        Causality::Concurrent | Causality::Equal => Trit::Concurrent,
    }
}

/// The fine-grained relation code of an interval pair (X, Y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationCode {
    /// lo(X) vs lo(Y).
    pub lo_lo: Trit,
    /// lo(X) vs hi(Y).
    pub lo_hi: Trit,
    /// hi(X) vs lo(Y).
    pub hi_lo: Trit,
    /// hi(X) vs hi(Y).
    pub hi_hi: Trit,
}

impl RelationCode {
    /// Classify the pair (X, Y).
    pub fn classify(x: &StampedInterval, y: &StampedInterval) -> RelationCode {
        RelationCode {
            lo_lo: trit(&x.lo, &y.lo),
            lo_hi: trit(&x.lo, &y.hi),
            hi_lo: trit(&x.hi, &y.lo),
            hi_hi: trit(&x.hi, &y.hi),
        }
    }

    /// The code with X and Y swapped.
    pub fn inverse(self) -> RelationCode {
        let flip = |t: Trit| match t {
            Trit::Before => Trit::After,
            Trit::After => Trit::Before,
            Trit::Concurrent => Trit::Concurrent,
        };
        RelationCode {
            lo_lo: flip(self.lo_lo),
            lo_hi: flip(self.hi_lo),
            hi_lo: flip(self.lo_hi),
            hi_hi: flip(self.hi_hi),
        }
    }

    /// X surely precedes Y (projection: hi(X) → lo(Y)).
    pub fn surely_precedes(self) -> bool {
        self.hi_lo == Trit::Before
    }

    /// The `Possibly`-overlap projection: neither surely precedes.
    pub fn possibly_overlaps(self) -> bool {
        self.hi_lo != Trit::Before && {
            // Y surely precedes X is lo(X) after hi(Y).
            self.lo_hi != Trit::After
        }
    }

    /// The `Definitely`-overlap projection: each open precedes the other's
    /// close.
    pub fn definitely_overlaps(self) -> bool {
        self.lo_hi == Trit::Before && self.hi_lo == Trit::After
    }

    /// A compact display string, e.g. `→‖←‖`.
    pub fn as_str(self) -> String {
        [self.lo_lo, self.lo_hi, self.hi_lo, self.hi_hi]
            .iter()
            .map(|t| match t {
                Trit::Before => '→',
                Trit::After => '←',
                Trit::Concurrent => '‖',
            })
            .collect()
    }

    /// Is this code *achievable* by real intervals? Necessary internal
    /// consistency constraints from the monotonicity lo ≤ hi at both
    /// intervals, under a partial order:
    ///
    /// 1. hi(X) → lo(Y) forces every other pair `Before`;
    /// 2. hi(Y) → lo(X) forces every other pair `After`;
    /// 3. lo(X) → lo(Y) forces lo(X) → hi(Y);
    /// 4. lo(Y) → lo(X) forces lo(Y) → hi(X);
    /// 5. hi(X) → hi(Y) forces lo(X) → hi(Y);
    /// 6. hi(Y) → hi(X) forces lo(Y) → hi(X).
    pub fn is_consistent(self) -> bool {
        use Trit::*;
        if self.hi_lo == Before
            && (self.lo_lo != Before || self.lo_hi != Before || self.hi_hi != Before)
        {
            return false;
        }
        if self.lo_hi == After
            && (self.lo_lo != After || self.hi_lo != After || self.hi_hi != After)
        {
            return false;
        }
        if self.lo_lo == Before && self.lo_hi != Before {
            return false;
        }
        if self.lo_lo == After && self.hi_lo != After {
            return false;
        }
        if self.hi_hi == Before && self.lo_hi != Before {
            return false;
        }
        if self.hi_hi == After && self.hi_lo != After {
            return false;
        }
        true
    }
}

/// Enumerate the distinct relation codes occurring among all interval
/// pairs (one from `xs`, one from `ys`).
pub fn distinct_codes(xs: &[StampedInterval], ys: &[StampedInterval]) -> Vec<RelationCode> {
    let mut out: Vec<RelationCode> = Vec::new();
    for x in xs {
        for y in ys {
            let c = RelationCode::classify(x, y);
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }
    fn iv(lo: &[u64], hi: &[u64]) -> StampedInterval {
        StampedInterval { lo: vs(lo), hi: vs(hi) }
    }

    #[test]
    fn fully_ordered_pair() {
        let x = iv(&[1, 0], &[2, 0]);
        let y = iv(&[2, 1], &[2, 2]); // y's open saw x's close
        let c = RelationCode::classify(&x, &y);
        assert_eq!(c.hi_lo, Trit::Before);
        assert!(c.surely_precedes());
        assert!(!c.possibly_overlaps());
        assert!(c.is_consistent());
        assert_eq!(c.as_str(), "→→→→");
    }

    #[test]
    fn fully_concurrent_pair() {
        let x = iv(&[1, 0], &[2, 0]);
        let y = iv(&[0, 1], &[0, 2]);
        let c = RelationCode::classify(&x, &y);
        assert_eq!(c.as_str(), "‖‖‖‖");
        assert!(c.possibly_overlaps());
        assert!(!c.definitely_overlaps());
        assert!(c.is_consistent());
    }

    #[test]
    fn definite_overlap_code() {
        // Cross-knowledge both ways.
        let x = iv(&[1, 0], &[3, 2]);
        let y = iv(&[1, 1], &[3, 3]);
        let c = RelationCode::classify(&x, &y);
        assert!(c.definitely_overlaps());
        assert!(c.possibly_overlaps(), "definite implies possible");
        assert_eq!(c.lo_hi, Trit::Before);
        assert_eq!(c.hi_lo, Trit::After);
    }

    #[test]
    fn inverse_swaps_roles() {
        let x = iv(&[1, 0], &[2, 0]);
        let y = iv(&[2, 1], &[2, 2]);
        let c = RelationCode::classify(&x, &y);
        let ci = RelationCode::classify(&y, &x);
        assert_eq!(c.inverse(), ci);
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    fn projections_agree_with_stamped_interval() {
        let pairs = [
            (iv(&[1, 0], &[2, 0]), iv(&[2, 1], &[2, 2])),
            (iv(&[1, 0], &[2, 0]), iv(&[0, 1], &[0, 2])),
            (iv(&[1, 0], &[3, 2]), iv(&[1, 1], &[3, 3])),
            (iv(&[1, 1], &[3, 3]), iv(&[1, 0], &[3, 2])),
        ];
        for (x, y) in &pairs {
            let c = RelationCode::classify(x, y);
            assert_eq!(c.surely_precedes(), x.surely_precedes(y));
            assert_eq!(c.possibly_overlaps(), x.possibly_overlaps(y));
            assert_eq!(c.definitely_overlaps(), x.definitely_overlaps(y));
        }
    }

    #[test]
    fn achievable_code_count_is_a_strict_subset_of_81() {
        // Brute-force over random-ish interval pairs in a 2-process stamp
        // space: every observed code must be consistent, and the count of
        // *consistent* codes is well below the 81 raw combinations —
        // the "orthogonal relationships" are a constrained family.
        use Trit::*;
        let all = [Before, After, Concurrent];
        let mut consistent = 0;
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    for &d in &all {
                        let code = RelationCode { lo_lo: a, lo_hi: b, hi_lo: c, hi_hi: d };
                        if code.is_consistent() {
                            consistent += 1;
                        }
                    }
                }
            }
        }
        assert!(consistent < 81, "constraints must prune");
        assert!(consistent >= 13, "at least the Allen-like core remains, got {consistent}");
    }

    #[test]
    fn observed_codes_are_always_consistent() {
        // Generate interval pairs from every monotone stamp combination in
        // a small grid and verify classify() never produces an
        // inconsistent code.
        let grid: Vec<VectorStamp> =
            (0..3u64).flat_map(|a| (0..3u64).map(move |b| VectorStamp::from(vec![a, b]))).collect();
        let mut seen = std::collections::HashSet::new();
        for lo_x in &grid {
            for hi_x in &grid {
                if !lo_x.le(hi_x) {
                    continue;
                }
                for lo_y in &grid {
                    for hi_y in &grid {
                        if !lo_y.le(hi_y) {
                            continue;
                        }
                        let c = RelationCode::classify(
                            &StampedInterval { lo: lo_x.clone(), hi: hi_x.clone() },
                            &StampedInterval { lo: lo_y.clone(), hi: hi_y.clone() },
                        );
                        assert!(c.is_consistent(), "inconsistent observed code {}", c.as_str());
                        seen.insert(c);
                    }
                }
            }
        }
        assert!(seen.len() > 10, "a rich family of codes occurs, got {}", seen.len());
    }

    #[test]
    fn distinct_codes_deduplicates() {
        let xs = vec![iv(&[1, 0], &[2, 0]), iv(&[3, 0], &[4, 0])];
        let ys = vec![iv(&[0, 1], &[0, 2])];
        let codes = distinct_codes(&xs, &ys);
        assert_eq!(codes.len(), 1, "both pairs are fully concurrent");
    }
}
