//! Consistent snapshots (Appendix A, vector-time use 2.d: "taking
//! efficient consistent snapshots of a system").
//!
//! Given a vector-stamped history and a *requested* cut (e.g. "everything
//! each process had done by wall-clock noon", which need not be
//! consistent), compute the closest consistent cuts around it:
//!
//! - [`max_consistent_cut_within`] — the largest consistent cut ≤ the
//!   request (the snapshot a Chandy–Lamport-style algorithm would settle
//!   on by discarding post-marker events);
//! - [`min_consistent_cut_containing`] — the smallest consistent cut ≥ the
//!   request (include every requested event plus the causal closure).
//!
//! Both are well-defined because consistent cuts are closed under
//! componentwise min and max (the lattice property).

use crate::history::History;

/// The largest consistent cut with `cut[p] ≤ bound[p]` for all p.
///
/// Computed by repeatedly retracting any process whose last included event
/// depends on an excluded event; terminates because cuts only shrink.
pub fn max_consistent_cut_within(history: &History, bound: &[usize]) -> Vec<usize> {
    let n = history.num_processes();
    assert_eq!(bound.len(), n);
    let mut cut: Vec<usize> = (0..n).map(|p| bound[p].min(history.len_of(p))).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            while cut[i] > 0 {
                // The last included event of i must not depend on any
                // excluded event of any j.
                let last = &history.stamps[i][cut[i] - 1];
                let violated = (0..n).any(|j| {
                    j != i && cut[j] < history.len_of(j) && history.stamps[j][cut[j]].lt(last)
                });
                if violated {
                    cut[i] -= 1;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(history.is_consistent(&cut));
    cut
}

/// The smallest consistent cut with `cut[p] ≥ want[p]` for all p: the
/// causal closure of the requested events.
pub fn min_consistent_cut_containing(history: &History, want: &[usize]) -> Vec<usize> {
    let n = history.num_processes();
    assert_eq!(want.len(), n);
    let mut cut: Vec<usize> = (0..n).map(|p| want[p].min(history.len_of(p))).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if cut[i] == 0 {
                continue;
            }
            let last = &history.stamps[i][cut[i] - 1];
            for (j, cj) in cut.iter_mut().enumerate() {
                if j == i {
                    continue;
                }
                // Include every event of j that happens-before `last`.
                while *cj < history.len_of(j) && history.stamps[j][*cj].lt(last) {
                    *cj += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(history.is_consistent(&cut));
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_clocks::VectorStamp;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }

    /// p0: e1 [1,0], e2 (send) [2,0]; p1: f1 [0,1], f2 (receive of e2) [2,2].
    fn messaged() -> History {
        History::new(vec![vec![vs(&[1, 0]), vs(&[2, 0])], vec![vs(&[0, 1]), vs(&[2, 2])]])
    }

    #[test]
    fn already_consistent_bound_is_returned() {
        let h = messaged();
        assert_eq!(max_consistent_cut_within(&h, &[1, 1]), vec![1, 1]);
        assert_eq!(max_consistent_cut_within(&h, &[2, 2]), vec![2, 2]);
        assert_eq!(max_consistent_cut_within(&h, &[0, 0]), vec![0, 0]);
    }

    #[test]
    fn retracts_orphan_receive() {
        // Requesting p1's receive without p0's send must drop the receive.
        let h = messaged();
        assert_eq!(max_consistent_cut_within(&h, &[0, 2]), vec![0, 1]);
        assert_eq!(max_consistent_cut_within(&h, &[1, 2]), vec![1, 1]);
    }

    #[test]
    fn closure_pulls_in_the_send() {
        // Including the receive requires the send (and everything local
        // before it).
        let h = messaged();
        assert_eq!(min_consistent_cut_containing(&h, &[0, 2]), vec![2, 2]);
        assert_eq!(min_consistent_cut_containing(&h, &[0, 1]), vec![0, 1]);
    }

    #[test]
    fn snapshot_brackets_the_request() {
        let h = messaged();
        for b0 in 0..=2usize {
            for b1 in 0..=2usize {
                let lo = max_consistent_cut_within(&h, &[b0, b1]);
                let hi = min_consistent_cut_containing(&h, &[b0, b1]);
                assert!(h.is_consistent(&lo));
                assert!(h.is_consistent(&hi));
                for p in 0..2 {
                    assert!(lo[p] <= [b0, b1][p]);
                    assert!(hi[p] >= [b0, b1][p].min(h.len_of(p)));
                    assert!(lo[p] <= hi[p]);
                }
            }
        }
    }

    #[test]
    fn chain_history_snapshots_exactly() {
        // Fully ordered history: every prefix is consistent only along the
        // chain; requesting (2, 0) must retract to wherever the chain
        // allows.
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 2])], // p0's 2nd event saw both of p1's
            vec![vs(&[1, 1]), vs(&[1, 2])],
        ]);
        // p0's 2nd event needs both p1 events.
        assert_eq!(max_consistent_cut_within(&h, &[2, 0]), vec![1, 0]);
        assert_eq!(min_consistent_cut_containing(&h, &[2, 0]), vec![2, 2]);
    }

    #[test]
    fn maximality_and_minimality() {
        // The returned cuts are extremal: advancing max (resp. retracting
        // min) within the bound breaks consistency or the bound.
        let h = messaged();
        let bound = [1usize, 2];
        let lo = max_consistent_cut_within(&h, &bound);
        for p in 0..2 {
            if lo[p] < bound[p].min(h.len_of(p)) {
                let mut bigger = lo.clone();
                bigger[p] += 1;
                assert!(!h.is_consistent(&bigger), "max cut must be maximal at process {p}");
            }
        }
    }
}
