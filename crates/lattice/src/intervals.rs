//! Interval relations.
//!
//! Two layers, matching the paper's two specification families (§3.1):
//!
//! - **Allen's 13 relations** on real-time intervals — the relative-timing
//!   relations of §3.1.1.a.ii ("X before Y, X overlaps Y, …"), applicable
//!   when a linear time base exists;
//! - **causality-based interval tests** on vector-stamped intervals — the
//!   partial-order analogues used by the strobe/causal detectors: can two
//!   intervals have overlapped instantaneously? does one surely precede the
//!   other?

use serde::{Deserialize, Serialize};

use psn_clocks::VectorStamp;
use psn_sim::time::SimTime;

/// Allen's interval algebra: the 13 basic relations between two real-time
/// intervals `[a.0, a.1)` and `[b.0, b.1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Allen {
    /// a ends before b starts.
    Before,
    /// a ends exactly where b starts.
    Meets,
    /// a starts first, they overlap, b ends last.
    Overlaps,
    /// same start, a ends first.
    Starts,
    /// a strictly inside b.
    During,
    /// same end, a starts last.
    Finishes,
    /// identical intervals.
    Equal,
    /// inverse of Before.
    After,
    /// inverse of Meets.
    MetBy,
    /// inverse of Overlaps.
    OverlappedBy,
    /// inverse of Starts.
    StartedBy,
    /// inverse of During.
    Contains,
    /// inverse of Finishes.
    FinishedBy,
}

impl Allen {
    /// The inverse relation (swap the two intervals).
    pub fn inverse(self) -> Allen {
        use Allen::*;
        match self {
            Before => After,
            After => Before,
            Meets => MetBy,
            MetBy => Meets,
            Overlaps => OverlappedBy,
            OverlappedBy => Overlaps,
            Starts => StartedBy,
            StartedBy => Starts,
            During => Contains,
            Contains => During,
            Finishes => FinishedBy,
            FinishedBy => Finishes,
            Equal => Equal,
        }
    }

    /// Do the two intervals share at least one instant under this relation?
    pub fn intersects(self) -> bool {
        !matches!(self, Allen::Before | Allen::After | Allen::Meets | Allen::MetBy)
    }
}

/// Classify two half-open real-time intervals. Both must be non-empty
/// (`start < end`); panics otherwise.
pub fn allen_relation(a: (SimTime, SimTime), b: (SimTime, SimTime)) -> Allen {
    assert!(a.0 < a.1 && b.0 < b.1, "intervals must be non-empty");
    use core::cmp::Ordering::*;
    match (a.0.cmp(&b.0), a.1.cmp(&b.1)) {
        (Equal, Equal) => Allen::Equal,
        (Equal, Less) => Allen::Starts,
        (Equal, Greater) => Allen::StartedBy,
        (Less, Equal) => Allen::FinishedBy,
        (Greater, Equal) => Allen::Finishes,
        (Less, Less) => {
            if a.1 < b.0 {
                Allen::Before
            } else if a.1 == b.0 {
                Allen::Meets
            } else {
                Allen::Overlaps
            }
        }
        (Greater, Greater) => {
            if b.1 < a.0 {
                Allen::After
            } else if b.1 == a.0 {
                Allen::MetBy
            } else {
                Allen::OverlappedBy
            }
        }
        (Less, Greater) => Allen::Contains,
        (Greater, Less) => Allen::During,
    }
}

/// A vector-stamped interval at one process: the stamps of its bounding
/// events (`lo` = the event that opened it, `hi` = the event that closed
/// it; an interval still open at run end uses the process's final stamp).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StampedInterval {
    /// Stamp at the interval's opening event.
    pub lo: VectorStamp,
    /// Stamp at (or up to) the interval's closing event.
    pub hi: VectorStamp,
}

impl StampedInterval {
    /// Does X surely precede Y in the partial order: X's close
    /// happened-before Y's open?
    pub fn surely_precedes(&self, other: &StampedInterval) -> bool {
        self.hi.lt(&other.lo)
    }

    /// Could X and Y have overlapped in some consistent observation?
    /// (Neither surely precedes the other — the `Possibly`-flavoured
    /// overlap test the strobe-vector detector uses.)
    pub fn possibly_overlaps(&self, other: &StampedInterval) -> bool {
        !self.surely_precedes(other) && !other.surely_precedes(self)
    }

    /// Do X and Y *definitely* overlap: each interval's open
    /// happened-before the other's close? (The `Definitely`-flavoured
    /// test: every consistent observer sees a common instant.)
    pub fn definitely_overlaps(&self, other: &StampedInterval) -> bool {
        self.lo.lt(&other.hi) && other.lo.lt(&self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> (SimTime, SimTime) {
        (SimTime::from_millis(a), SimTime::from_millis(b))
    }

    #[test]
    fn all_thirteen_relations() {
        assert_eq!(allen_relation(iv(0, 1), iv(2, 3)), Allen::Before);
        assert_eq!(allen_relation(iv(2, 3), iv(0, 1)), Allen::After);
        assert_eq!(allen_relation(iv(0, 2), iv(2, 3)), Allen::Meets);
        assert_eq!(allen_relation(iv(2, 3), iv(0, 2)), Allen::MetBy);
        assert_eq!(allen_relation(iv(0, 2), iv(1, 3)), Allen::Overlaps);
        assert_eq!(allen_relation(iv(1, 3), iv(0, 2)), Allen::OverlappedBy);
        assert_eq!(allen_relation(iv(0, 1), iv(0, 2)), Allen::Starts);
        assert_eq!(allen_relation(iv(0, 2), iv(0, 1)), Allen::StartedBy);
        assert_eq!(allen_relation(iv(1, 2), iv(0, 3)), Allen::During);
        assert_eq!(allen_relation(iv(0, 3), iv(1, 2)), Allen::Contains);
        assert_eq!(allen_relation(iv(1, 2), iv(0, 2)), Allen::Finishes);
        assert_eq!(allen_relation(iv(0, 2), iv(1, 2)), Allen::FinishedBy);
        assert_eq!(allen_relation(iv(0, 1), iv(0, 1)), Allen::Equal);
    }

    #[test]
    fn inverse_is_involutive_and_correct() {
        use Allen::*;
        for r in [
            Before,
            Meets,
            Overlaps,
            Starts,
            During,
            Finishes,
            Equal,
            After,
            MetBy,
            OverlappedBy,
            StartedBy,
            Contains,
            FinishedBy,
        ] {
            assert_eq!(r.inverse().inverse(), r);
        }
        // Swapping arguments yields the inverse.
        let (a, b) = (iv(0, 2), iv(1, 3));
        assert_eq!(allen_relation(a, b).inverse(), allen_relation(b, a));
    }

    #[test]
    fn intersects_matches_set_semantics() {
        assert!(!allen_relation(iv(0, 1), iv(2, 3)).intersects());
        assert!(!allen_relation(iv(0, 2), iv(2, 3)).intersects(), "half-open: meets is empty");
        assert!(allen_relation(iv(0, 2), iv(1, 3)).intersects());
        assert!(allen_relation(iv(1, 2), iv(0, 3)).intersects());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        let _ = allen_relation(iv(1, 1), iv(0, 2));
    }

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }

    #[test]
    fn surely_precedes_via_stamps() {
        // X at p0 closed at [2,0]; Y at p1 opened at [2,1] (saw X's close).
        let x = StampedInterval { lo: vs(&[1, 0]), hi: vs(&[2, 0]) };
        let y = StampedInterval { lo: vs(&[2, 1]), hi: vs(&[2, 2]) };
        assert!(x.surely_precedes(&y));
        assert!(!y.surely_precedes(&x));
        assert!(!x.possibly_overlaps(&y));
    }

    #[test]
    fn concurrent_intervals_possibly_overlap() {
        let x = StampedInterval { lo: vs(&[1, 0]), hi: vs(&[2, 0]) };
        let y = StampedInterval { lo: vs(&[0, 1]), hi: vs(&[0, 2]) };
        assert!(x.possibly_overlaps(&y));
        assert!(!x.definitely_overlaps(&y), "no information forcing overlap");
    }

    #[test]
    fn definite_overlap_requires_cross_knowledge() {
        // X = [ [1,0], [3,2] ]: X's close saw Y's open.
        // Y = [ [1,1], [3,3] ]: Y's open saw X's open, Y's close saw X's close.
        let x = StampedInterval { lo: vs(&[1, 0]), hi: vs(&[3, 2]) };
        let y = StampedInterval { lo: vs(&[1, 1]), hi: vs(&[3, 3]) };
        assert!(x.definitely_overlaps(&y));
        assert!(x.possibly_overlaps(&y), "definite implies possible");
    }
}
