//! Streaming, bounded-memory maintenance of the consistent-cut lattice.
//!
//! [`crate::lattice::enumerate_lattice`] rebuilds the whole lattice from a
//! sealed history; this module maintains the same BFS **level frontier**
//! incrementally as events arrive, so a live observer (`psn-serve`, E15)
//! holds only an O(window) antichain instead of the O(trace) log:
//!
//! - [`StreamLattice`] — the incremental level-synchronous BFS. Events are
//!   appended per process ([`StreamLattice::push`]); the caller marks a
//!   **stable prefix** per process ([`StreamLattice::mark_stable`]) — events
//!   guaranteed to happen-before every event still in flight (under the
//!   strobe discipline, anything sensed more than 2Δ before the newest
//!   arrival qualifies: its strobe has reached every process, so every later
//!   sense event dominates it). The frontier advances one level at a time
//!   while the next level is *final*: a level `L+1` cut could gain a
//!   not-yet-pushed member only via a cut at level `L` that excludes **no**
//!   stable event, and any such cut sits at level ≥ Σ stable — so levels
//!   below Σ stable are complete and may be counted exactly as the offline
//!   enumeration would ([`StreamLattice::seal`] is bit-identical to
//!   [`crate::lattice::enumerate_lattice`], tested).
//! - **Δ-bound garbage collection**: once every frontier cut includes an
//!   event, no future cut can exclude it (cuts only grow along the BFS), so
//!   its stamp can never participate in a consistency test again — the
//!   event retires and its stamp is dropped. Retirement plus the stability
//!   watermark is exactly the "delivered-stamp dominance + Δ/ε bound"
//!   pruning of Yang et al.
//! - The per-level expansion reuses the PR-2 machinery: when the live
//!   *window* (un-retired events) packs into 64 bits the cuts are single
//!   `u64` keys deduplicated by sort + dedup with a hoisted threshold
//!   table; wider windows fall back to the `HashSet` frontier
//!   ([`packed_window_fits`] tells a caller which regime a shape lands in).
//! - [`AdvancementFrontier`] — the streaming form of the Garg–Waldecker
//!   interval advancement used for conjunctive `Possibly`/`Definitely`:
//!   per-conjunct queues of closed stamped intervals, advanced exactly as
//!   the offline loop would but **pausing** whenever a conjunct's queue is
//!   exhausted (the missing interval is still open or still in flight), and
//!   garbage-collected under the same dominance rule — a queued interval
//!   whose close happens-before everything a starved peer can still produce
//!   would be advanced past without an occurrence anyway, so it is dropped
//!   early ([`AdvancementFrontier::prune`]).

use std::collections::HashSet;

use psn_clocks::VectorStamp;
use psn_sim::time::SimTime;

use crate::intervals::StampedInterval;
use crate::lattice::LatticeStats;

/// Does a live window of `window_lens[p]` un-retired events per process fit
/// the packed single-`u64` cut encoding (each process takes enough bits to
/// hold `0..=len`)? Mirrors the offline enumeration's packing rule.
pub fn packed_window_fits(window_lens: &[usize]) -> bool {
    let mut total_bits = 0u32;
    for &len in window_lens {
        total_bits += u64::BITS - (len as u64).leading_zeros();
    }
    total_bits <= u64::BITS
}

/// Incremental BFS over the lattice of consistent cuts with Δ-bound GC.
///
/// Feed events in local order with [`push`](Self::push), declare stability
/// with [`mark_stable`](Self::mark_stable), and call
/// [`settle`](Self::settle) to advance the frontier and retire dominated
/// events. [`seal`](Self::seal) finishes the enumeration and returns stats
/// bit-identical to [`crate::lattice::enumerate_lattice`] on the same
/// history and cap.
#[derive(Debug, Clone)]
pub struct StreamLattice {
    n: usize,
    /// Un-retired stamps per process (`windows[p][0]` is absolute event
    /// `base[p]`).
    windows: Vec<Vec<VectorStamp>>,
    /// Retired (GC'd) event counts per process.
    base: Vec<usize>,
    /// Absolute per-process counts known final and dominated by everything
    /// still in flight.
    stable: Vec<usize>,
    /// Total events pushed per process.
    pushed: Vec<usize>,
    /// Current BFS level (absolute event count of every frontier cut).
    level: usize,
    /// Cuts at `level`, window-relative, sorted lexicographically.
    frontier: Vec<Vec<u32>>,
    /// `levels[k]` = cuts with k events, for levels counted so far.
    levels: Vec<u64>,
    states: u64,
    cap: u64,
    truncated: bool,
    mem_high_water_cuts: u64,
    packed_levels: u64,
    hash_levels: u64,
}

impl StreamLattice {
    /// A maintainer for `n` processes, truncating once more than `cap`
    /// states have been counted (same between-levels check as the offline
    /// enumeration).
    pub fn new(n: usize, cap: u64) -> Self {
        let mut s = StreamLattice {
            n,
            windows: vec![Vec::new(); n],
            base: vec![0; n],
            stable: vec![0; n],
            pushed: vec![0; n],
            level: 0,
            frontier: vec![vec![0u32; n]],
            levels: vec![1],
            states: 1,
            cap,
            truncated: false,
            mem_high_water_cuts: 1,
            packed_levels: 0,
            hash_levels: 0,
        };
        if s.states > s.cap {
            s.truncated = true;
            s.frontier.clear();
        }
        s
    }

    /// Append process `p`'s next event stamp (local order; stamps must be
    /// monotone per process, as in [`crate::history::History`]).
    pub fn push(&mut self, p: usize, stamp: VectorStamp) {
        debug_assert!(
            self.windows[p].last().is_none_or(|prev| prev.le(&stamp)),
            "a process's local stamps must be monotone"
        );
        self.windows[p].push(stamp);
        self.pushed[p] += 1;
    }

    /// Declare the first `events` events of process `p` (absolute count)
    /// **stable**: they are final and happen-before every event any process
    /// has yet to push. Under Δ-bounded strobe dissemination, events sensed
    /// more than 2Δ before the newest arrival qualify. Monotone; clamped to
    /// what was pushed.
    pub fn mark_stable(&mut self, p: usize, events: usize) {
        self.stable[p] = self.stable[p].max(events.min(self.pushed[p]));
    }

    /// Declare every pushed event stable (end of stream).
    pub fn mark_all_stable(&mut self) {
        for p in 0..self.n {
            self.stable[p] = self.pushed[p];
        }
    }

    /// Advance the frontier through every level that is final under the
    /// current stability marks, then retire events no frontier cut can
    /// exclude any more. Returns the number of levels advanced.
    pub fn settle(&mut self) -> usize {
        let sum_stable: usize = self.stable.iter().sum();
        let mut advanced = 0;
        while !self.truncated && !self.frontier.is_empty() && self.level < sum_stable {
            self.expand_level();
            advanced += 1;
        }
        if advanced > 0 {
            self.retire_dominated();
        }
        advanced
    }

    /// One BFS step: replace the frontier with its consistent successors
    /// and count the new level, exactly as the offline enumeration would.
    fn expand_level(&mut self) {
        let lens: Vec<u32> = self.windows.iter().map(|w| w.len() as u32).collect();
        let window_lens: Vec<usize> = self.windows.iter().map(Vec::len).collect();
        let next: Vec<Vec<u32>> = if packed_window_fits(&window_lens) {
            self.packed_levels += 1;
            self.expand_packed(&lens)
        } else {
            self.hash_levels += 1;
            self.expand_hash(&lens)
        };
        self.frontier = next;
        self.level += 1;
        self.levels.push(self.frontier.len() as u64);
        self.states += self.frontier.len() as u64;
        self.mem_high_water_cuts = self.mem_high_water_cuts.max(self.frontier.len() as u64);
        if self.states > self.cap {
            self.truncated = true;
            self.frontier.clear();
        }
    }

    /// Packed expansion: window-relative cuts as single `u64` keys, the
    /// per-event consistency thresholds hoisted into a flat table, and the
    /// successor level deduplicated by sort + dedup (PR-2 encoding).
    fn expand_packed(&mut self, lens: &[u32]) -> Vec<Vec<u32>> {
        let n = self.n;
        let mut offsets = Vec::with_capacity(n);
        let mut total_bits = 0u32;
        for &len in lens {
            offsets.push(total_bits);
            total_bits += u64::BITS - (len as u64).leading_zeros();
        }
        let mut wbase = vec![0usize; n];
        let mut acc = 0usize;
        for (p, b) in wbase.iter_mut().enumerate() {
            *b = acc;
            acc += lens[p] as usize;
        }
        // thr[(wbase[i]+k)·n + j]: window events of j that happen-before
        // window event k of i. Retired events are in every cut, so only
        // window-relative thresholds can ever bind.
        let total: usize = acc;
        let mut thr = vec![0u32; total * n];
        for i in 0..n {
            for (k, e) in self.windows[i].iter().enumerate() {
                let row = &mut thr[(wbase[i] + k) * n..][..n];
                for (j, t) in row.iter_mut().enumerate() {
                    if j != i {
                        *t = self.windows[j].partition_point(|s| s.lt(e)) as u32;
                    }
                }
            }
        }
        let pack = |cut: &[u32]| -> u64 {
            cut.iter().zip(&offsets).map(|(&c, &off)| (c as u64) << off).sum()
        };
        let mut next: Vec<u64> = Vec::new();
        let mut cut = vec![0u32; n];
        for fc in &self.frontier {
            let key = pack(fc);
            cut.copy_from_slice(fc);
            for (i, &off) in offsets.iter().enumerate() {
                let ci = cut[i];
                if ci >= lens[i] {
                    continue;
                }
                let row = &thr[(wbase[i] + ci as usize) * n..][..n];
                let mut ok = true;
                for (j, &t) in row.iter().enumerate() {
                    ok &= cut[j] >= t;
                }
                if ok {
                    next.push(key + (1u64 << off));
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        next.into_iter()
            .map(|key| {
                let mut out = vec![0u32; n];
                unpack_cut(key, &offsets, total_bits, &mut out);
                out
            })
            .collect()
    }

    /// Fallback expansion for windows wider than 64 packed bits.
    fn expand_hash(&mut self, lens: &[u32]) -> Vec<Vec<u32>> {
        let n = self.n;
        let mut next: HashSet<Vec<u32>> = HashSet::new();
        for cut in &self.frontier {
            for i in 0..n {
                let ci = cut[i];
                if ci >= lens[i] {
                    continue;
                }
                let e = &self.windows[i][ci as usize];
                let ok = (0..n).all(|j| {
                    j == i
                        || cut[j] >= lens[j]
                        || !self.windows[j][cut[j] as usize].lt(e)
                });
                if ok {
                    let mut succ = cut.clone();
                    succ[i] += 1;
                    next.insert(succ);
                }
            }
        }
        let mut out: Vec<Vec<u32>> = next.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Retire every event that all frontier cuts include: cuts only grow
    /// along the BFS, so such an event can never be excluded again and its
    /// stamp can never matter to a consistency test.
    fn retire_dominated(&mut self) {
        if self.frontier.is_empty() {
            // Lattice fully consumed (or truncated): nothing constrains
            // anything any more.
            for (w, b) in self.windows.iter_mut().zip(&mut self.base) {
                *b += w.len();
                w.clear();
            }
            return;
        }
        for p in 0..self.n {
            let floor = self.frontier.iter().map(|c| c[p]).min().unwrap_or(0) as usize;
            if floor == 0 {
                continue;
            }
            self.windows[p].drain(..floor);
            self.base[p] += floor;
            for cut in &mut self.frontier {
                cut[p] -= floor as u32;
            }
        }
    }

    /// Finish the enumeration — marks everything stable, runs the BFS to
    /// exhaustion, and returns stats bit-identical to
    /// [`crate::lattice::enumerate_lattice`] over the full pushed history
    /// with the same cap (levels padded to `total + 1` like the offline
    /// enumeration's preallocated profile).
    pub fn seal(mut self) -> LatticeStats {
        self.mark_all_stable();
        let sum_stable: usize = self.stable.iter().sum();
        while !self.truncated && !self.frontier.is_empty() && self.level < sum_stable {
            self.expand_level();
        }
        let total: usize = self.pushed.iter().sum();
        let mut levels = self.levels;
        levels.resize(total + 1, 0);
        LatticeStats { states: self.states, levels, truncated: self.truncated }
    }

    /// Current frontier width: live cuts at the current level.
    pub fn frontier_width(&self) -> usize {
        self.frontier.len()
    }

    /// Widest frontier ever held live — the O(window) memory bound.
    pub fn mem_high_water_cuts(&self) -> u64 {
        self.mem_high_water_cuts
    }

    /// Events garbage-collected so far (stamps dropped).
    pub fn retired_events(&self) -> usize {
        self.base.iter().sum()
    }

    /// Events whose stamps are still held live.
    pub fn window_events(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// Current BFS level (events per frontier cut).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Consistent states counted so far (≥ levels advanced).
    pub fn states_so_far(&self) -> u64 {
        self.states
    }

    /// True once the cap stopped the enumeration.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// `(packed, hash)` level expansions — which encoding the window sizes
    /// selected over the run.
    pub fn expansion_profile(&self) -> (u64, u64) {
        (self.packed_levels, self.hash_levels)
    }
}

/// Decode a packed window-relative cut key (same layout as the offline
/// enumeration's encoding).
#[inline]
fn unpack_cut(key: u64, offsets: &[u32], total_bits: u32, out: &mut [u32]) {
    for (p, &off) in offsets.iter().enumerate() {
        let end = offsets.get(p + 1).copied().unwrap_or(total_bits);
        let width = end - off;
        let field = if width == 0 { 0 } else { (key >> off) & (u64::MAX >> (u64::BITS - width)) };
        out[p] = field as u32;
    }
}

/// One conjunct truth interval as fed to the streaming advancement: the
/// strobe-stamped bounds plus ground-truth endpoints (mirrors the offline
/// detector's per-process intervals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierInterval {
    /// Stamps of the opening/closing events.
    pub stamped: StampedInterval,
    /// Truth time the conjunct became true.
    pub truth_start: SimTime,
    /// Truth time it stopped (None for a still-open interval appended at
    /// seal time).
    pub truth_end: Option<SimTime>,
}

/// One `Possibly`-overlapping combination found by the advancement (the
/// lattice-side shape of a conjunctive occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierOccurrence {
    /// Latest truth start among the matched intervals.
    pub truth_start: SimTime,
    /// Earliest truth end (None if every matched interval was open).
    pub truth_end: Option<SimTime>,
    /// Did the intervals *definitely* overlap?
    pub definitely: bool,
}

/// What a starved peer conjunct can still produce — the inputs to
/// [`AdvancementFrontier::prune`]'s dominance test.
#[derive(Debug, Clone)]
pub struct PeerGate {
    /// Is the conjunct currently inside an open truth interval? (An open
    /// interval's `lo` is in the past, so nothing may be pruned against it.)
    pub open: bool,
    /// The conjunct's last delivered stamp: every future interval it emits
    /// opens at a stamp this one happens-before or equals.
    pub floor: VectorStamp,
}

/// Streaming Garg–Waldecker advancement over per-conjunct interval queues.
///
/// Runs the exact offline advancement loop, but lazily: it pauses whenever
/// some conjunct's next interval has not been produced yet and resumes when
/// it arrives, so the decision (and occurrence) sequence is identical to
/// the offline detector's on the same data. Consumed intervals are popped
/// immediately; [`prune`](Self::prune) additionally drops queued intervals
/// that a starved peer's future can only be preceded by.
#[derive(Debug, Clone)]
pub struct AdvancementFrontier {
    /// Pending (not yet advanced-past) intervals per conjunct; the front of
    /// each queue is the offline algorithm's `idx[p]` position.
    queues: Vec<std::collections::VecDeque<FrontierInterval>>,
    pruned: usize,
}

impl AdvancementFrontier {
    /// A frontier over `k` conjuncts (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one conjunct");
        AdvancementFrontier { queues: vec![std::collections::VecDeque::new(); k], pruned: 0 }
    }

    /// Append `conjunct`'s next closed interval (local order).
    pub fn push(&mut self, conjunct: usize, interval: FrontierInterval) {
        self.queues[conjunct].push_back(interval);
    }

    /// Run the advancement as far as the queued intervals allow, appending
    /// each recorded occurrence to `out`. Stops (to resume later) when some
    /// conjunct's queue is exhausted.
    pub fn advance(&mut self, out: &mut Vec<FrontierOccurrence>) {
        let k = self.queues.len();
        'outer: loop {
            for q in &self.queues {
                if q.is_empty() {
                    break 'outer;
                }
            }
            // An interval that surely precedes a peer's cannot be part of
            // any overlapping combination — advance it (same pair scan
            // order as the offline loop).
            let mut advanced = None;
            'pairs: for p in 0..k {
                for q in 0..k {
                    if p == q {
                        continue;
                    }
                    let xp = &self.queues[p][0].stamped;
                    let xq = &self.queues[q][0].stamped;
                    if xp.surely_precedes(xq) {
                        advanced = Some(p);
                        break 'pairs;
                    }
                }
            }
            if let Some(p) = advanced {
                self.queues[p].pop_front();
                continue;
            }
            // Pairwise possibly-overlapping: an occurrence.
            let definitely = (0..k).all(|p| {
                (0..k).all(|q| {
                    p == q
                        || self.queues[p][0].stamped.definitely_overlaps(&self.queues[q][0].stamped)
                })
            }) || k == 1;
            let truth_start =
                self.queues.iter().map(|q| q[0].truth_start).max().expect("nonempty");
            let truth_end = self
                .queues
                .iter()
                .map(|q| q[0].truth_end)
                .min_by_key(|e| e.unwrap_or(SimTime::MAX))
                .expect("nonempty");
            out.push(FrontierOccurrence { truth_start, truth_end, definitely });
            // Advance the earliest-ending interval (every-occurrence
            // semantics).
            let p_min = (0..k)
                .min_by_key(|&p| self.queues[p][0].truth_end.unwrap_or(SimTime::MAX))
                .expect("nonempty");
            self.queues[p_min].pop_front();
        }
    }

    /// Δ-bound GC while the loop is stalled on a starved conjunct: a queued
    /// interval whose close happens-before the starved peer's floor stamp
    /// surely precedes **every** interval that peer can still produce, so
    /// the offline loop would advance past it without recording an
    /// occurrence — drop it now. `gates[q]` describes conjunct `q`'s
    /// builder; only queues stalled against an empty, not-open peer are
    /// eligible. Returns the number of intervals dropped.
    pub fn prune(&mut self, gates: &[PeerGate]) -> usize {
        assert_eq!(gates.len(), self.queues.len());
        let k = self.queues.len();
        let starved: Vec<bool> = self.queues.iter().map(|q| q.is_empty()).collect();
        if !starved.iter().any(|&s| s) {
            return 0;
        }
        let mut dropped = 0;
        for p in 0..k {
            while let Some(front) = self.queues[p].front() {
                let dominated = (0..k).any(|q| {
                    q != p
                        && starved[q]
                        && !gates[q].open
                        && front.stamped.hi.lt(&gates[q].floor)
                });
                if dominated {
                    self.queues[p].pop_front();
                    dropped += 1;
                } else {
                    break;
                }
            }
        }
        self.pruned += dropped;
        dropped
    }

    /// Intervals currently queued across all conjuncts (the live frontier
    /// memory).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Intervals dropped by [`prune`](Self::prune) so far.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// Is conjunct `p`'s queue currently empty?
    pub fn starved(&self, p: usize) -> bool {
        self.queues[p].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::lattice::enumerate_lattice;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }

    /// Replay a sealed history through the stream maintainer (interleaving
    /// pushes round-robin) and seal; must equal the offline enumeration.
    fn check_equivalence(h: &History, cap: u64) {
        let n = h.num_processes();
        let mut s = StreamLattice::new(n, cap);
        let max_len = (0..n).map(|p| h.len_of(p)).max().unwrap_or(0);
        for k in 0..max_len {
            for p in 0..n {
                if k < h.len_of(p) {
                    s.push(p, h.stamps[p][k].clone());
                }
            }
        }
        let offline = enumerate_lattice(h, cap);
        let sealed = s.seal();
        assert_eq!(sealed, offline);
    }

    #[test]
    fn sealed_stream_matches_offline_enumeration() {
        // Independent grid.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[2, 0])], vec![vs(&[0, 1]), vs(&[0, 2])]]);
        check_equivalence(&h, 1_000);
        // Chain (total order).
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[3, 2])], vec![vs(&[1, 1]), vs(&[1, 2])]]);
        check_equivalence(&h, 1_000);
        // Message-pruned.
        let h = History::new(vec![
            vec![vs(&[1, 0]), vs(&[2, 0])],
            vec![vs(&[0, 1]), vs(&[2, 2])],
        ]);
        check_equivalence(&h, 1_000);
        // Empty.
        let h = History::new(vec![vec![], vec![]]);
        check_equivalence(&h, 10);
    }

    #[test]
    fn sealed_stream_matches_offline_under_truncation() {
        let h = History::new(
            (0..3)
                .map(|p| {
                    (1..=4u64)
                        .map(|k| {
                            let mut v = vec![0; 3];
                            v[p] = k;
                            VectorStamp::from(v)
                        })
                        .collect()
                })
                .collect(),
        );
        check_equivalence(&h, 20);
        check_equivalence(&h, 1_000_000);
    }

    #[test]
    fn hash_fallback_matches_offline() {
        // 22 processes × 3 events each: 22·2 = 44… actually 3 events need
        // 2 bits → 44 bits (packed). Use 22 × 7 (3 bits → 66 bits) with a
        // tight cap to force the fallback, mirroring the offline test.
        let h = History::new(
            (0..22)
                .map(|p| {
                    (1..=7u64)
                        .map(|k| {
                            let mut v = vec![0; 22];
                            v[p] = k;
                            VectorStamp::from(v)
                        })
                        .collect()
                })
                .collect(),
        );
        check_equivalence(&h, 500);
        assert!(!packed_window_fits(&vec![7usize; 22]));
        assert!(packed_window_fits(&vec![2usize; 13]));
    }

    #[test]
    fn incremental_stability_advances_and_retires() {
        // A chain: each event happens-before the next (Δ→0 strobes), so
        // every settled level has exactly one cut and the window stays
        // tiny no matter how long the stream runs.
        let n = 2;
        let mut s = StreamLattice::new(n, u64::MAX);
        let mut counts = [0u64; 2];
        let total = 200usize;
        for i in 0..total {
            let p = i % n;
            counts[p] += 1;
            // Chain stamps: event i's stamp carries both processes' event
            // counts so far, so each event strictly dominates the previous.
            s.push(p, vs(&[counts[0], counts[1]]));
            // Events two steps back are "stable" (the 2Δ analogue).
            if i >= 2 {
                let lag = i - 2;
                s.mark_stable(lag % n, lag / n + 1);
            }
            s.settle();
            assert!(s.window_events() <= 4, "chain window must stay O(1)");
        }
        assert!(s.retired_events() > total - 10, "almost everything retired");
        assert_eq!(s.mem_high_water_cuts(), 1, "a chain's frontier is one cut wide");
        let stats = s.seal();
        assert_eq!(stats.states, total as u64 + 1, "chain of total+1 cuts");
    }

    #[test]
    fn settle_never_counts_an_incomplete_level() {
        // Two independent processes; push one event each, mark only p0
        // stable: Σ stable = 1, so only level 1 may be counted — and level
        // 1 must later grow when p1's event is pushed… it must NOT: level
        // 1 with only p0's event would be {(1,0)} but the true level 1 is
        // {(1,0),(0,1)}. The stability rule (level < Σ stable) forbids
        // advancing: level 0 → 1 needs 0 < 1 ✓, which would undercount!
        // — unless p1's event is already pushed. This test pins the
        // *contract*: mark_stable(p, k) promises every unpushed event is
        // dominated by the stable prefix. Here we uphold it by pushing
        // both events first.
        let mut s = StreamLattice::new(2, u64::MAX);
        s.push(0, vs(&[1, 0]));
        s.push(1, vs(&[0, 1]));
        s.mark_stable(0, 1);
        s.settle();
        assert_eq!(s.level(), 1);
        assert_eq!(s.frontier_width(), 2, "both level-1 cuts present");
        s.mark_stable(1, 1);
        let stats = s.seal();
        assert_eq!(stats.states, 4);
        assert_eq!(stats.levels, vec![1, 2, 1]);
    }

    #[test]
    fn advancement_frontier_matches_batch_loop() {
        // Hand-built two-conjunct interval lists; streaming advancement in
        // arbitrary chunks must equal one-shot advancement.
        let iv = |lo: &[u64], hi: &[u64], t0: u64, t1: Option<u64>| FrontierInterval {
            stamped: StampedInterval { lo: vs(lo), hi: vs(hi) },
            truth_start: SimTime::from_secs(t0),
            truth_end: t1.map(SimTime::from_secs),
        };
        let a = vec![
            iv(&[1, 0], &[2, 1], 1, Some(3)),
            iv(&[4, 3], &[5, 4], 5, Some(7)),
            iv(&[7, 6], &[8, 8], 9, None),
        ];
        let b = vec![
            iv(&[1, 1], &[2, 2], 2, Some(4)),
            iv(&[3, 4], &[4, 5], 4, Some(6)),
            iv(&[6, 7], &[8, 9], 8, None),
        ];
        // One-shot.
        let mut all = AdvancementFrontier::new(2);
        for x in &a {
            all.push(0, x.clone());
        }
        for x in &b {
            all.push(1, x.clone());
        }
        let mut batch = Vec::new();
        all.advance(&mut batch);
        // Streaming: one interval at a time, alternating.
        let mut st = AdvancementFrontier::new(2);
        let mut out = Vec::new();
        for k in 0..a.len().max(b.len()) {
            if k < a.len() {
                st.push(0, a[k].clone());
                st.advance(&mut out);
            }
            if k < b.len() {
                st.push(1, b[k].clone());
                st.advance(&mut out);
            }
        }
        assert_eq!(out, batch, "chunked advancement must equal one-shot");
    }

    #[test]
    fn prune_drops_only_dominated_intervals() {
        let iv = |lo: &[u64], hi: &[u64]| FrontierInterval {
            stamped: StampedInterval { lo: vs(lo), hi: vs(hi) },
            truth_start: SimTime::ZERO,
            truth_end: Some(SimTime::from_secs(1)),
        };
        let mut f = AdvancementFrontier::new(2);
        f.push(0, iv(&[1, 0], &[2, 1]));
        f.push(0, iv(&[4, 3], &[5, 9]));
        // Peer 1 is starved, not open, floor [9,9]: the first interval's
        // hi [2,1] < [9,9] is dominated; the second's hi [5,9] is not
        // (component 1 ties at 9 ⇒ not strictly less in the partial
        // order? [5,9].lt([9,9]) = le && ne = true). Use floor [6,8] so
        // the second survives.
        let gates = vec![
            PeerGate { open: false, floor: vs(&[0, 0]) },
            PeerGate { open: false, floor: vs(&[6, 8]) },
        ];
        assert_eq!(f.prune(&gates), 1);
        assert_eq!(f.pending(), 1);
        // An open peer gates nothing.
        let mut g = AdvancementFrontier::new(2);
        g.push(0, iv(&[1, 0], &[2, 1]));
        let gates = vec![
            PeerGate { open: false, floor: vs(&[0, 0]) },
            PeerGate { open: true, floor: vs(&[9, 9]) },
        ];
        assert_eq!(g.prune(&gates), 0);
        assert_eq!(g.pending(), 1);
    }
}
