//! The slim-lattice measurements (paper §4.2.4).
//!
//! "Although the control messages for the strobe clock create artificial
//! causal dependencies, these are useful because they help to approximate
//! instantaneous observation by eliminating many of the O(pⁿ) states in
//! which the corresponding intervals did not overlap. … The faster the
//! strobe transmissions, the leaner is the lattice. When Δ = 0, the result
//! is a linear order of np states. … This gives the 'slim lattice
//! postulate' for consistent global states in sensornet observations."
//!
//! [`SlimReport`] packages everything experiment E4 prints: measured
//! lattice size vs the unconstrained O(pⁿ) bound and the Δ = 0 chain bound.

use serde::{Deserialize, Serialize};

use crate::history::History;
use crate::lattice::{enumerate_lattice, LatticeStats};

/// Slim-lattice measurements for one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlimReport {
    /// Number of consistent states found (lower bound if truncated).
    pub states: u64,
    /// The unconstrained bound Πᵢ(pᵢ+1) — the O(pⁿ) worst case.
    pub unconstrained: f64,
    /// The total-order bound Σᵢpᵢ + 1 — the Δ = 0 chain.
    pub chain: u64,
    /// Width of the widest level (1 for a chain).
    pub width: u64,
    /// states / unconstrained.
    pub slimness: f64,
    /// True if enumeration hit the cap.
    pub truncated: bool,
}

/// Measure the lattice induced by `history`, capped at `cap` states.
pub fn measure(history: &History, cap: u64) -> SlimReport {
    let stats: LatticeStats = enumerate_lattice(history, cap);
    SlimReport {
        states: stats.states,
        unconstrained: history.unconstrained_cuts(),
        chain: history.chain_cuts(),
        width: stats.width(),
        slimness: stats.slimness(history),
        truncated: stats.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_clocks::{LogicalClock, StrobeVectorClock, VectorStamp};

    /// Simulate the strobe protocol analytically: `n` processes take turns
    /// sensing; each strobe is delivered to everyone after `delay_events`
    /// subsequent events (0 = synchronous). Returns the per-process strobe
    /// stamps.
    fn strobed_history(n: usize, rounds: usize, delay_events: usize) -> History {
        let mut clocks: Vec<StrobeVectorClock> =
            (0..n).map(|i| StrobeVectorClock::new(i, n)).collect();
        let mut stamps: Vec<Vec<VectorStamp>> = vec![Vec::new(); n];
        // In-flight strobes: (deliver_after_event_counter, sender, stamp).
        let mut in_flight: Vec<(usize, usize, VectorStamp)> = Vec::new();
        let mut event_counter = 0usize;
        for r in 0..rounds {
            for p in 0..n {
                // Deliver due strobes first.
                let due: Vec<_> =
                    in_flight.iter().filter(|&&(at, _, _)| at <= event_counter).cloned().collect();
                in_flight.retain(|&(at, _, _)| at > event_counter);
                for (_, sender, s) in due {
                    for (q, c) in clocks.iter_mut().enumerate() {
                        if q != sender {
                            c.on_strobe(&s);
                        }
                    }
                }
                let s = clocks[p].on_local_event();
                stamps[p].push(s.clone());
                in_flight.push((event_counter + delay_events, p, s));
                event_counter += 1;
            }
            let _ = r;
        }
        History::new(stamps)
    }

    #[test]
    fn zero_delay_gives_chain() {
        // Δ = 0 (strobes delivered before the next event): the lattice is
        // the paper's "linear order of np states".
        let h = strobed_history(3, 4, 0);
        let r = measure(&h, 1_000_000);
        assert_eq!(r.states, r.chain, "Δ=0 collapses the lattice to a chain");
        assert_eq!(r.width, 1);
    }

    #[test]
    fn slower_strobes_fatten_the_lattice() {
        let fast = measure(&strobed_history(3, 4, 1), 1_000_000);
        let slow = measure(&strobed_history(3, 4, 6), 1_000_000);
        let none = measure(&strobed_history(3, 4, usize::MAX / 2), 1_000_000);
        assert!(fast.states <= slow.states, "faster strobes ⇒ leaner lattice");
        assert!(slow.states <= none.states);
        assert!(none.states as f64 >= fast.states as f64 * 2.0, "effect is substantial");
    }

    #[test]
    fn no_strobes_is_unconstrained() {
        // Strobes that never arrive leave all interleavings possible.
        let h = strobed_history(3, 3, usize::MAX / 2);
        let r = measure(&h, 1_000_000);
        assert!((r.states as f64 - r.unconstrained).abs() < 1e-9, "O(p^n) states");
        assert!((r.slimness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slimness_decreases_with_strobe_speed() {
        let fast = measure(&strobed_history(4, 3, 0), 1_000_000);
        let none = measure(&strobed_history(4, 3, usize::MAX / 2), 1_000_000);
        assert!(fast.slimness < 0.1);
        assert!((none.slimness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_reports() {
        let h = strobed_history(4, 5, usize::MAX / 2);
        let r = measure(&h, 50);
        assert!(r.truncated);
        assert!(r.states > 50);
    }
}
