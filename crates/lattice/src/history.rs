//! Vector-stamped per-process histories and consistent cuts.
//!
//! A **cut** of an n-process execution is a vector `(c₁ … cₙ)`: the first
//! `cᵢ` events of each process. A cut is **consistent** (a possible global
//! state) iff no excluded event happens-before an included event under the
//! partial order carried by the stamps. The same machinery serves both
//! causality-based Mattern/Fidge stamps *and* strobe-vector stamps — the
//! strobe-induced partial order is artificial (paper §4.2), but it prunes
//! the state lattice exactly the same way.

use serde::{Deserialize, Serialize};

use psn_clocks::VectorStamp;

/// Per-process sequences of vector-stamped events, in local order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    /// `stamps[p]` = the stamps of process p's events, in occurrence order.
    pub stamps: Vec<Vec<VectorStamp>>,
}

impl History {
    /// Build from per-process stamp sequences. Local sequences must be
    /// stampwise non-decreasing (debug-asserted): a process's own history
    /// is totally ordered.
    pub fn new(stamps: Vec<Vec<VectorStamp>>) -> Self {
        #[cfg(debug_assertions)]
        for seq in &stamps {
            for w in seq.windows(2) {
                debug_assert!(
                    w[0].le(&w[1]),
                    "a process's local stamps must be monotone: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        History { stamps }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.stamps.len()
    }

    /// Events at process `p`.
    pub fn len_of(&self, p: usize) -> usize {
        self.stamps[p].len()
    }

    /// Total number of events.
    pub fn total_events(&self) -> usize {
        self.stamps.iter().map(Vec::len).sum()
    }

    /// Is the cut `(c₁ … cₙ)` consistent? `cut[p]` counts included events
    /// of process p.
    ///
    /// Condition: for every included event `e` and every process `j`, the
    /// first *excluded* event of `j` must not happen-before `e` (strictly:
    /// equal stamps are concurrent, not dependent). It suffices to test
    /// each process's *last included* event, since local histories are
    /// monotone.
    pub fn is_consistent(&self, cut: &[usize]) -> bool {
        assert_eq!(cut.len(), self.stamps.len());
        for (i, &ci) in cut.iter().enumerate() {
            if ci == 0 {
                continue;
            }
            assert!(ci <= self.stamps[i].len(), "cut out of range");
            let last_included = &self.stamps[i][ci - 1];
            for (j, &cj) in cut.iter().enumerate() {
                if i == j || cj >= self.stamps[j].len() {
                    continue;
                }
                let first_excluded = &self.stamps[j][cj];
                if first_excluded.lt(last_included) {
                    return false;
                }
            }
        }
        true
    }

    /// Given a consistent `cut`, can process `i` advance by one event while
    /// staying consistent? (The incremental test used by lattice BFS.)
    pub fn can_advance(&self, cut: &[usize], i: usize) -> bool {
        let ci = cut[i];
        if ci >= self.stamps[i].len() {
            return false;
        }
        let e = &self.stamps[i][ci];
        for (j, &cj) in cut.iter().enumerate() {
            if j == i || cj >= self.stamps[j].len() {
                continue;
            }
            // Adjust for the event being added at i itself: after advancing,
            // j's first excluded event is unchanged.
            let first_excluded = &self.stamps[j][cj];
            if first_excluded.lt(e) {
                return false;
            }
        }
        true
    }

    /// The number of cuts if *no* ordering constrained them: Πₚ (lenₚ + 1),
    /// the paper's O(pⁿ) (p events at each of n processes).
    pub fn unconstrained_cuts(&self) -> f64 {
        self.stamps.iter().map(|s| (s.len() + 1) as f64).product()
    }

    /// The number of cuts if the order were total: Σₚ lenₚ + 1 — the
    /// paper's "linear order of np states" at Δ = 0.
    pub fn chain_cuts(&self) -> u64 {
        self.total_events() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(v: &[u64]) -> VectorStamp {
        VectorStamp::from_slice(v)
    }

    /// Two processes, one message 0→1: e01 is p0's send (stamp [1,0]);
    /// p1's events: f1 local [0,1], f2 receive of the message [1,2].
    fn messaged_history() -> History {
        History::new(vec![vec![vs(&[1, 0])], vec![vs(&[0, 1]), vs(&[1, 2])]])
    }

    #[test]
    fn empty_cut_is_consistent() {
        let h = messaged_history();
        assert!(h.is_consistent(&[0, 0]));
        assert!(h.is_consistent(&[1, 0]));
        assert!(h.is_consistent(&[0, 1]));
    }

    #[test]
    fn receive_without_send_is_inconsistent() {
        let h = messaged_history();
        // Including p1's receive (2 events) without p0's send is not a
        // possible global state.
        assert!(!h.is_consistent(&[0, 2]));
        assert!(h.is_consistent(&[1, 2]));
    }

    #[test]
    fn full_cut_is_consistent() {
        let h = messaged_history();
        assert!(h.is_consistent(&[1, 2]));
    }

    #[test]
    fn can_advance_matches_is_consistent() {
        let h = messaged_history();
        // From (0,1): advancing p1 to its receive needs p0's send first.
        assert!(!h.can_advance(&[0, 1], 1));
        assert!(h.can_advance(&[0, 1], 0));
        // From (1,1): now p1 may advance.
        assert!(h.can_advance(&[1, 1], 1));
        // Cannot advance past the end.
        assert!(!h.can_advance(&[1, 2], 1));
    }

    #[test]
    fn concurrent_events_allow_all_interleavings() {
        // Two processes, no communication: every cut is consistent.
        let h = History::new(vec![vec![vs(&[1, 0]), vs(&[2, 0])], vec![vs(&[0, 1])]]);
        for c0 in 0..=2 {
            for c1 in 0..=1 {
                assert!(h.is_consistent(&[c0, c1]), "cut ({c0},{c1})");
            }
        }
        assert_eq!(h.unconstrained_cuts(), 6.0);
        assert_eq!(h.chain_cuts(), 4);
    }

    #[test]
    fn equal_stamps_are_not_dependencies() {
        // Strobe clocks can assign equal stamps to events at different
        // processes; equality must not create a false dependency.
        let h = History::new(vec![vec![vs(&[1, 1])], vec![vs(&[1, 1])]]);
        assert!(h.is_consistent(&[1, 0]));
        assert!(h.is_consistent(&[0, 1]));
        assert!(h.is_consistent(&[1, 1]));
    }

    #[test]
    fn totals() {
        let h = messaged_history();
        assert_eq!(h.num_processes(), 2);
        assert_eq!(h.len_of(1), 2);
        assert_eq!(h.total_events(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_bounds_checked() {
        let h = messaged_history();
        h.is_consistent(&[2, 0]);
    }
}
