//! # psn-lattice — consistent global states and interval relations
//!
//! The second use of partial-order time in the paper (§4.1–4.2.4): the
//! lattice of consistent global states. In pervasive observation the
//! network plane cannot capture world-plane dependencies, so without
//! strobes the lattice degenerates to *all* O(pⁿ) interleavings — "the
//! state lattice becomes effectively meaningless". Strobe traffic induces
//! an artificial partial order that prunes it; at Δ = 0 it collapses to a
//! chain of n·p states (the **slim lattice postulate**, §4.2.4).
//!
//! - [`history`] — vector-stamped per-process histories, consistent cuts;
//! - [`lattice`] — BFS enumeration, level profile, width;
//! - [`slim`] — the E4 measurements (states vs O(pⁿ) vs chain);
//! - [`intervals`] — Allen's 13 real-time relations and the
//!   possibly/definitely overlap tests on vector-stamped intervals.

#![warn(missing_docs)]

pub mod fine_grained;
pub mod history;
pub mod intervals;
pub mod lattice;
pub mod slim;
pub mod snapshot;
pub mod stream;

pub use fine_grained::{distinct_codes, RelationCode, Trit};
pub use history::History;
pub use intervals::{allen_relation, Allen, StampedInterval};
pub use lattice::{enumerate_lattice, LatticeStats};
pub use slim::{measure, SlimReport};
pub use snapshot::{max_consistent_cut_within, min_consistent_cut_containing};
pub use stream::{
    packed_window_fits, AdvancementFrontier, FrontierInterval, FrontierOccurrence, PeerGate,
    StreamLattice,
};
