//! Energy/message cost accounting.
//!
//! The paper's recurring point (§3.2.1.a.ii, §3.3 limitation 1): the
//! synchronized-clock service "does not come for free to the application;
//! the lower layers pay the cost", and in remote/wild deployments the
//! energy may simply not be affordable. This module turns message counts
//! into a simple radio-energy estimate so experiment E7 can put the sync
//! protocols and the strobe protocols on one axis.

use serde::{Deserialize, Serialize};

use psn_sim::network::NetStats;

use crate::rbs::SyncOutcome;

/// A first-order radio energy model: cost per transmitted message, per
/// received message, and per payload byte (sensor radios burn energy
/// roughly linearly in on-air bytes; the per-message terms capture
/// wake-up/preamble overhead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Energy units per transmission.
    pub tx_cost: f64,
    /// Energy units per reception.
    pub rx_cost: f64,
    /// Energy units per payload byte transmitted.
    pub byte_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Loosely CC2420-flavoured ratios: rx ≈ tx, bytes cheap relative to
        // per-packet overhead.
        CostModel { tx_cost: 1.0, rx_cost: 0.8, byte_cost: 0.02 }
    }
}

impl CostModel {
    /// Energy for a sync run.
    pub fn sync_energy(&self, outcome: &SyncOutcome) -> f64 {
        // Every sent message is (at most) one reception in these protocols.
        self.energy(outcome.messages, outcome.messages, outcome.bytes)
    }

    /// Energy for arbitrary network counters.
    pub fn net_energy(&self, stats: &NetStats) -> f64 {
        self.energy(stats.messages_sent, stats.messages_delivered, stats.bytes_sent)
    }

    /// The raw formula.
    pub fn energy(&self, tx: u64, rx: u64, bytes: u64) -> f64 {
        tx as f64 * self.tx_cost + rx as f64 * self.rx_cost + bytes as f64 * self.byte_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_sim::time::{SimDuration, SimTime};

    #[test]
    fn energy_formula() {
        let m = CostModel { tx_cost: 2.0, rx_cost: 1.0, byte_cost: 0.1 };
        assert!((m.energy(10, 8, 100) - (20.0 + 8.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn sync_energy_uses_outcome_counters() {
        let out = SyncOutcome {
            achieved_skew: SimDuration::from_micros(50),
            initial_skew: SimDuration::from_millis(10),
            messages: 100,
            bytes: 1000,
            completed_at: SimTime::from_secs(1),
        };
        let m = CostModel::default();
        let e = m.sync_energy(&out);
        assert!((e - (100.0 + 80.0 + 20.0)).abs() < 1e-9);
    }

    #[test]
    fn net_energy_uses_stats() {
        let stats = NetStats {
            messages_sent: 50,
            messages_delivered: 45,
            messages_lost: 5,
            bytes_sent: 400,
            broadcasts: 10,
            ..Default::default()
        };
        let m = CostModel::default();
        assert!((m.net_energy(&stats) - (50.0 + 36.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn default_is_rx_cheaper_than_tx() {
        let m = CostModel::default();
        assert!(m.rx_cost < m.tx_cost);
        assert!(m.byte_cost < m.rx_cost);
    }
}
