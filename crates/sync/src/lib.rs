//! # psn-sync — the physical-clock-synchronization baseline
//!
//! The paper's thesis is comparative: strobe clocks (partial-order logical
//! time) are a viable *alternative* to physically synchronized clocks when
//! the latter are unavailable or too expensive (§3.3). To make that
//! comparison concrete, this crate implements the baseline: drifting
//! oscillators (from `psn-clocks`) brought into sync by
//!
//! - [`rbs`] — a Reference-Broadcast-Synchronization-like receiver-receiver
//!   protocol, and
//! - [`tpsn`] — a TPSN-like two-way sender-receiver exchange over a tree,
//!
//! with [`skew`] measuring the achieved ε, [`cost`] pricing the messages
//! in radio energy, and [`recovery`] planning the post-crash resync round
//! (when the ε bound holds again, and what the repair costs). Experiments
//! E1 (ε → detection accuracy), E7 ("sync is not free") and E11/E12
//! (crash/partition resilience) consume these.

#![warn(missing_docs)]

pub mod cost;
pub mod on_demand;
pub mod rbs;
pub mod recovery;
pub mod skew;
pub mod tpsn;

pub use cost::CostModel;
pub use on_demand::{run_on_demand, OnDemandOutcome, OnDemandParams};
pub use rbs::{run_rbs, RbsParams, SyncOutcome};
pub use recovery::{plan_resync, ResyncParams, ResyncPlan};
pub use skew::{max_pairwise_skew, max_truth_error, mean_pairwise_skew};
pub use tpsn::{run_tpsn, run_tpsn_chain, ChainOutcome, TpsnChainParams, TpsnParams};
