//! Post-recovery resynchronization planning.
//!
//! A process that crashes and reboots loses its synchronized-clock state:
//! until the sync protocol runs again its residual offset is unbounded, so
//! ε-based predicate windows are unsound for it (the fault plane models
//! this by desyncing the recovering node's [`psn_clocks::SyncedClock`]).
//! This module prices the repair: a TPSN-style two-way exchange with an
//! already-synchronized neighbour, repeated `exchanges` times to average
//! out jitter. The resulting plan tells the recovering process *when* its
//! ε guarantee holds again and what the repair cost on the radio — the
//! numbers experiments E11/E12 use for the "ε-synced physical does not
//! re-converge until resync" claim.

use serde::{Deserialize, Serialize};

use psn_sim::time::SimDuration;

use crate::cost::CostModel;

/// Parameters of one post-recovery resync round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResyncParams {
    /// Two-way exchanges performed (TPSN uses several to average jitter).
    pub exchanges: u64,
    /// Round-trip time of one exchange (propagation + processing, both
    /// ways). The plan is conservative: exchanges run sequentially.
    pub rtt: SimDuration,
    /// Payload bytes per exchange message (two readings).
    pub bytes_per_message: u64,
}

impl Default for ResyncParams {
    fn default() -> Self {
        ResyncParams { exchanges: 4, rtt: SimDuration::from_millis(250), bytes_per_message: 16 }
    }
}

/// The deterministic outcome of planning a resync round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResyncPlan {
    /// Delay from recovery until the ε bound holds again.
    pub completes_after: SimDuration,
    /// Messages spent (request + reply per exchange).
    pub messages: u64,
    /// Payload bytes spent.
    pub bytes: u64,
}

impl ResyncPlan {
    /// Radio energy of the repair under `model`.
    pub fn energy(&self, model: &CostModel) -> f64 {
        // Each exchange message is transmitted once and received once.
        model.energy(self.messages, self.messages, self.bytes)
    }
}

/// Plan the post-recovery resync round for `params`.
pub fn plan_resync(params: &ResyncParams) -> ResyncPlan {
    let messages = params.exchanges * 2;
    ResyncPlan {
        completes_after: SimDuration::from_nanos(
            params.rtt.as_nanos().saturating_mul(params.exchanges),
        ),
        messages,
        bytes: messages * params.bytes_per_message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_sequential_exchanges() {
        let plan = plan_resync(&ResyncParams::default());
        assert_eq!(plan.completes_after, SimDuration::from_secs(1));
        assert_eq!(plan.messages, 8);
        assert_eq!(plan.bytes, 128);
    }

    #[test]
    fn zero_exchanges_is_free_and_instant() {
        let plan = plan_resync(&ResyncParams { exchanges: 0, ..Default::default() });
        assert_eq!(plan.completes_after, SimDuration::ZERO);
        assert_eq!(plan.messages, 0);
        assert_eq!(plan.energy(&CostModel::default()), 0.0);
    }

    #[test]
    fn energy_counts_both_directions() {
        let model = CostModel { tx_cost: 1.0, rx_cost: 1.0, byte_cost: 0.0 };
        let plan = plan_resync(&ResyncParams { exchanges: 3, ..Default::default() });
        assert!((plan.energy(&model) - 12.0).abs() < 1e-12, "6 messages, tx+rx each");
    }
}
