//! Skew measurement helpers.
//!
//! A synchronization protocol's quality is its achieved skew ε: the largest
//! disagreement between any two corrected clocks. The paper (§3.3) notes
//! protocol-achieved skews of microseconds to milliseconds for sensornets
//! (RBS, TPSN, …) and uses ε to bound detection accuracy: overlaps shorter
//! than 2ε are undetectable with physical clocks (Mayo–Kearns).

use psn_clocks::Oscillator;
use psn_sim::time::{SimDuration, SimTime};

/// The largest pairwise disagreement among clocks at ground-truth time `t`.
pub fn max_pairwise_skew(clocks: &[Oscillator], t: SimTime) -> SimDuration {
    let readings: Vec<i64> = clocks.iter().map(|c| c.read(t).0).collect();
    let mut worst = 0u64;
    for i in 0..readings.len() {
        for j in (i + 1)..readings.len() {
            worst = worst.max(readings[i].abs_diff(readings[j]));
        }
    }
    SimDuration::from_nanos(worst)
}

/// The largest absolute error versus ground truth at time `t`.
pub fn max_truth_error(clocks: &[Oscillator], t: SimTime) -> SimDuration {
    clocks.iter().map(|c| c.error_at(t)).max().unwrap_or(SimDuration::ZERO)
}

/// Mean absolute pairwise skew at time `t`.
pub fn mean_pairwise_skew(clocks: &[Oscillator], t: SimTime) -> SimDuration {
    let readings: Vec<i64> = clocks.iter().map(|c| c.read(t).0).collect();
    let n = readings.len();
    if n < 2 {
        return SimDuration::ZERO;
    }
    let mut total = 0u128;
    let mut pairs = 0u128;
    for i in 0..n {
        for j in (i + 1)..n {
            total += u128::from(readings[i].abs_diff(readings[j]));
            pairs += 1;
        }
    }
    SimDuration::from_nanos((total / pairs) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osc(offset_ns: i64) -> Oscillator {
        Oscillator { offset_ns, drift_ppm: 0.0, granularity_ns: 1 }
    }

    #[test]
    fn pairwise_skew_is_spread() {
        let clocks = vec![osc(-500), osc(0), osc(1500)];
        let t = SimTime::from_secs(1);
        assert_eq!(max_pairwise_skew(&clocks, t), SimDuration::from_nanos(2000));
        assert_eq!(max_truth_error(&clocks, t), SimDuration::from_nanos(1500));
    }

    #[test]
    fn identical_clocks_have_zero_skew() {
        let clocks = vec![osc(100), osc(100)];
        assert_eq!(max_pairwise_skew(&clocks, SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn mean_skew_averages_pairs() {
        let clocks = vec![osc(0), osc(300), osc(600)];
        // Pairs: 300, 600, 300 → mean 400.
        assert_eq!(mean_pairwise_skew(&clocks, SimTime::ZERO), SimDuration::from_nanos(400));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(max_pairwise_skew(&[], SimTime::ZERO), SimDuration::ZERO);
        assert_eq!(mean_pairwise_skew(&[osc(5)], SimTime::ZERO), SimDuration::ZERO);
        assert_eq!(max_truth_error(&[], SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn drift_grows_skew_over_time() {
        let fast = Oscillator { offset_ns: 0, drift_ppm: 50.0, granularity_ns: 1 };
        let slow = Oscillator { offset_ns: 0, drift_ppm: -50.0, granularity_ns: 1 };
        let clocks = vec![fast, slow];
        let early = max_pairwise_skew(&clocks, SimTime::from_secs(1));
        let late = max_pairwise_skew(&clocks, SimTime::from_secs(100));
        assert!(late > early * 50, "100 ppm relative drift accumulates");
    }
}
