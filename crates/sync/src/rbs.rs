//! Reference-Broadcast-Synchronization-like protocol.
//!
//! RBS (Elson et al.) exploits the broadcast medium: a reference node
//! broadcasts beacons; *receivers* timestamp the arrivals with their local
//! clocks and exchange those readings — sender-side nondeterminism cancels
//! because everyone timestamps the *same* physical broadcast, leaving only
//! receive-side jitter. Averaging over k beacons shrinks the residual
//! further.
//!
//! This simulation reproduces the protocol's *shape*: achieved skew scales
//! with the receive-jitter bound and improves with the number of beacons,
//! and the whole service costs messages — the paper's point that a
//! synchronized time base "does not come for free" (§3.2.1.a.ii).

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_clocks::Oscillator;
use psn_sim::delay::DelayModel;
use psn_sim::engine::{Actor, Context, Engine, Message};
use psn_sim::network::{ActorId, NetworkConfig};
use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::skew::max_pairwise_skew;

/// Parameters of one RBS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbsParams {
    /// Number of receiver nodes to synchronize.
    pub receivers: usize,
    /// Number of reference beacons.
    pub beacons: usize,
    /// Gap between beacons.
    pub beacon_interval: SimDuration,
    /// Receive-side jitter bound (per-receiver delay is uniform in
    /// `[propagation, propagation + jitter]`).
    pub jitter: SimDuration,
    /// Fixed propagation delay (common mode; cancelled by the protocol).
    pub propagation: SimDuration,
    /// Max initial clock offset of the unsynchronized receivers.
    pub max_offset: SimDuration,
    /// Max |drift| in ppm.
    pub max_drift_ppm: f64,
}

impl Default for RbsParams {
    fn default() -> Self {
        RbsParams {
            receivers: 8,
            beacons: 10,
            beacon_interval: SimDuration::from_millis(100),
            jitter: SimDuration::from_micros(100),
            propagation: SimDuration::from_micros(5),
            max_offset: SimDuration::from_millis(20),
            max_drift_ppm: 30.0,
        }
    }
}

/// Outcome of a synchronization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// Achieved max pairwise skew among the synchronized nodes, measured
    /// immediately after the corrections are applied.
    pub achieved_skew: SimDuration,
    /// Skew before the protocol ran (the unsynchronized baseline).
    pub initial_skew: SimDuration,
    /// Point-to-point messages the protocol consumed.
    pub messages: u64,
    /// Payload bytes the protocol consumed.
    pub bytes: u64,
    /// Ground-truth time at which the run completed.
    pub completed_at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
enum RbsMsg {
    Beacon { seq: usize },
    Readings { from: usize, readings: Vec<i64> },
    Correct { delta_ns: i64 },
}

impl Message for RbsMsg {
    fn size_bytes(&self) -> usize {
        match self {
            RbsMsg::Beacon { .. } => 8,
            RbsMsg::Readings { readings, .. } => 8 + 8 * readings.len(),
            RbsMsg::Correct { .. } => 8,
        }
    }
}

/// Actor 0: the reference beacon source.
struct Reference {
    beacons: usize,
    interval: SimDuration,
    sent: usize,
}
impl Actor<RbsMsg> for Reference {
    fn on_start(&mut self, ctx: &mut Context<'_, RbsMsg>) {
        ctx.set_timer(self.interval, 0);
    }
    fn on_message(&mut self, _: &mut Context<'_, RbsMsg>, _: ActorId, _: RbsMsg) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, RbsMsg>, _tag: u64) {
        ctx.broadcast(RbsMsg::Beacon { seq: self.sent });
        self.sent += 1;
        if self.sent < self.beacons {
            ctx.set_timer(self.interval, 0);
        }
    }
}

/// Receivers: record beacon arrival readings; the hub (receiver index 0,
/// actor id 1) collects everyone's readings, computes offsets relative to
/// itself, and sends corrections.
struct Receiver {
    /// Index among receivers (0-based; actor id = index + 1).
    index: usize,
    receivers: usize,
    beacons: usize,
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
    readings: Vec<i64>,
    /// Hub only: collected readings by receiver index.
    collected: Vec<Option<Vec<i64>>>,
    done: Arc<Mutex<Option<SimTime>>>,
}

impl Receiver {
    fn local_reading(&self, now: SimTime) -> i64 {
        self.oscillators.lock()[self.index].read(now).0
    }
}

impl Actor<RbsMsg> for Receiver {
    fn on_message(&mut self, ctx: &mut Context<'_, RbsMsg>, _from: ActorId, msg: RbsMsg) {
        match msg {
            RbsMsg::Beacon { seq } => {
                let r = self.local_reading(ctx.now());
                self.readings.push(r);
                if seq + 1 == self.beacons {
                    // Last beacon: ship readings to the hub (receiver 0).
                    if self.index == 0 {
                        self.collected[0] = Some(self.readings.clone());
                        self.maybe_finish(ctx);
                    } else {
                        ctx.send(
                            1, // hub actor id
                            RbsMsg::Readings { from: self.index, readings: self.readings.clone() },
                        );
                    }
                }
            }
            RbsMsg::Readings { from, readings } => {
                debug_assert_eq!(self.index, 0, "only the hub collects");
                self.collected[from] = Some(readings);
                self.maybe_finish(ctx);
            }
            RbsMsg::Correct { delta_ns } => {
                self.oscillators.lock()[self.index].adjust_offset(delta_ns);
            }
        }
    }
}

impl Receiver {
    fn maybe_finish(&mut self, ctx: &mut Context<'_, RbsMsg>) {
        if self.index != 0 || self.collected.iter().any(Option::is_none) {
            return;
        }
        let hub = self.collected[0].as_ref().expect("hub readings").clone();
        for i in 1..self.receivers {
            let peer = self.collected[i].as_ref().expect("peer readings");
            let k = hub.len().min(peer.len());
            // Mean difference peer − hub over the shared beacons: peer's
            // clock is ahead of the hub's by this much.
            let delta: i64 = (0..k).map(|b| peer[b] - hub[b]).sum::<i64>() / k as i64;
            ctx.send(i + 1, RbsMsg::Correct { delta_ns: -delta });
        }
        *self.done.lock() = Some(ctx.now());
    }
}

/// Run the protocol; returns the outcome.
pub fn run_rbs(params: &RbsParams, seed: u64) -> SyncOutcome {
    assert!(params.receivers >= 2, "need at least two receivers");
    assert!(params.beacons >= 1, "need at least one beacon");
    let factory = RngFactory::new(seed);
    let mut hw_rng = factory.labeled_stream("rbs.hardware");
    let oscillators: Vec<Oscillator> = (0..params.receivers)
        .map(|_| Oscillator::random(&mut hw_rng, params.max_offset, params.max_drift_ppm, 1))
        .collect();
    let initial_skew = max_pairwise_skew(&oscillators, SimTime::ZERO);
    let oscillators = Arc::new(Mutex::new(oscillators));
    let done = Arc::new(Mutex::new(None));

    let net = NetworkConfig::full_mesh(
        params.receivers + 1,
        DelayModel::DeltaBounded {
            min: params.propagation,
            max: params.propagation + params.jitter,
        },
    );
    let mut engine: Engine<RbsMsg> = Engine::new(net, seed);
    engine.add_actor(Box::new(Reference {
        beacons: params.beacons,
        interval: params.beacon_interval,
        sent: 0,
    }));
    for index in 0..params.receivers {
        engine.add_actor(Box::new(Receiver {
            index,
            receivers: params.receivers,
            beacons: params.beacons,
            oscillators: Arc::clone(&oscillators),
            readings: Vec::new(),
            collected: if index == 0 { vec![None; params.receivers] } else { Vec::new() },
            done: Arc::clone(&done),
        }));
    }
    let completed_at = engine.run();
    let achieved_skew = max_pairwise_skew(&oscillators.lock(), completed_at);
    SyncOutcome {
        achieved_skew,
        initial_skew,
        messages: engine.stats().messages_sent,
        bytes: engine.stats().bytes_sent,
        completed_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbs_improves_skew_dramatically() {
        let out = run_rbs(&RbsParams::default(), 42);
        assert!(
            out.achieved_skew.as_nanos() * 10 < out.initial_skew.as_nanos(),
            "achieved {} vs initial {}",
            out.achieved_skew,
            out.initial_skew
        );
    }

    #[test]
    fn achieved_skew_scales_with_jitter() {
        let lo =
            run_rbs(&RbsParams { jitter: SimDuration::from_micros(10), ..Default::default() }, 7);
        let hi =
            run_rbs(&RbsParams { jitter: SimDuration::from_millis(10), ..Default::default() }, 7);
        assert!(
            hi.achieved_skew.as_nanos() > lo.achieved_skew.as_nanos() * 10,
            "lo {} hi {}",
            lo.achieved_skew,
            hi.achieved_skew
        );
    }

    #[test]
    fn more_beacons_tighten_the_estimate() {
        // Average over many seeds to see the averaging effect.
        let mean_skew = |beacons: usize| -> f64 {
            (0..20)
                .map(|s| {
                    run_rbs(&RbsParams { beacons, ..Default::default() }, s)
                        .achieved_skew
                        .as_nanos() as f64
                })
                .sum::<f64>()
                / 20.0
        };
        let few = mean_skew(1);
        let many = mean_skew(30);
        assert!(many < few, "averaging over beacons must help: 1→{few}, 30→{many}");
    }

    #[test]
    fn sync_is_not_free() {
        let params = RbsParams::default();
        let out = run_rbs(&params, 3);
        // k beacons × n+... broadcasts + readings + corrections.
        let min_expected =
            (params.beacons * params.receivers) as u64 + 2 * (params.receivers as u64 - 1);
        assert!(out.messages >= min_expected, "messages {} < {min_expected}", out.messages);
        assert!(out.bytes > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_rbs(&RbsParams::default(), 5);
        let b = run_rbs(&RbsParams::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_cost_tradeoff_more_receivers_cost_more() {
        let small = run_rbs(&RbsParams { receivers: 4, ..Default::default() }, 1);
        let large = run_rbs(&RbsParams { receivers: 16, ..Default::default() }, 1);
        assert!(large.messages > small.messages * 2);
    }
}
