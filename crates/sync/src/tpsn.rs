//! TPSN-like sender-receiver pair-wise synchronization.
//!
//! TPSN (Ganeriwal et al.) builds a spanning tree and synchronizes each
//! node to its parent with a two-way exchange: the child sends a request
//! stamped with its local T1; the parent receives at its local T2 and
//! replies carrying (T1, T2, T3 = parent send time); the child receives at
//! its local T4 and estimates its offset relative to the parent as
//!
//! ```text
//! offset = ((T2 − T1) − (T4 − T3)) / 2
//! ```
//!
//! exact under symmetric delays; the residual error is half the request /
//! reply delay *asymmetry*. We simulate a star tree rooted at the reference
//! (depth 1) — enough to reproduce the protocol's accuracy and cost shape.
//! Multiple rounds are averaged.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_clocks::Oscillator;
use psn_sim::delay::DelayModel;
use psn_sim::engine::{Actor, Context, Engine, Message};
use psn_sim::network::{ActorId, NetworkConfig};
use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

use crate::rbs::SyncOutcome;
use crate::skew::max_pairwise_skew;

/// Parameters of one TPSN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpsnParams {
    /// Number of child nodes to synchronize to the reference.
    pub children: usize,
    /// Rounds of exchange per child (estimates are averaged).
    pub rounds: usize,
    /// Delay jitter bound (per message, uniform over
    /// `[propagation, propagation + jitter]`).
    pub jitter: SimDuration,
    /// Fixed symmetric propagation delay.
    pub propagation: SimDuration,
    /// Max initial clock offset of the children.
    pub max_offset: SimDuration,
    /// Max |drift| in ppm.
    pub max_drift_ppm: f64,
}

impl Default for TpsnParams {
    fn default() -> Self {
        TpsnParams {
            children: 8,
            rounds: 4,
            jitter: SimDuration::from_micros(100),
            propagation: SimDuration::from_micros(5),
            max_offset: SimDuration::from_millis(20),
            max_drift_ppm: 30.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum TpsnMsg {
    Request { t1: i64 },
    Reply { t1: i64, t2: i64, t3: i64 },
}

impl Message for TpsnMsg {
    fn size_bytes(&self) -> usize {
        match self {
            TpsnMsg::Request { .. } => 8,
            TpsnMsg::Reply { .. } => 24,
        }
    }
}

/// The parent/reference: replies to requests with its own readings. Its
/// oscillator is the time standard (index 0 in the shared vector).
struct Parent {
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
}
impl Actor<TpsnMsg> for Parent {
    fn on_message(&mut self, ctx: &mut Context<'_, TpsnMsg>, from: ActorId, msg: TpsnMsg) {
        if let TpsnMsg::Request { t1 } = msg {
            let t2 = self.oscillators.lock()[0].read(ctx.now()).0;
            let t3 = t2; // reply immediately: T3 == T2 in simulation
            ctx.send(from, TpsnMsg::Reply { t1, t2, t3 });
        }
    }
}

/// A child: performs `rounds` exchanges, averages the offset estimates,
/// and corrects its oscillator.
struct Child {
    index: usize, // 1-based index into the shared oscillator vec
    rounds: usize,
    done_rounds: usize,
    estimates: Vec<i64>,
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
}

impl Child {
    fn send_request(&self, ctx: &mut Context<'_, TpsnMsg>) {
        let t1 = self.oscillators.lock()[self.index].read(ctx.now()).0;
        ctx.send(0, TpsnMsg::Request { t1 });
    }
}

impl Actor<TpsnMsg> for Child {
    fn on_start(&mut self, ctx: &mut Context<'_, TpsnMsg>) {
        self.send_request(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, TpsnMsg>, _from: ActorId, msg: TpsnMsg) {
        if let TpsnMsg::Reply { t1, t2, t3 } = msg {
            let t4 = self.oscillators.lock()[self.index].read(ctx.now()).0;
            // offset of child relative to parent.
            let offset = ((t2 - t1) - (t4 - t3)) / 2;
            self.estimates.push(offset);
            self.done_rounds += 1;
            if self.done_rounds < self.rounds {
                self.send_request(ctx);
            } else {
                let mean: i64 = self.estimates.iter().sum::<i64>() / self.estimates.len() as i64;
                // offset = parent − child, so the child adds it.
                self.oscillators.lock()[self.index].adjust_offset(mean);
            }
        }
    }
}

/// Run the protocol; returns the outcome (skews measured across the
/// reference plus all children).
pub fn run_tpsn(params: &TpsnParams, seed: u64) -> SyncOutcome {
    assert!(params.children >= 1, "need at least one child");
    assert!(params.rounds >= 1, "need at least one round");
    let factory = RngFactory::new(seed);
    let mut hw_rng = factory.labeled_stream("tpsn.hardware");
    let mut oscillators = vec![Oscillator::perfect()]; // the reference
    oscillators.extend(
        (0..params.children)
            .map(|_| Oscillator::random(&mut hw_rng, params.max_offset, params.max_drift_ppm, 1)),
    );
    let initial_skew = max_pairwise_skew(&oscillators, SimTime::ZERO);
    let oscillators = Arc::new(Mutex::new(oscillators));

    let net = NetworkConfig::full_mesh(
        params.children + 1,
        DelayModel::DeltaBounded {
            min: params.propagation,
            max: params.propagation + params.jitter,
        },
    );
    let mut engine: Engine<TpsnMsg> = Engine::new(net, seed);
    engine.add_actor(Box::new(Parent { oscillators: Arc::clone(&oscillators) }));
    for index in 1..=params.children {
        engine.add_actor(Box::new(Child {
            index,
            rounds: params.rounds,
            done_rounds: 0,
            estimates: Vec::new(),
            oscillators: Arc::clone(&oscillators),
        }));
    }
    let completed_at = engine.run();
    let achieved_skew = max_pairwise_skew(&oscillators.lock(), completed_at);
    SyncOutcome {
        achieved_skew,
        initial_skew,
        messages: engine.stats().messages_sent,
        bytes: engine.stats().bytes_sent,
        completed_at,
    }
}

/// Parameters for a multi-hop TPSN chain (a degenerate spanning tree of
/// the given depth: node 0 is the reference, node k syncs to node k−1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpsnChainParams {
    /// Number of hops (nodes = depth + 1).
    pub depth: usize,
    /// Rounds of exchange per hop (averaged).
    pub rounds: usize,
    /// Delay jitter bound per message.
    pub jitter: SimDuration,
    /// Fixed symmetric propagation delay.
    pub propagation: SimDuration,
    /// Max initial clock offset.
    pub max_offset: SimDuration,
    /// Max |drift| in ppm.
    pub max_drift_ppm: f64,
    /// Gap between levels: node k starts its exchange this long after
    /// node k−1 (TPSN's level-by-level synchronization phase).
    pub level_stagger: SimDuration,
}

impl Default for TpsnChainParams {
    fn default() -> Self {
        TpsnChainParams {
            depth: 4,
            rounds: 4,
            jitter: SimDuration::from_micros(100),
            propagation: SimDuration::from_micros(5),
            max_offset: SimDuration::from_millis(20),
            max_drift_ppm: 30.0,
            level_stagger: SimDuration::from_millis(50),
        }
    }
}

/// Outcome of a chain run: per-hop absolute error vs the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainOutcome {
    /// `errors[k]` = |node k+1's clock − reference| after sync, ns.
    pub hop_errors_ns: Vec<u64>,
    /// Messages consumed.
    pub messages: u64,
}

/// A chain node: waits for its level's turn, then runs `rounds` exchanges
/// with its parent (node id − 1) and corrects itself.
struct ChainNode {
    index: usize,
    rounds: usize,
    done_rounds: usize,
    estimates: Vec<i64>,
    start_after: SimDuration,
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
}

impl ChainNode {
    fn send_request(&self, ctx: &mut Context<'_, TpsnMsg>) {
        let t1 = self.oscillators.lock()[self.index].read(ctx.now()).0;
        ctx.send(self.index - 1, TpsnMsg::Request { t1 });
    }
}

impl Actor<TpsnMsg> for ChainNode {
    fn on_start(&mut self, ctx: &mut Context<'_, TpsnMsg>) {
        if self.index > 0 {
            ctx.set_timer(self.start_after, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, TpsnMsg>, _tag: u64) {
        self.send_request(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, TpsnMsg>, from: ActorId, msg: TpsnMsg) {
        match msg {
            TpsnMsg::Request { t1 } => {
                // Acting as parent for the next hop.
                let t2 = self.oscillators.lock()[self.index].read(ctx.now()).0;
                ctx.send(from, TpsnMsg::Reply { t1, t2, t3: t2 });
            }
            TpsnMsg::Reply { t1, t2, t3 } => {
                let t4 = self.oscillators.lock()[self.index].read(ctx.now()).0;
                let offset = ((t2 - t1) - (t4 - t3)) / 2;
                self.estimates.push(offset);
                self.done_rounds += 1;
                if self.done_rounds < self.rounds {
                    self.send_request(ctx);
                } else {
                    let mean: i64 =
                        self.estimates.iter().sum::<i64>() / self.estimates.len() as i64;
                    self.oscillators.lock()[self.index].adjust_offset(mean);
                }
            }
        }
    }
}

/// Run a TPSN chain; error accumulates hop by hop (each hop adds an
/// independent asymmetry residual — the reason TPSN trees are kept
/// shallow).
pub fn run_tpsn_chain(params: &TpsnChainParams, seed: u64) -> ChainOutcome {
    assert!(params.depth >= 1, "need at least one hop");
    let factory = RngFactory::new(seed);
    let mut hw = factory.labeled_stream("tpsn.chain.hw");
    let mut oscillators = vec![Oscillator::perfect()];
    oscillators.extend(
        (0..params.depth)
            .map(|_| Oscillator::random(&mut hw, params.max_offset, params.max_drift_ppm, 1)),
    );
    let oscillators = Arc::new(Mutex::new(oscillators));

    let net = NetworkConfig {
        topology: psn_sim::network::Topology::ring(params.depth + 1),
        delay: DelayModel::DeltaBounded {
            min: params.propagation,
            max: params.propagation + params.jitter,
        },
        loss: psn_sim::loss::LossModel::None,
        fifo: true,
    };
    // A ring connects k to k±1 (and wraps 0 to depth — harmless: no
    // traffic crosses that edge).
    let mut engine: Engine<TpsnMsg> = Engine::new(net, seed);
    for index in 0..=params.depth {
        engine.add_actor(Box::new(ChainNode {
            index,
            rounds: params.rounds,
            done_rounds: 0,
            estimates: Vec::new(),
            start_after: params.level_stagger * index as u64,
            oscillators: Arc::clone(&oscillators),
        }));
    }
    let end = engine.run();
    let oscs = oscillators.lock();
    let reference = oscs[0].read(end).0;
    let hop_errors_ns =
        (1..=params.depth).map(|k| oscs[k].read(end).0.abs_diff(reference)).collect();
    ChainOutcome { hop_errors_ns, messages: engine.stats().messages_sent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpsn_synchronizes() {
        let out = run_tpsn(&TpsnParams::default(), 42);
        assert!(
            out.achieved_skew.as_nanos() * 10 < out.initial_skew.as_nanos(),
            "achieved {} vs initial {}",
            out.achieved_skew,
            out.initial_skew
        );
    }

    #[test]
    fn error_bounded_by_jitter() {
        // Residual error per child ≤ jitter/2 (asymmetry bound) plus drift;
        // across children pairwise ≤ jitter plus slack.
        let params = TpsnParams { jitter: SimDuration::from_micros(200), ..Default::default() };
        let out = run_tpsn(&params, 9);
        assert!(
            out.achieved_skew <= SimDuration::from_micros(300),
            "skew {} too large",
            out.achieved_skew
        );
    }

    #[test]
    fn message_cost_is_two_per_round_per_child() {
        let params = TpsnParams { children: 5, rounds: 3, ..Default::default() };
        let out = run_tpsn(&params, 1);
        assert_eq!(out.messages, 2 * 5 * 3, "request + reply per round per child");
    }

    #[test]
    fn more_rounds_usually_tighten() {
        let mean_skew = |rounds: usize| -> f64 {
            (0..20)
                .map(|s| {
                    run_tpsn(&TpsnParams { rounds, ..Default::default() }, s)
                        .achieved_skew
                        .as_nanos() as f64
                })
                .sum::<f64>()
                / 20.0
        };
        let one = mean_skew(1);
        let eight = mean_skew(8);
        assert!(eight < one, "averaging helps: 1→{one}, 8→{eight}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_tpsn(&TpsnParams::default(), 3), run_tpsn(&TpsnParams::default(), 3));
    }

    #[test]
    fn chain_synchronizes_every_hop() {
        let out = run_tpsn_chain(&TpsnChainParams::default(), 42);
        assert_eq!(out.hop_errors_ns.len(), 4);
        for (k, &err) in out.hop_errors_ns.iter().enumerate() {
            // Initial offsets were up to 20 ms; post-sync errors are
            // bounded by accumulated jitter (≤ depth × jitter/2 + drift).
            assert!(
                err < 1_000_000,
                "hop {} error {}ns should be ≪ the 20ms raw offsets",
                k + 1,
                err
            );
        }
    }

    #[test]
    fn chain_error_accumulates_with_depth() {
        // Mean error of the last hop grows with depth (random-walk
        // accumulation of per-hop asymmetry residuals).
        let mean_last_error = |depth: usize| -> f64 {
            (0..30)
                .map(|s| {
                    let params = TpsnChainParams { depth, ..Default::default() };
                    *run_tpsn_chain(&params, s).hop_errors_ns.last().expect("hops") as f64
                })
                .sum::<f64>()
                / 30.0
        };
        let shallow = mean_last_error(1);
        let deep = mean_last_error(8);
        assert!(deep > shallow * 1.5, "depth-8 error {deep} should exceed depth-1 error {shallow}");
    }

    #[test]
    fn chain_message_cost() {
        let params = TpsnChainParams { depth: 5, rounds: 3, ..Default::default() };
        let out = run_tpsn_chain(&params, 1);
        assert_eq!(out.messages, 2 * 5 * 3, "request+reply per round per hop");
    }

    #[test]
    fn chain_deterministic() {
        assert_eq!(
            run_tpsn_chain(&TpsnChainParams::default(), 9),
            run_tpsn_chain(&TpsnChainParams::default(), 9)
        );
    }
}
