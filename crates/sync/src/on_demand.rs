//! On-demand synchronization for simultaneous task execution
//! (paper §4.2, citing Baumgartner et al. \[3\]).
//!
//! "The protocol performs on-demand clock synchronization and messages
//! required for continuous synchronization are avoided. … The network
//! stays unsynchronized most of the time but collaborates shortly before
//! the common event. An application is the collaborative sensing of highly
//! dynamic effects, e.g., locating the source of an audio signal, or
//! simultaneous playback of music."
//!
//! Protocol: an initiator announces a task to fire `lead` after its own
//! clock reading `T`. Each node runs one two-way exchange with the
//! initiator (TPSN-style offset estimate), converts `T + lead` into its
//! local clock, and fires its timer then. We measure the **spread** of
//! ground-truth firing times — with sync it is bounded by the exchange
//! jitter; without it, by the raw clock offsets.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psn_clocks::Oscillator;
use psn_sim::delay::DelayModel;
use psn_sim::engine::{Actor, Context, Engine, Message};
use psn_sim::network::{ActorId, NetworkConfig};
use psn_sim::rng::RngFactory;
use psn_sim::time::{SimDuration, SimTime};

/// Parameters of one on-demand run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnDemandParams {
    /// Number of follower nodes (the initiator is extra).
    pub nodes: usize,
    /// How far ahead (initiator-clock time) the common task fires.
    pub lead: SimDuration,
    /// Message delay jitter bound.
    pub jitter: SimDuration,
    /// Fixed propagation delay.
    pub propagation: SimDuration,
    /// Max initial clock offset of followers.
    pub max_offset: SimDuration,
    /// Max |drift| in ppm.
    pub max_drift_ppm: f64,
    /// If false, skip the exchange and fire on raw local clocks — the
    /// unsynchronized baseline.
    pub synchronize: bool,
}

impl Default for OnDemandParams {
    fn default() -> Self {
        OnDemandParams {
            nodes: 8,
            lead: SimDuration::from_secs(2),
            jitter: SimDuration::from_micros(200),
            propagation: SimDuration::from_micros(10),
            max_offset: SimDuration::from_millis(50),
            max_drift_ppm: 40.0,
            synchronize: true,
        }
    }
}

/// Outcome: when each node actually fired, in ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnDemandOutcome {
    /// Ground-truth firing time of every node (initiator first).
    pub fire_times: Vec<SimTime>,
    /// max − min of the firing times: the simultaneity error.
    pub spread: SimDuration,
    /// Messages spent (0 when `synchronize` is false).
    pub messages: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum OdMsg {
    /// Initiator → all: the task fires at initiator-clock `at_reading`.
    Announce { at_reading: i64 },
    /// Follower → initiator: two-way exchange request (t1 = follower clock).
    Probe { t1: i64 },
    /// Initiator → follower: reply with its receive/send readings.
    ProbeReply { t1: i64, t2: i64 },
}
impl Message for OdMsg {
    fn size_bytes(&self) -> usize {
        match self {
            OdMsg::Announce { .. } => 8,
            OdMsg::Probe { .. } => 8,
            OdMsg::ProbeReply { .. } => 16,
        }
    }
}

struct Initiator {
    lead: SimDuration,
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
    fire_times: Arc<Mutex<Vec<Option<SimTime>>>>,
}
impl Actor<OdMsg> for Initiator {
    fn on_start(&mut self, ctx: &mut Context<'_, OdMsg>) {
        let now_reading = self.oscillators.lock()[0].read(ctx.now()).0;
        let at_reading = now_reading + self.lead.as_nanos() as i64;
        ctx.broadcast(OdMsg::Announce { at_reading });
        ctx.set_timer(self.lead, 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, OdMsg>, from: ActorId, msg: OdMsg) {
        if let OdMsg::Probe { t1 } = msg {
            let t2 = self.oscillators.lock()[0].read(ctx.now()).0;
            ctx.send(from, OdMsg::ProbeReply { t1, t2 });
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, OdMsg>, _tag: u64) {
        self.fire_times.lock()[0] = Some(ctx.now());
    }
}

struct Follower {
    index: usize,
    synchronize: bool,
    oscillators: Arc<Mutex<Vec<Oscillator>>>,
    fire_times: Arc<Mutex<Vec<Option<SimTime>>>>,
    target_reading: Option<i64>, // initiator-clock firing reading
}

impl Follower {
    fn schedule_fire(&self, ctx: &mut Context<'_, OdMsg>, offset_est: i64) {
        // Convert the initiator-clock target into our clock, then into a
        // delay from now. offset_est = our_clock − initiator_clock.
        let target = self.target_reading.expect("announced") + offset_est;
        let now_local = self.oscillators.lock()[self.index].read(ctx.now()).0;
        let wait = (target - now_local).max(0) as u64;
        ctx.set_timer(SimDuration::from_nanos(wait), 1);
    }
}

impl Actor<OdMsg> for Follower {
    fn on_message(&mut self, ctx: &mut Context<'_, OdMsg>, _from: ActorId, msg: OdMsg) {
        match msg {
            OdMsg::Announce { at_reading } => {
                self.target_reading = Some(at_reading);
                if self.synchronize {
                    let t1 = self.oscillators.lock()[self.index].read(ctx.now()).0;
                    ctx.send(0, OdMsg::Probe { t1 });
                } else {
                    // Fire on the raw local clock (no offset estimate).
                    self.schedule_fire(ctx, 0);
                }
            }
            OdMsg::ProbeReply { t1, t2 } => {
                let t4 = self.oscillators.lock()[self.index].read(ctx.now()).0;
                // Two-way estimate assuming symmetric delay:
                // our_clock − initiator_clock ≈ ((t1 − t2) + (t4 − t2)) / 2.
                let offset_est = ((t1 - t2) + (t4 - t2)) / 2;
                self.schedule_fire(ctx, offset_est);
            }
            OdMsg::Probe { .. } => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, OdMsg>, _tag: u64) {
        self.fire_times.lock()[self.index] = Some(ctx.now());
    }
}

/// Run the protocol.
pub fn run_on_demand(params: &OnDemandParams, seed: u64) -> OnDemandOutcome {
    assert!(params.nodes >= 1, "need at least one follower");
    let factory = RngFactory::new(seed);
    let mut hw = factory.labeled_stream("ondemand.hw");
    let mut oscillators = vec![Oscillator::perfect()];
    oscillators.extend(
        (0..params.nodes)
            .map(|_| Oscillator::random(&mut hw, params.max_offset, params.max_drift_ppm, 1)),
    );
    let oscillators = Arc::new(Mutex::new(oscillators));
    let fire_times = Arc::new(Mutex::new(vec![None; params.nodes + 1]));

    let net = NetworkConfig::full_mesh(
        params.nodes + 1,
        DelayModel::DeltaBounded {
            min: params.propagation,
            max: params.propagation + params.jitter,
        },
    );
    let mut engine: Engine<OdMsg> = Engine::new(net, seed);
    engine.add_actor(Box::new(Initiator {
        lead: params.lead,
        oscillators: Arc::clone(&oscillators),
        fire_times: Arc::clone(&fire_times),
    }));
    for index in 1..=params.nodes {
        engine.add_actor(Box::new(Follower {
            index,
            synchronize: params.synchronize,
            oscillators: Arc::clone(&oscillators),
            fire_times: Arc::clone(&fire_times),
            target_reading: None,
        }));
    }
    engine.run();
    let fire_times: Vec<SimTime> =
        fire_times.lock().iter().map(|t| t.expect("every node fired")).collect();
    let min = fire_times.iter().min().copied().expect("nonempty");
    let max = fire_times.iter().max().copied().expect("nonempty");
    OnDemandOutcome {
        spread: max.saturating_since(min),
        fire_times,
        messages: engine.stats().messages_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_firing_is_tight() {
        let out = run_on_demand(&OnDemandParams::default(), 42);
        // Spread bounded by a few times the jitter (exchange asymmetry +
        // drift over the 2s lead), far below the 50ms raw offsets.
        assert!(out.spread < SimDuration::from_millis(2), "spread {} too large", out.spread);
    }

    #[test]
    fn unsynchronized_baseline_is_wide() {
        let params = OnDemandParams { synchronize: false, ..Default::default() };
        let sync = run_on_demand(&OnDemandParams::default(), 7);
        let raw = run_on_demand(&params, 7);
        assert!(
            raw.spread.as_nanos() > sync.spread.as_nanos() * 10,
            "raw {} vs sync {}",
            raw.spread,
            sync.spread
        );
    }

    #[test]
    fn message_cost_is_on_demand_only() {
        let params = OnDemandParams { nodes: 6, ..Default::default() };
        let out = run_on_demand(&params, 3);
        // announce (6) + probe (6) + reply (6) = 18; nothing periodic.
        assert_eq!(out.messages, 18);
        let raw = run_on_demand(&OnDemandParams { synchronize: false, ..params }, 3);
        assert_eq!(raw.messages, 6, "baseline only pays the announcement");
    }

    #[test]
    fn all_nodes_fire_near_the_lead() {
        let params = OnDemandParams::default();
        let out = run_on_demand(&params, 11);
        for &t in &out.fire_times {
            let err = t.as_secs_f64() - params.lead.as_secs_f64();
            assert!(err.abs() < 0.1, "fired at {t}, expected ≈{}", params.lead);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            run_on_demand(&OnDemandParams::default(), 5),
            run_on_demand(&OnDemandParams::default(), 5)
        );
    }

    #[test]
    fn spread_scales_with_jitter() {
        let tight = run_on_demand(
            &OnDemandParams { jitter: SimDuration::from_micros(10), ..Default::default() },
            9,
        );
        let loose = run_on_demand(
            &OnDemandParams { jitter: SimDuration::from_millis(20), ..Default::default() },
            9,
        );
        assert!(loose.spread > tight.spread);
    }
}
