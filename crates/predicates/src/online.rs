//! Online (streaming) every-occurrence detection at the root.
//!
//! The execution model (§2.2) calls for **on-line** detection: reports
//! stream into P₀ and the predicate must be evaluated as the observation
//! unfolds — including *each* subsequent occurrence (§3.3). The offline
//! sweep in [`crate::detect`] sorts the full log; this module does the same
//! job incrementally with a **hold-back watermark**: a report is released
//! for evaluation only once `hold_back` of (root-local arrival) time has
//! passed since it arrived, by which point — with Δ-bounded delays and
//! `hold_back ≥ 2Δ` — every report that belongs before it in strobe order
//! has also arrived. Reports that still arrive "late" (after their stamp
//! position was evaluated) are applied immediately and counted; with an
//! adequate hold-back on a lossless network there are none, and the online
//! detector's output equals the offline sweep's exactly (tested).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use psn_core::ReceivedReport;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::{AttrKey, AttrValue, WorldState};

use crate::detect::Detection;
use crate::metrics::DetectorMetrics;
use crate::spec::Predicate;

type OrderKey = (u64, usize, usize);

/// A point-in-time readout of a streaming detector — what a live query
/// (`psn-serve`'s `status` request) reports without disturbing the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineStatus {
    /// Does the predicate hold in the currently reconstructed state?
    pub holds: bool,
    /// Truth time the open occurrence started (`None` when not holding;
    /// `Some(0)` covers a predicate true at deployment).
    pub open_since: Option<SimTime>,
    /// Occurrences closed so far.
    pub occurrences: usize,
    /// Reports currently held back awaiting their watermark.
    pub buffered: usize,
    /// Reports applied after their strobe-order position had been passed.
    pub late_reports: usize,
}

fn strobe_key(r: &ReceivedReport) -> OrderKey {
    (r.report.stamps.strobe_scalar.value, r.report.process, r.report.sense_seq)
}

/// A streaming detector over the scalar-strobe order.
pub struct OnlineDetector {
    predicate: Predicate,
    state: HashMap<AttrKey, AttrValue>,
    holds: bool,
    hold_back: SimDuration,
    /// Buffered, not-yet-released reports.
    buffer: Vec<ReceivedReport>,
    detections: Vec<Detection>,
    /// (truth start, arrival of the rising-edge report — None for the
    /// deployment-time open interval).
    open: Option<(SimTime, Option<SimTime>)>,
    last_released: Option<OrderKey>,
    late_reports: usize,
    metrics: DetectorMetrics,
}

impl OnlineDetector {
    /// A detector for `predicate`, holding each report back `hold_back`
    /// before evaluation (use ≥ 2Δ for in-order release under Δ-bounded
    /// delays). `initial` is the deployment-time observed state.
    pub fn new(predicate: Predicate, initial: &WorldState, hold_back: SimDuration) -> Self {
        let state: HashMap<AttrKey, AttrValue> = predicate
            .variables()
            .into_iter()
            .map(|k| (k, initial.get(k).unwrap_or(AttrValue::Int(0))))
            .collect();
        let holds = predicate.eval(&|k| state.get(&k).copied().unwrap_or(AttrValue::Int(0)));
        let open = if holds { Some((SimTime::ZERO, None)) } else { None };
        OnlineDetector {
            predicate,
            state,
            holds,
            hold_back,
            buffer: Vec::new(),
            detections: Vec::new(),
            open,
            last_released: None,
            late_reports: 0,
            metrics: DetectorMetrics::disabled(),
        }
    }

    /// Record occurrences, detection latency, and buffer occupancy into
    /// `metrics` (builder style). Recording never changes detection output.
    pub fn with_metrics(mut self, metrics: DetectorMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Feed the next report **in arrival order**. Releases (and evaluates)
    /// every buffered report whose hold-back has expired.
    pub fn offer(&mut self, r: &ReceivedReport) {
        let now = r.arrived_at;
        self.buffer.push(r.clone());
        self.metrics.buffer_depth.set(self.buffer.len() as u64);
        let watermark =
            SimTime::from_nanos(now.as_nanos().saturating_sub(self.hold_back.as_nanos()));
        self.release_until(watermark);
    }

    fn release_until(&mut self, watermark: SimTime) {
        // Strictly in key order: release the minimum-key buffered report
        // while it is due; stop at the first not-yet-due one. (Releasing a
        // due report over a smaller-key, recently-arrived one would
        // evaluate out of strobe order.)
        loop {
            let min_idx =
                self.buffer.iter().enumerate().min_by_key(|(_, b)| strobe_key(b)).map(|(i, _)| i);
            let Some(i) = min_idx else { break };
            if self.buffer[i].arrived_at > watermark {
                break;
            }
            let b = self.buffer.remove(i);
            self.apply(&b);
        }
    }

    fn apply(&mut self, r: &ReceivedReport) {
        let key = strobe_key(r);
        if let Some(last) = self.last_released {
            if key < last {
                self.late_reports += 1;
            }
        }
        self.last_released = Some(self.last_released.unwrap_or(key).max(key));
        if self.state.contains_key(&r.report.key) {
            self.state.insert(r.report.key, r.report.value);
        }
        let now_holds =
            self.predicate.eval(&|k| self.state.get(&k).copied().unwrap_or(AttrValue::Int(0)));
        match (self.holds, now_holds) {
            (false, true) => self.open = Some((r.report.stamps.truth, Some(r.arrived_at))),
            (true, false) => {
                let (start, seen_at) = self.open.take().expect("open interval");
                let d = Detection { start, end: Some(r.report.stamps.truth), borderline: false };
                self.metrics.on_occurrence(&d, seen_at);
                self.detections.push(d);
            }
            _ => {}
        }
        self.holds = now_holds;
    }

    /// Does the predicate hold in the currently reconstructed state?
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// Snapshot the detector's current status (non-destructive — the
    /// stream continues unaffected).
    pub fn status(&self) -> OnlineStatus {
        OnlineStatus {
            holds: self.holds,
            open_since: self.open.map(|(start, _)| start),
            occurrences: self.detections.len(),
            buffered: self.buffer.len(),
            late_reports: self.late_reports,
        }
    }

    /// Occurrences detected (closed) so far.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Reports that arrived after their strobe-order position had already
    /// been evaluated (0 with adequate hold-back on a lossless network).
    pub fn late_reports(&self) -> usize {
        self.late_reports
    }

    /// Number of currently buffered (held-back) reports.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Flush all buffered reports (end of stream) and return the full
    /// detection list.
    pub fn finish(mut self) -> Vec<Detection> {
        self.release_until(SimTime::MAX);
        if let Some((start, seen_at)) = self.open.take() {
            let d = Detection { start, end: None, borderline: false };
            self.metrics.on_occurrence(&d, seen_at);
            self.detections.push(d);
        }
        self.detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_occurrences, Discipline};
    use psn_core::{run_execution, ExecutionConfig};
    use psn_sim::delay::DelayModel;
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};

    fn fixture(delta_ms: u64, seed: u64) -> (psn_world::Scenario, psn_core::ExecutionTrace) {
        let params = ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 2.0,
            mean_stay: psn_sim::time::SimDuration::from_secs(45),
            duration: SimTime::from_secs(400),
            capacity: 70,
        };
        let scenario = exhibition::generate(&params, seed);
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
            seed,
            ..Default::default()
        };
        let trace = run_execution(&scenario, &cfg);
        (scenario, trace)
    }

    #[test]
    fn online_equals_offline_with_adequate_holdback() {
        for seed in 0..4 {
            let (scenario, trace) = fixture(200, seed);
            let pred = Predicate::occupancy_over(3, 70);
            let init = scenario.timeline.initial_state();
            let mut online = OnlineDetector::new(
                pred.clone(),
                &init,
                SimDuration::from_millis(400), // 2Δ
            );
            for r in &trace.log.reports {
                online.offer(r);
            }
            let online_out = online.finish();
            let offline: Vec<Detection> =
                detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe)
                    .into_iter()
                    .map(|d| Detection { borderline: false, ..d })
                    .collect();
            assert_eq!(online_out, offline, "seed {seed}");
        }
    }

    #[test]
    fn no_late_reports_with_adequate_holdback() {
        let (scenario, trace) = fixture(300, 9);
        let pred = Predicate::occupancy_over(3, 70);
        let mut online = OnlineDetector::new(
            pred,
            &scenario.timeline.initial_state(),
            SimDuration::from_millis(600),
        );
        for r in &trace.log.reports {
            online.offer(r);
        }
        assert_eq!(online.late_reports(), 0);
        let _ = online.finish();
    }

    #[test]
    fn zero_holdback_still_detects_but_may_reorder() {
        // With no hold-back the detector evaluates eagerly in arrival
        // order — still every-occurrence, possibly with late reports.
        let (scenario, trace) = fixture(500, 5);
        let pred = Predicate::occupancy_over(3, 70);
        let mut online =
            OnlineDetector::new(pred, &scenario.timeline.initial_state(), SimDuration::ZERO);
        for r in &trace.log.reports {
            online.offer(r);
        }
        let n_late = online.late_reports();
        let out = online.finish();
        assert!(!out.is_empty(), "occurrences still detected");
        assert!(n_late > 0, "Δ=500ms with zero hold-back must see stamp reordering");
    }

    #[test]
    fn buffering_is_bounded_by_holdback_window() {
        let (scenario, trace) = fixture(100, 3);
        let pred = Predicate::occupancy_over(3, 70);
        let mut online = OnlineDetector::new(
            pred,
            &scenario.timeline.initial_state(),
            SimDuration::from_millis(200),
        );
        let mut max_buf = 0;
        for r in &trace.log.reports {
            online.offer(r);
            max_buf = max_buf.max(online.buffered());
        }
        // ~4 ev/s world rate × 0.2 s window ⇒ a handful in flight.
        assert!(max_buf < 50, "buffer stayed bounded, saw {max_buf}");
        let _ = online.finish();
    }

    #[test]
    fn instrumented_online_detector_is_identical_and_records() {
        let (scenario, trace) = fixture(200, 2);
        let pred = Predicate::occupancy_over(3, 70);
        let init = scenario.timeline.initial_state();
        let hold = SimDuration::from_millis(400);
        let mut plain = OnlineDetector::new(pred.clone(), &init, hold);
        let m = psn_sim::metrics::Metrics::new();
        let mut inst = OnlineDetector::new(pred, &init, hold)
            .with_metrics(crate::metrics::DetectorMetrics::attach(&m));
        for r in &trace.log.reports {
            plain.offer(r);
            inst.offer(r);
        }
        let plain_out = plain.finish();
        let inst_out = inst.finish();
        assert_eq!(plain_out, inst_out, "metrics must not change online output");
        let snap = m.snapshot();
        assert_eq!(snap.counter("detector.occurrences"), Some(inst_out.len() as u64));
        let (_, buf_high) = snap.gauge("detector.buffer_depth").unwrap();
        assert!(buf_high >= 1, "hold-back keeps at least one report buffered");
    }

    /// Like [`fixture`] but with a fault-plane channel script installed:
    /// reports toward the root are probabilistically reordered (and
    /// optionally dropped via the loss model), exercising the late-arrival
    /// path with *real* out-of-order deliveries rather than synthetic ones.
    /// Loss is injected as a channel-fault rule on the root-bound channel
    /// (not the global loss model): losing inter-sensor *strobes* makes a
    /// sensor's scalar clock lag unboundedly behind real time, and no
    /// finite hold-back restores strobe order — the paper's 2Δ bound
    /// assumes the strobe dissemination itself is intact.
    fn faulted_fixture(
        delta_ms: u64,
        seed: u64,
        reorder_extra_ms: u64,
        drop_prob: f64,
    ) -> (psn_world::Scenario, psn_core::ExecutionTrace) {
        use psn_sim::fault::{ChannelEffect, ChannelFaultRule, FaultScript, FaultSpec};
        let params = ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 2.0,
            mean_stay: psn_sim::time::SimDuration::from_secs(45),
            duration: SimTime::from_secs(400),
            capacity: 70,
        };
        let scenario = exhibition::generate(&params, seed);
        let to_root = |prob: f64, effect: ChannelEffect| {
            FaultSpec::Channel(ChannelFaultRule {
                from: None,
                to: Some(3), // the root
                prob,
                effect,
                duration: None,
            })
        };
        let mut script = FaultScript::new().with(
            SimTime::ZERO,
            to_root(
                0.3,
                ChannelEffect::Reorder { extra: SimDuration::from_millis(reorder_extra_ms) },
            ),
        );
        if drop_prob > 0.0 {
            script = script.with(SimTime::ZERO, to_root(drop_prob, ChannelEffect::Drop));
        }
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
            seed,
            faults: Some(script),
            ..Default::default()
        };
        let trace = run_execution(&scenario, &cfg);
        (scenario, trace)
    }

    #[test]
    fn injected_reordering_hits_the_late_arrival_path() {
        // Reordered reports overtake each other on the wire; with zero
        // hold-back every overtaken report is applied late — and counted.
        let (scenario, trace) = faulted_fixture(150, 11, 600, 0.0);
        assert!(trace.faults.as_ref().unwrap().reordered > 0, "the script must actually fire");
        let pred = Predicate::occupancy_over(3, 70);
        let mut online =
            OnlineDetector::new(pred, &scenario.timeline.initial_state(), SimDuration::ZERO);
        for r in &trace.log.reports {
            online.offer(r);
        }
        assert!(online.late_reports() > 0, "overtaken reports must be counted as late");
        assert!(!online.finish().is_empty(), "late application still detects occurrences");
    }

    #[test]
    fn online_matches_offline_under_loss_and_reorder_when_holdback_suffices() {
        // Hold-back ≥ 2Δ + reorder extra restores strobe order at release
        // time, so even on a faulted, lossy channel the streaming verdict
        // set equals the offline sweep over the same (loss-thinned) log.
        for seed in [1u64, 6, 12] {
            let (scenario, trace) = faulted_fixture(150, seed, 300, 0.05);
            let stats = trace.faults.as_ref().unwrap();
            assert!(stats.reordered > 0, "seed {seed}: reordering must fire");
            assert!(stats.dropped_by_channel > 0, "seed {seed}: loss must fire");
            let pred = Predicate::occupancy_over(3, 70);
            let init = scenario.timeline.initial_state();
            let mut online = OnlineDetector::new(
                pred.clone(),
                &init,
                SimDuration::from_millis(2 * 150 + 300 + 50),
            );
            for r in &trace.log.reports {
                online.offer(r);
            }
            assert_eq!(online.late_reports(), 0, "seed {seed}: hold-back must suffice");
            let online_out = online.finish();
            let offline: Vec<Detection> =
                detect_occurrences(&trace, &pred, &init, Discipline::ScalarStrobe)
                    .into_iter()
                    .map(|d| Detection { borderline: false, ..d })
                    .collect();
            assert_eq!(online_out, offline, "seed {seed}");
        }
    }

    #[test]
    fn detections_stream_incrementally() {
        let (scenario, trace) = fixture(100, 7);
        let pred = Predicate::occupancy_over(3, 70);
        let mut online = OnlineDetector::new(
            pred.clone(),
            &scenario.timeline.initial_state(),
            SimDuration::from_millis(200),
        );
        let mut mid_count = 0;
        for (i, r) in trace.log.reports.iter().enumerate() {
            online.offer(r);
            if i == trace.log.reports.len() / 2 {
                mid_count = online.detections().len();
            }
        }
        let total = online.finish().len();
        if total >= 2 {
            assert!(mid_count > 0, "some detections must surface before the end");
        }
        assert!(mid_count <= total);
    }
}
