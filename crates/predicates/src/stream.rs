//! Streaming `Possibly` / `Definitely` with O(window) memory.
//!
//! [`crate::modal::modal_status`] re-sweeps the whole report log on every
//! query; this module maintains the same verdict **incrementally**, so a
//! live service answers each status query from a bounded frontier instead
//! of an O(trace) re-sort:
//!
//! - Reports are buffered under the [`crate::online`] **hold-back
//!   watermark** and released strictly in strobe-key order — with
//!   `hold_back ≥ 2Δ` on intact strobes the release order equals the
//!   offline sweep's global sort, so every decision the streaming detector
//!   makes is made on the same data in the same order.
//! - **Relational** predicates run the scalar-strobe sweep one released
//!   report at a time (state map + edge detection), keeping only counts and
//!   the open interval — O(1) beyond the hold-back buffer.
//! - **Conjunctive** predicates build each conjunct's truth intervals
//!   incrementally and feed the closed ones to
//!   [`psn_lattice::stream::AdvancementFrontier`], the streaming form of
//!   the Garg–Waldecker advancement: it pauses while a needed interval is
//!   still open or in flight and resumes when it closes, producing the
//!   offline occurrence sequence exactly. Consumed intervals pop
//!   immediately; stalled queues are garbage-collected under delivered-
//!   stamp dominance ([`AdvancementFrontier::prune`]) — the Δ-bound GC.
//! - [`StreamingModal::status`] is **exact**: it seals a clone of the
//!   bounded live state (buffer flushed in key order, open intervals
//!   closed, advancement run to quiescence) and returns precisely
//!   [`modal_status`] of the reports offered so far — in O(window), not
//!   O(trace) — whenever release order was globally correct (zero
//!   [`late_reports`](StreamingModal::late_reports), guaranteed by an
//!   adequate hold-back).
//! - [`modal_status_streaming`] is the sealed-trace adapter: it feeds a
//!   whole trace with an infinite hold-back (so the seal performs the full
//!   sort) and is **unconditionally** bit-identical to [`modal_status`] —
//!   batch experiments share the one streaming implementation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use psn_clocks::VectorStamp;
use psn_core::{ExecutionTrace, ReceivedReport};
use psn_lattice::stream::{AdvancementFrontier, FrontierInterval, FrontierOccurrence, PeerGate};
use psn_lattice::StampedInterval;
use psn_sim::time::{SimDuration, SimTime};
use psn_world::{AttrKey, AttrValue, WorldState};

use crate::modal::ModalStatus;
use crate::spec::{Conjunct, Predicate};

type OrderKey = (u64, usize, usize);

fn strobe_key(r: &ReceivedReport) -> OrderKey {
    (r.report.stamps.strobe_scalar.value, r.report.process, r.report.sense_seq)
}

/// A buffered report, slimmed to what the sweep needs (the strobe vector is
/// carried only for conjunctive shapes).
#[derive(Debug, Clone)]
struct Pending {
    key: OrderKey,
    arrived_at: SimTime,
    attr: AttrKey,
    value: AttrValue,
    truth: SimTime,
    stamp: Option<VectorStamp>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The per-shape incremental machinery.
#[derive(Debug, Clone)]
enum Shape {
    /// Empty conjunctive predicate: vacuously never occurs.
    Vacuous,
    Relational(RelationalSweep),
    Conjunctive(ConjunctiveStream),
}

/// Incremental scalar-strobe sweep: the offline relational detector's
/// state machine with only counts retained.
#[derive(Debug, Clone)]
struct RelationalSweep {
    predicate: Predicate,
    /// Dense live state: `vals[i]` is the current value of `vars[i]`.
    /// Predicate arity is small, so the linear scan beats hashing on the
    /// per-report hot path (every eval reads every variable anyway).
    vars: Vec<AttrKey>,
    vals: Vec<AttrValue>,
    holds: bool,
    /// Truth start of the currently open occurrence.
    open: Option<SimTime>,
    closed: usize,
}

impl RelationalSweep {
    fn new(predicate: Predicate, initial: &WorldState) -> Self {
        let mut vars: Vec<AttrKey> = Vec::new();
        for k in predicate.variables() {
            if !vars.contains(&k) {
                vars.push(k);
            }
        }
        let vals: Vec<AttrValue> =
            vars.iter().map(|&k| initial.get(k).unwrap_or(AttrValue::Int(0))).collect();
        let holds = predicate.eval(&|k| {
            vars.iter().position(|&v| v == k).map(|i| vals[i]).unwrap_or(AttrValue::Int(0))
        });
        let open = holds.then_some(SimTime::ZERO);
        RelationalSweep { predicate, vars, vals, holds, open, closed: 0 }
    }

    fn slot(&self, k: AttrKey) -> Option<usize> {
        self.vars.iter().position(|&v| v == k)
    }

    fn apply(&mut self, e: &Pending) {
        // Only relevant keys are buffered, so the slot exists.
        if let Some(i) = self.slot(e.attr) {
            self.vals[i] = e.value;
        }
        let (vars, vals) = (&self.vars, &self.vals);
        let now = self.predicate.eval(&|k| {
            vars.iter().position(|&v| v == k).map(|i| vals[i]).unwrap_or(AttrValue::Int(0))
        });
        match (self.holds, now) {
            (false, true) => self.open = Some(e.truth),
            (true, false) => {
                self.open = None;
                self.closed += 1;
            }
            _ => {}
        }
        self.holds = now;
    }

    fn seal(&self) -> ModalStatus {
        let possibly = self.closed + usize::from(self.open.is_some());
        ModalStatus { possibly, definitely: possibly, holding_now: self.open.is_some() }
    }
}

/// One conjunct's incremental truth-interval builder (the streaming form of
/// the offline detector's per-process replay).
#[derive(Debug, Clone)]
struct ConjunctBuilder {
    conjunct: Conjunct,
    /// Dense live state (see [`RelationalSweep`]): conjunct arity is tiny,
    /// so linear search beats hashing per report.
    vars: Vec<AttrKey>,
    vals: Vec<AttrValue>,
    holds: bool,
    /// `(lo stamp, truth start)` of the currently open interval.
    open: Option<(VectorStamp, SimTime)>,
    last_stamp: VectorStamp,
}

impl ConjunctBuilder {
    fn new(conjunct: Conjunct, initial: &WorldState, n_stamp: usize) -> Self {
        let mut vars: Vec<AttrKey> = Vec::new();
        for &k in conjunct.expr.variables().iter() {
            if !vars.contains(&k) {
                vars.push(k);
            }
        }
        let vals: Vec<AttrValue> =
            vars.iter().map(|&k| initial.get(k).unwrap_or(AttrValue::Int(0))).collect();
        let holds = conjunct.expr.eval_bool(&|k| {
            vars.iter().position(|&v| v == k).map(|i| vals[i]).unwrap_or(AttrValue::Int(0))
        });
        let open = holds.then(|| (VectorStamp::zero(n_stamp), SimTime::ZERO));
        ConjunctBuilder {
            conjunct,
            vars,
            vals,
            holds,
            open,
            last_stamp: VectorStamp::zero(n_stamp),
        }
    }

    /// Apply one report of this conjunct's process; a falling edge returns
    /// the closed interval for the advancement frontier.
    fn apply(&mut self, e: &Pending) -> Option<FrontierInterval> {
        let stamp = e.stamp.as_ref().expect("conjunctive entries carry the strobe vector");
        if let Some(i) = self.vars.iter().position(|&v| v == e.attr) {
            self.vals[i] = e.value;
        }
        self.last_stamp = stamp.clone();
        let (vars, vals) = (&self.vars, &self.vals);
        let now = self.conjunct.expr.eval_bool(&|k| {
            vars.iter().position(|&v| v == k).map(|i| vals[i]).unwrap_or(AttrValue::Int(0))
        });
        let out = match (self.holds, now) {
            (false, true) => {
                self.open = Some((stamp.clone(), e.truth));
                None
            }
            (true, false) => {
                let (lo, t0) = self.open.take().expect("open interval");
                Some(FrontierInterval {
                    stamped: StampedInterval { lo, hi: stamp.clone() },
                    truth_start: t0,
                    truth_end: Some(e.truth),
                })
            }
            _ => None,
        };
        self.holds = now;
        out
    }

    /// The still-open interval, closed at the last delivered stamp — what
    /// the offline detector appends after the final report.
    fn trailing(&self) -> Option<FrontierInterval> {
        self.open.as_ref().map(|(lo, t0)| FrontierInterval {
            stamped: StampedInterval { lo: lo.clone(), hi: self.last_stamp.clone() },
            truth_start: *t0,
            truth_end: None,
        })
    }
}

/// Conjunctive streaming: builders + the lattice advancement frontier, with
/// only running tallies kept (mid-stream occurrences always close).
#[derive(Debug, Clone)]
struct ConjunctiveStream {
    builders: Vec<ConjunctBuilder>,
    frontier: AdvancementFrontier,
    possibly: usize,
    definitely: usize,
    scratch: Vec<FrontierOccurrence>,
}

impl ConjunctiveStream {
    fn new(conjuncts: &[Conjunct], initial: &WorldState, n_stamp: usize) -> Self {
        let builders =
            conjuncts.iter().map(|c| ConjunctBuilder::new(c.clone(), initial, n_stamp)).collect();
        ConjunctiveStream {
            builders,
            frontier: AdvancementFrontier::new(conjuncts.len()),
            possibly: 0,
            definitely: 0,
            scratch: Vec::new(),
        }
    }

    fn apply(&mut self, e: &Pending) {
        let process = e.key.1;
        let mut fed = false;
        for (i, b) in self.builders.iter_mut().enumerate() {
            if b.conjunct.process == process {
                if let Some(iv) = b.apply(e) {
                    self.frontier.push(i, iv);
                    fed = true;
                }
            }
        }
        if fed {
            self.run_frontier();
        }
    }

    /// Advance as far as closed intervals allow, tally, then Δ-bound GC
    /// against starved peers.
    fn run_frontier(&mut self) {
        self.scratch.clear();
        self.frontier.advance(&mut self.scratch);
        self.possibly += self.scratch.len();
        self.definitely += self.scratch.iter().filter(|o| o.definitely).count();
        if self.frontier.pending() > 0
            && (0..self.builders.len()).any(|i| self.frontier.starved(i))
        {
            let gates: Vec<PeerGate> = self
                .builders
                .iter()
                .map(|b| PeerGate { open: b.open.is_some(), floor: b.last_stamp.clone() })
                .collect();
            self.frontier.prune(&gates);
        }
    }

    /// Close every open interval at its last delivered stamp and run the
    /// advancement to quiescence — exactly the offline detector's seal.
    fn seal(mut self) -> ModalStatus {
        for (i, b) in self.builders.iter().enumerate() {
            if let Some(iv) = b.trailing() {
                self.frontier.push(i, iv);
            }
        }
        let mut out = Vec::new();
        self.frontier.advance(&mut out);
        let possibly = self.possibly + out.len();
        let definitely = self.definitely + out.iter().filter(|o| o.definitely).count();
        let holding_now = out.last().is_some_and(|o| o.truth_end.is_none());
        ModalStatus { possibly, definitely, holding_now }
    }

    fn live(&self) -> usize {
        self.frontier.pending()
    }
}

/// A streaming modal detector: incremental `Possibly` / `Definitely` for
/// one predicate, O(window) memory, exact [`modal_status`] answers.
///
/// Feed reports in arrival order with [`offer`](Self::offer); query with
/// [`status`](Self::status) (non-destructive, O(window)); finish with
/// [`seal`](Self::seal). `hold_back ≥ 2Δ` keeps the release order equal to
/// the offline sort (zero late reports) and therefore every answer
/// bit-identical to the offline sweep over the same reports.
#[derive(Debug, Clone)]
pub struct StreamingModal {
    shape: Shape,
    hold_back: SimDuration,
    buffer: BinaryHeap<Reverse<Pending>>,
    last_released: Option<OrderKey>,
    late_reports: usize,
    mem_high_water: u64,
}

impl StreamingModal {
    /// A detector for `predicate` over `n` sensor processes (stamps cover
    /// sensors + root), holding each report back `hold_back` before
    /// evaluation. `initial` is the deployment-time observed state.
    pub fn new(
        predicate: &Predicate,
        initial: &WorldState,
        n: usize,
        hold_back: SimDuration,
    ) -> Self {
        let shape = match predicate {
            Predicate::Conjunctive(cs) if cs.is_empty() => Shape::Vacuous,
            Predicate::Conjunctive(cs) => {
                Shape::Conjunctive(ConjunctiveStream::new(cs, initial, n + 1))
            }
            Predicate::Relational(_) => {
                Shape::Relational(RelationalSweep::new(predicate.clone(), initial))
            }
        };
        StreamingModal {
            shape,
            hold_back,
            buffer: BinaryHeap::new(),
            last_released: None,
            late_reports: 0,
            mem_high_water: 0,
        }
    }

    /// Slim a report down to what this shape needs, or `None` if it cannot
    /// affect the verdict (wrong process / irrelevant attribute).
    fn wants(&self, r: &ReceivedReport) -> Option<Pending> {
        let base = |stamp: Option<VectorStamp>| Pending {
            key: strobe_key(r),
            arrived_at: r.arrived_at,
            attr: r.report.key,
            value: r.report.value,
            truth: r.report.stamps.truth,
            stamp,
        };
        match &self.shape {
            Shape::Vacuous => None,
            // Irrelevant attributes cannot change the swept state, so they
            // cannot produce an edge — skip them entirely.
            Shape::Relational(sw) => sw.slot(r.report.key).is_some().then(|| base(None)),
            // Every report of a watched process matters (it advances that
            // conjunct's last delivered stamp even when the attribute is
            // irrelevant), and it carries the strobe vector.
            Shape::Conjunctive(cs) => cs
                .builders
                .iter()
                .any(|b| b.conjunct.process == r.report.process)
                .then(|| base(Some(r.report.stamps.strobe_vector.clone()))),
        }
    }

    /// Feed the next report **in arrival order**; releases (and evaluates)
    /// every buffered report whose hold-back has expired.
    pub fn offer(&mut self, r: &ReceivedReport) {
        let Some(entry) = self.wants(r) else { return };
        let now = entry.arrived_at;
        self.buffer.push(Reverse(entry));
        if self.hold_back != SimDuration::MAX {
            let watermark =
                SimTime::from_nanos(now.as_nanos().saturating_sub(self.hold_back.as_nanos()));
            self.release_until(watermark);
        }
        self.note_high_water();
    }

    /// Strictly in key order: release the minimum-key buffered report while
    /// it is due; stop at the first not-yet-due one (the [`crate::online`]
    /// rule — releasing a due report over a smaller-key, recently-arrived
    /// one would evaluate out of strobe order).
    fn release_until(&mut self, watermark: SimTime) {
        while let Some(Reverse(head)) = self.buffer.peek() {
            if head.arrived_at > watermark {
                break;
            }
            let Reverse(e) = self.buffer.pop().expect("peeked");
            self.apply(&e);
        }
    }

    fn apply(&mut self, e: &Pending) {
        if let Some(last) = self.last_released {
            if e.key < last {
                self.late_reports += 1;
            }
        }
        self.last_released = Some(self.last_released.unwrap_or(e.key).max(e.key));
        match &mut self.shape {
            Shape::Vacuous => {}
            Shape::Relational(sw) => sw.apply(e),
            Shape::Conjunctive(cs) => cs.apply(e),
        }
    }

    fn note_high_water(&mut self) {
        let live = self.buffer.len()
            + match &self.shape {
                Shape::Conjunctive(cs) => cs.live(),
                _ => 0,
            };
        self.mem_high_water = self.mem_high_water.max(live as u64);
    }

    /// The exact modal status of everything offered so far — equal to
    /// [`modal_status`] over the same reports whenever release order was
    /// globally correct ([`late_reports`](Self::late_reports) == 0).
    /// O(window): clones the bounded live state and seals the clone; the
    /// stream itself is undisturbed.
    pub fn status(&self) -> ModalStatus {
        let mut probe = self.clone();
        probe.release_until(SimTime::MAX);
        probe.shape.seal()
    }

    /// Flush the buffer in key order, close open intervals, and return the
    /// final verdict (end of stream).
    pub fn seal(mut self) -> ModalStatus {
        self.release_until(SimTime::MAX);
        self.note_high_water();
        self.shape.seal()
    }

    /// Reports applied after their strobe-order position had been passed
    /// (0 with adequate hold-back on intact strobes).
    pub fn late_reports(&self) -> usize {
        self.late_reports
    }

    /// Reports currently held back awaiting their watermark.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Current live frontier width: queued conjunct intervals (the
    /// antichain the advancement still considers) plus held-back reports.
    pub fn frontier_width(&self) -> usize {
        self.buffer.len()
            + match &self.shape {
                Shape::Conjunctive(cs) => cs.live(),
                _ => 0,
            }
    }

    /// High-water mark of live frontier entries (buffered reports + queued
    /// intervals) — the O(window) memory bound the Δ-bound GC maintains.
    pub fn mem_high_water_cuts(&self) -> u64 {
        self.mem_high_water
    }

    /// Intervals dropped by the Δ-bound GC so far (conjunctive shapes).
    pub fn pruned_intervals(&self) -> usize {
        match &self.shape {
            Shape::Conjunctive(cs) => cs.frontier.pruned(),
            _ => 0,
        }
    }
}

impl Shape {
    fn seal(self) -> ModalStatus {
        match self {
            Shape::Vacuous => ModalStatus { possibly: 0, definitely: 0, holding_now: false },
            Shape::Relational(sw) => sw.seal(),
            Shape::Conjunctive(cs) => cs.seal(),
        }
    }
}

/// Does `predicate`'s shape keep the streaming cut window inside the packed
/// 64-bit encoding with `window_depth` un-retired events per involved
/// process? Conjunctive predicates involve their conjunct processes;
/// relational predicates involve every process their attributes name.
/// Returns `(involved processes, fits)` — `psn-script --check` warns when a
/// shape forces the hash fallback.
pub fn stream_packing(predicate: &Predicate, window_depth: usize) -> (usize, bool) {
    let involved: std::collections::BTreeSet<usize> = match predicate {
        Predicate::Conjunctive(cs) => cs.iter().map(|c| c.process).collect(),
        // Relational attributes are sensed by the process watching their
        // object (the repo's door-d / room-d convention).
        Predicate::Relational(_) => predicate.variables().into_iter().map(|k| k.object).collect(),
    };
    let lens = vec![window_depth; involved.len()];
    (involved.len(), psn_lattice::stream::packed_window_fits(&lens))
}

/// Sealed-trace adapter: the modal status of a whole trace computed by the
/// streaming detector. Feeds every report with an infinite hold-back (so
/// nothing is released before the seal performs the full key-order sort)
/// and is therefore **unconditionally** bit-identical to
/// [`crate::modal::modal_status`] — batch callers share the streaming
/// implementation.
pub fn modal_status_streaming(
    trace: &ExecutionTrace,
    predicate: &Predicate,
    initial: &WorldState,
) -> ModalStatus {
    let mut s = StreamingModal::new(predicate, initial, trace.n, SimDuration::MAX);
    for r in &trace.log.reports {
        s.offer(r);
    }
    s.seal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modal::modal_status;
    use crate::spec::Expr;
    use psn_core::{run_execution, ExecutionConfig};
    use psn_sim::delay::DelayModel;
    use psn_world::scenarios::exhibition::{self, ExhibitionParams};

    fn fixture(delta_ms: u64, seed: u64) -> (psn_world::Scenario, ExecutionTrace) {
        let params = ExhibitionParams {
            doors: 3,
            arrival_rate_hz: 2.0,
            mean_stay: SimDuration::from_secs(45),
            duration: SimTime::from_secs(400),
            capacity: 70,
        };
        let scenario = exhibition::generate(&params, seed);
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(delta_ms)),
            seed,
            ..Default::default()
        };
        let trace = run_execution(&scenario, &cfg);
        (scenario, trace)
    }

    fn busy_conjuncts(k: i64) -> Vec<Conjunct> {
        (0..2)
            .map(|d| Conjunct {
                process: d,
                expr: Expr::var(AttrKey::new(d, 0))
                    .sub(Expr::var(AttrKey::new(d, 1)))
                    .gt(Expr::int(k)),
            })
            .collect()
    }

    #[test]
    fn sealed_adapter_equals_offline_relational() {
        for seed in 0..4 {
            let (scenario, trace) = fixture(200, seed);
            let pred = Predicate::occupancy_over(3, 70);
            let init = scenario.timeline.initial_state();
            assert_eq!(
                modal_status_streaming(&trace, &pred, &init),
                modal_status(&trace, &pred, &init),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sealed_adapter_equals_offline_conjunctive() {
        for seed in 0..4 {
            let (scenario, trace) = fixture(250, seed);
            let pred = Predicate::Conjunctive(busy_conjuncts(2));
            let init = scenario.timeline.initial_state();
            assert_eq!(
                modal_status_streaming(&trace, &pred, &init),
                modal_status(&trace, &pred, &init),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn incremental_status_equals_offline_prefix() {
        // Feed one report at a time with an adequate hold-back; after each
        // chunk, status() must equal modal_status over the prefix offered
        // so far (the offline oracle run on a truncated trace).
        let (scenario, trace) = fixture(150, 7);
        let init = scenario.timeline.initial_state();
        for pred in [
            Predicate::occupancy_over(3, 70),
            Predicate::Conjunctive(busy_conjuncts(2)),
        ] {
            let mut s =
                StreamingModal::new(&pred, &init, trace.n, SimDuration::from_millis(300));
            let step = (trace.log.reports.len() / 7).max(1);
            for (i, r) in trace.log.reports.iter().enumerate() {
                s.offer(r);
                if i % step == 0 || i + 1 == trace.log.reports.len() {
                    let mut prefix = trace.clone();
                    prefix.log.reports.truncate(i + 1);
                    assert_eq!(s.late_reports(), 0, "hold-back must suffice");
                    assert_eq!(
                        s.status(),
                        modal_status(&prefix, &pred, &init),
                        "prefix {} of {}",
                        i + 1,
                        trace.log.reports.len()
                    );
                }
            }
            assert_eq!(s.seal(), modal_status(&trace, &pred, &init));
        }
    }

    #[test]
    fn vacuous_conjunctive_is_zero() {
        let (scenario, trace) = fixture(100, 1);
        let init = scenario.timeline.initial_state();
        let pred = Predicate::Conjunctive(Vec::new());
        let mut s = StreamingModal::new(&pred, &init, trace.n, SimDuration::ZERO);
        for r in &trace.log.reports {
            s.offer(r);
        }
        assert_eq!(
            s.status(),
            ModalStatus { possibly: 0, definitely: 0, holding_now: false }
        );
    }

    #[test]
    fn memory_stays_bounded_with_finite_holdback() {
        // 10× the ingest must not grow the high-water mark ~10×: the
        // frontier is O(rate × hold_back), not O(trace).
        let pred = Predicate::occupancy_over(3, 70);
        let mut highs = Vec::new();
        for secs in [400u64, 4000] {
            let params = ExhibitionParams {
                doors: 3,
                arrival_rate_hz: 2.0,
                mean_stay: SimDuration::from_secs(45),
                duration: SimTime::from_secs(secs),
                capacity: 70,
            };
            let scenario = exhibition::generate(&params, 3);
            let cfg = ExecutionConfig {
                delay: DelayModel::delta(SimDuration::from_millis(150)),
                seed: 3,
                ..Default::default()
            };
            let trace = run_execution(&scenario, &cfg);
            let init = scenario.timeline.initial_state();
            let mut s = StreamingModal::new(&pred, &init, trace.n, SimDuration::from_millis(300));
            for r in &trace.log.reports {
                s.offer(r);
            }
            highs.push((trace.log.reports.len(), s.mem_high_water_cuts()));
        }
        let (n0, h0) = highs[0];
        let (n1, h1) = highs[1];
        assert!(n1 > 8 * n0, "the long run must really be ~10× the ingest");
        assert!(h1 <= h0.max(1) * 3, "high-water {h1} vs {h0} must stay O(window)");
    }

    #[test]
    fn conjunctive_gc_prunes_stalled_queues() {
        // Room 0's motion flag toggles constantly; conjunct 1 (temp over an
        // absurd threshold) never becomes true, so its queue starves forever
        // — without the Δ-bound GC, room 0's closed intervals pile up
        // without bound.
        use psn_world::scenarios::office::{self, OfficeParams, ATTR_MOTION, ATTR_TEMP};
        let params = OfficeParams {
            rooms: 2,
            persons: 3,
            mean_dwell: SimDuration::from_secs(20),
            duration: SimTime::from_secs(1800),
            ..Default::default()
        };
        let scenario = office::generate(&params, 5);
        let cfg = ExecutionConfig {
            delay: DelayModel::delta(SimDuration::from_millis(150)),
            seed: 5,
            ..Default::default()
        };
        let trace = run_execution(&scenario, &cfg);
        let init = scenario.timeline.initial_state();
        let pred = Predicate::Conjunctive(vec![
            Conjunct { process: 0, expr: Expr::var(AttrKey::new(0, ATTR_MOTION)) },
            Conjunct {
                process: 1,
                expr: Expr::var(AttrKey::new(1, ATTR_TEMP)).gt(Expr::int(10_000)),
            },
        ]);
        let mut s = StreamingModal::new(&pred, &init, trace.n, SimDuration::from_millis(300));
        for r in &trace.log.reports {
            s.offer(r);
        }
        assert!(s.pruned_intervals() > 0, "the Δ-bound GC must fire on the stalled queue");
        assert!(
            (s.frontier_width() as u64) < trace.log.reports.len() as u64 / 4,
            "pruning must keep the frontier far below the report count"
        );
        // And the GC must not have changed the verdict.
        assert_eq!(s.seal(), modal_status(&trace, &pred, &init));
    }

    #[test]
    fn stream_packing_reports_shape() {
        let (n, fits) = stream_packing(&Predicate::occupancy_over(3, 10), 15);
        assert_eq!(n, 3);
        assert!(fits, "3 processes × 4-bit windows pack easily");
        let wide = Predicate::Conjunctive(
            (0..20)
                .map(|p| Conjunct { process: p, expr: Expr::int(1).gt(Expr::int(0)) })
                .collect(),
        );
        let (n, fits) = stream_packing(&wide, 15);
        assert_eq!(n, 20);
        assert!(!fits, "20 processes × 4-bit windows exceed 64 bits");
    }
}
